//! Exact confirmation of sample-mined candidates.
//!
//! One streaming full-data pass over the relations the keep-set
//! touches: each surviving candidate's `(support, confidence)` is
//! re-counted **exactly** — the sampled estimates (kept as
//! [`crate::EvidenceInterval`]s) only steered the search, the emitted
//! Σ′ carries true figures — and candidates whose exact figures fall
//! below the caller's original floors are dropped.
//!
//! Cost: one `SymTables::build_for` over the touched relations plus one
//! `SymIndex` per distinct `(relation, LHS)` group of the keep-set —
//! linear in the data and proportional to the *kept* dependencies, not
//! to the lattice the sampled walk explored.

use crate::config::DiscoveryConfig;
use crate::{DiscoveredCfd, DiscoveredCind};
use condep_model::fxhash::FxBuildHasher;
use condep_model::{AttrId, Database, Interner, PValue, RelId, SymTables, SymValue};
use condep_query::SymIndex;
use std::collections::HashMap;

/// Counters of one confirmation pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct ConfirmOutcome {
    /// Candidates exactly re-counted.
    pub checked: usize,
    /// Candidates dropped because their exact figures miss the floors.
    pub dropped: usize,
}

/// Translates a constant pattern cell to its full-data symbol. `None`
/// means the constant does not occur in the full instance at all.
fn const_sym(interner: &Interner, pv: &PValue) -> Option<SymValue> {
    match pv {
        PValue::Const(v) => interner.sym_value(v),
        PValue::Any => None,
    }
}

/// Exactly re-counts every candidate against `db`, updating
/// `support`/`confidence` in place and dropping candidates below the
/// configured floors.
pub(crate) fn confirm(
    db: &Database,
    config: &DiscoveryConfig,
    cfds: &mut Vec<DiscoveredCfd>,
    cinds: &mut Vec<DiscoveredCind>,
) -> ConfirmOutcome {
    let mut outcome = ConfirmOutcome::default();
    let mut needed: Vec<bool> = vec![false; db.schema().len()];
    for d in cfds.iter() {
        needed[d.cfd.rel().index()] = true;
    }
    for d in cinds.iter() {
        needed[d.cind.lhs_rel().index()] = true;
        needed[d.cind.rhs_rel().index()] = true;
    }
    let (interner, tables) = SymTables::build_for(db, |r| needed[r.index()]);
    let support_floor = config.support_floor();
    let confidence_floor = config.confidence_floor();

    // One shared LHS index per (relation, LHS attribute list) group.
    let mut groups: HashMap<(RelId, Vec<AttrId>), Vec<usize>, FxBuildHasher> = HashMap::default();
    for (i, d) in cfds.iter().enumerate() {
        groups
            .entry((d.cfd.rel(), d.cfd.lhs().to_vec()))
            .or_default()
            .push(i);
    }
    let mut group_keys: Vec<&(RelId, Vec<AttrId>)> = groups.keys().collect();
    group_keys.sort(); // deterministic confirmation order
    let mut keep_cfd = vec![true; cfds.len()];
    let mut class_buf: Vec<SymValue> = Vec::new();
    for key in group_keys {
        let (rel, attrs) = key;
        let members = &groups[key];
        let rows = tables.rows(*rel);
        let cols: Vec<&[SymValue]> = attrs.iter().map(|a| tables.column(*rel, *a)).collect();
        let idx = SymIndex::build_from_columns(rows, &cols, |_| true);
        // Exact stripped-partition tallies per RHS, shared by every
        // variable candidate of the group.
        let mut variable: HashMap<AttrId, (usize, usize), FxBuildHasher> = HashMap::default();
        for &i in members {
            let cand = &mut cfds[i];
            outcome.checked += 1;
            let rhs_col = tables.column(*rel, cand.cfd.rhs());
            if cand.cfd.lhs_pat().is_all_any() && !cand.cfd.is_constant_rhs() {
                let (support, kept) = *variable.entry(cand.cfd.rhs()).or_insert_with(|| {
                    let mut support = 0usize;
                    let mut kept = 0usize;
                    for (_, positions) in idx.groups() {
                        class_buf.clear();
                        class_buf.extend(positions.map(|p| rhs_col[p as usize]));
                        if class_buf.len() < 2 {
                            continue; // stripped: singletons support nothing
                        }
                        support += class_buf.len();
                        class_buf.sort_unstable();
                        let mut max_run = 0usize;
                        let mut run = 0usize;
                        for w in 0..class_buf.len() {
                            if w > 0 && class_buf[w] == class_buf[w - 1] {
                                run += 1;
                            } else {
                                run = 1;
                            }
                            max_run = max_run.max(run);
                        }
                        kept += max_run;
                    }
                    (support, kept)
                });
                cand.support = support;
                cand.confidence = if support == 0 {
                    0.0
                } else {
                    kept as f64 / support as f64
                };
            } else {
                // Constant row: probe its class, count the emitted RHS.
                let key_syms: Option<Vec<SymValue>> = (0..attrs.len())
                    .map(|c| const_sym(&interner, cand.cfd.lhs_pat().cell(c)))
                    .collect();
                let rhs_sym = const_sym(&interner, cand.cfd.rhs_pat());
                let (support, agree) = match key_syms {
                    Some(key) => {
                        let mut support = 0usize;
                        let mut agree = 0usize;
                        for p in idx.positions(&key) {
                            support += 1;
                            if Some(rhs_col[p as usize]) == rhs_sym {
                                agree += 1;
                            }
                        }
                        (support, agree)
                    }
                    None => (0, 0), // the pattern constant never occurs
                };
                cand.support = support;
                cand.confidence = if support == 0 {
                    0.0
                } else {
                    agree as f64 / support as f64
                };
            }
            if cand.support < support_floor || cand.confidence < confidence_floor {
                keep_cfd[i] = false;
                outcome.dropped += 1;
            }
        }
    }
    let mut it = keep_cfd.into_iter();
    cfds.retain(|_| it.next().expect("one verdict per candidate"));

    // CINDs: probe the full source column against the full target
    // distinct-value index (shared per target column).
    let mut target_indexes: HashMap<(RelId, AttrId), SymIndex, FxBuildHasher> = HashMap::default();
    let mut keep_cind = vec![true; cinds.len()];
    for (i, cand) in cinds.iter_mut().enumerate() {
        outcome.checked += 1;
        let (x, y) = (cand.cind.x(), cand.cind.y());
        debug_assert_eq!(x.len(), 1, "the miner emits unary CINDs");
        let src_col = tables.column(cand.cind.lhs_rel(), x[0]);
        let idx = target_indexes
            .entry((cand.cind.rhs_rel(), y[0]))
            .or_insert_with(|| {
                let col = tables.column(cand.cind.rhs_rel(), y[0]);
                SymIndex::build_from_columns(col.len(), &[col], |_| true)
            });
        let cond = cand.cind.xp().first().map(|(a, v)| {
            (
                tables.column(cand.cind.lhs_rel(), *a),
                interner.sym_value(v),
            )
        });
        let mut support = 0usize;
        let mut hits = 0usize;
        for (pos, sym) in src_col.iter().enumerate() {
            if let Some((cond_col, cond_sym)) = &cond {
                if Some(cond_col[pos]) != *cond_sym {
                    continue;
                }
            }
            support += 1;
            if idx.contains_key(std::slice::from_ref(sym)) {
                hits += 1;
            }
        }
        cand.support = support;
        cand.confidence = if support == 0 {
            0.0
        } else {
            hits as f64 / support as f64
        };
        if support < support_floor || cand.confidence < confidence_floor {
            keep_cind[i] = false;
            outcome.dropped += 1;
        }
    }
    let mut it = keep_cind.into_iter();
    cinds.retain(|_| it.next().expect("one verdict per candidate"));
    outcome
}
