#![warn(missing_docs)]

//! # condep-discover
//!
//! Dependency **discovery**: mine a ranked Σ′ of CFDs and CINDs from a
//! [`Database`] instance.
//!
//! The paper assumes Σ is given; every deployment starts by *profiling*
//! the data to find it. This crate closes that gap, turning the
//! workspace's loop into discover → validate → monitor → repair:
//!
//! * **CFD mining** ([`cfd_miner`], via [`discover`]) — per relation, a
//!   level-wise walk of the attribute-set lattice over **stripped
//!   partitions** (TANE's data structure, built from the existing
//!   [`SymTables`] symbolization and the [`condep_query::SymIndex`]
//!   counting-sort CSR — no string is hashed in the hot path). Each
//!   lattice node yields the plain FD `X → A` as a *variable* (all
//!   wildcard) tableau row and **specializes** each equivalence class of
//!   `π_X` into a *constant* row `(X = x̄ ‖ A = a)`, both tagged with
//!   `(support, confidence)`.
//! * **CIND mining** ([`cind_miner`], same entry point) — unary
//!   inclusion candidates probed against shared target-column indexes;
//!   exact inclusions become traditional INDs, near-inclusions get the
//!   highest-support constant source conditions that make them exact.
//! * **Ranking & pruning** — candidates are ranked by
//!   `(support, confidence)`; trivial dependencies
//!   ([`NormalCfd::is_trivial`] / [`NormalCind::is_trivial`]),
//!   non-minimal FDs (supersets of an exact LHS) and dependencies
//!   *implied* by higher-ranked keeps (checked with the exact
//!   [`condep_cfd::implication`] / [`condep_core::implication`]
//!   machinery, budgeted) are dropped; per-relation and global caps
//!   bound the output.
//!
//! The result is a [`DiscoveredSigma`]: ready to compile into a
//! batched validator (`condep::report::QualitySuite::discover` does
//! exactly that), feed a monitor, or — mined at
//! `min_confidence < 1.0` from dirty data — hand the repair engine a
//! realistic constraint set.
//!
//! ## Non-goals
//!
//! * **No full CTANE completeness.** The walk explores LHS sets up to
//!   [`DiscoveryConfig::max_lhs`] and specializes patterns per whole
//!   equivalence class: every attribute of a constant row is bound, so
//!   mixed wildcard/constant LHS rows (CTANE's full pattern lattice) are
//!   not enumerated.
//! * **Unary embedded INDs only.** CIND candidates match one source
//!   column against one target column; wider matched lists and
//!   target-side (`Yp`) conditions are not searched.
//! * **Empty-LHS CFDs** (global constant columns) are not emitted.
//!
//! Within those bounds the output is *sound*: at the default
//! `min_confidence = 1.0` every member of Σ′ is satisfied by the input
//! instance (property-tested at the workspace root).

use condep_analyze::AnalyzeConfig;
use condep_cfd::NormalCfd;
use condep_core::implication::ImplicationConfig;
use condep_core::NormalCind;
use condep_model::fxhash::FxBuildHasher;
use condep_model::{Database, RelId, SymTables};
use condep_telemetry::{Export, MetricsSnapshot, SpanKey, Stopwatch};
use condep_validate::SigmaCover;
use std::collections::HashMap;

/// Static span keys: each [`discover`] phase also lands its wall time
/// in the global registry ([`condep_telemetry::global`]) as a histogram
/// across every run in the process. [`PhaseTimings`] is the per-run
/// view of the same clocks.
static SAMPLE_SPAN: SpanKey = SpanKey::new("discover.sample_us");
static MINE_SPAN: SpanKey = SpanKey::new("discover.mine_us");
static CONFIRM_SPAN: SpanKey = SpanKey::new("discover.confirm_us");

mod cfd_miner;
mod cind_miner;
mod config;
mod confirm;
pub mod online;
mod partition;
mod sample;

pub use config::{DiscoveryConfig, SampleConfig};
pub use partition::StrippedPartition;

/// A Hoeffding-style `(support, confidence)` interval estimate attached
/// to a sample-mined candidate (see [`DiscoveryConfig::sample`]).
///
/// * **support** — for a constant row or a CIND the class/trigger
///   fraction obeys the Hoeffding–Serfling bound for sampling without
///   replacement, scaled back to the full row count and tightened by
///   the deterministic facts (a sampled class member is a full class
///   member, so the exact support is at least the sampled one). For a
///   *variable* FD the sampled `‖π_X‖` is a provable lower bound (a
///   sampled pair is a full pair) and the row count the trivial upper.
/// * **confidence** — `±ε` around the sampled estimate for the
///   cleanly-Bernoulli cases (constant-row purity, CIND coverage
///   against an exhaustively-indexed target); the variable-FD majority
///   fraction is not a per-row mean, so its lower bound is widened to
///   `−2ε` (heuristic, validated by the interval-containment property
///   suite).
///
/// After the confirmation pass the surviving candidate's
/// `support`/`confidence` fields are **exact**; the interval is kept as
/// the audit trail of the estimate that selected it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvidenceInterval {
    /// `(lower, upper)` bounds on the exact support.
    pub support: (usize, usize),
    /// `(lower, upper)` bounds on the exact confidence.
    pub confidence: (f64, f64),
}

impl EvidenceInterval {
    /// Does the interval contain the exact figures? (Float bounds are
    /// checked with a 1e-9 slack.)
    pub fn contains(&self, support: usize, confidence: f64) -> bool {
        let (slo, shi) = self.support;
        let (clo, chi) = self.confidence;
        support >= slo && support <= shi && confidence >= clo - 1e-9 && confidence <= chi + 1e-9
    }
}

/// A mined CFD with its evidence.
#[derive(Clone, Debug)]
pub struct DiscoveredCfd {
    /// The dependency, in normal form.
    pub cfd: NormalCfd,
    /// Tuples supporting the pattern: class size for a constant row,
    /// `‖π_X‖` (tuples sharing their LHS value with another tuple) for a
    /// variable row.
    pub support: usize,
    /// Fraction of the support that satisfies the dependency (1.0 =
    /// exact on this instance).
    pub confidence: f64,
    /// The sampled interval estimate ([`DiscoveryConfig::sample`] runs
    /// only); `support`/`confidence` are exact post-confirmation.
    pub interval: Option<EvidenceInterval>,
}

/// A mined CIND with its evidence.
#[derive(Clone, Debug)]
pub struct DiscoveredCind {
    /// The dependency, in normal form.
    pub cind: NormalCind,
    /// Triggered source tuples.
    pub support: usize,
    /// Fraction of the triggered tuples with a target partner (1.0 =
    /// exact on this instance).
    pub confidence: f64,
    /// The sampled interval estimate ([`DiscoveryConfig::sample`] runs
    /// only); `support`/`confidence` are exact post-confirmation.
    pub interval: Option<EvidenceInterval>,
}

/// Counters of one sampled run (see [`DiscoveryConfig::sample`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SamplingStats {
    /// Rows in the full instance.
    pub full_rows: usize,
    /// Rows actually mined (the union of the per-relation samples).
    pub sampled_rows: usize,
    /// Relations that were genuinely downsampled (the rest fit the
    /// budget and were mined whole).
    pub relations_downsampled: usize,
    /// Worst realized Hoeffding half-width across downsampled relations
    /// (0.0 when nothing was downsampled).
    pub epsilon: f64,
    /// The configured per-interval failure probability.
    pub delta: f64,
    /// Candidates the confirmation pass re-counted exactly.
    pub confirm_checked: usize,
    /// Candidates the confirmation pass dropped (exact figures below
    /// the requested floors — sampling noise had let them through).
    pub confirm_dropped: usize,
}

impl Export for SamplingStats {
    fn export(&self, prefix: &str, out: &mut MetricsSnapshot) {
        let k = |name| condep_telemetry::key(prefix, name);
        out.counter(k("full_rows"), self.full_rows as u64);
        out.counter(k("sampled_rows"), self.sampled_rows as u64);
        out.counter(
            k("relations_downsampled"),
            self.relations_downsampled as u64,
        );
        out.float(k("epsilon"), self.epsilon);
        out.float(k("delta"), self.delta);
        out.counter(k("confirm_checked"), self.confirm_checked as u64);
        out.counter(k("confirm_dropped"), self.confirm_dropped as u64);
    }
}

/// Counters describing one discovery run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiscoveryStats {
    /// Relations profiled.
    pub relations_profiled: usize,
    /// Attribute-set lattice nodes whose partition was materialized.
    pub lattice_nodes: usize,
    /// CFD tableau-row candidates examined (variable + constant).
    pub cfd_candidates: usize,
    /// CIND candidates examined (column pairs + conditions).
    pub cind_candidates: usize,
    /// Candidates dropped as trivially satisfied.
    pub pruned_trivial: usize,
    /// `(X, A)` nodes skipped because a subset of `X` already determines
    /// `A` exactly (lattice-level minimality pruning).
    pub pruned_nonminimal: usize,
    /// Ranked candidates dropped because the higher-ranked keeps already
    /// imply them.
    pub pruned_implied: usize,
    /// Ranked candidates dropped because keeping them would make the
    /// emitted Σ′ inconsistent on their relation (no nonempty instance
    /// could satisfy it — the shape approximate mining produces when two
    /// near-constant rows disagree). Checked with the SAT-backed
    /// analyzer; `Unknown` keeps the candidate, which matches the
    /// implication tier's budget convention.
    pub pruned_inconsistent: usize,
    /// Kept dependencies the final Σ-cover pass removed: pattern rows
    /// merged into a subsuming keep, payload-identical CIND duplicates,
    /// and keeps the *rest* of the kept set implies (the greedy walk
    /// only checks each candidate against earlier keeps).
    pub pruned_cover: usize,
    /// Candidates dropped by a per-candidate, per-relation or global
    /// cap.
    pub pruned_capped: usize,
    /// Exact implication checks spent (bounded by
    /// [`DiscoveryConfig::implication_budget`]).
    pub implication_checks: usize,
    /// Sampling counters — `Some` iff the run was sampled.
    pub sampling: Option<SamplingStats>,
}

impl Export for DiscoveryStats {
    fn export(&self, prefix: &str, out: &mut MetricsSnapshot) {
        let k = |name| condep_telemetry::key(prefix, name);
        out.counter(k("relations_profiled"), self.relations_profiled as u64);
        out.counter(k("lattice_nodes"), self.lattice_nodes as u64);
        out.counter(k("cfd_candidates"), self.cfd_candidates as u64);
        out.counter(k("cind_candidates"), self.cind_candidates as u64);
        out.counter(k("pruned.trivial"), self.pruned_trivial as u64);
        out.counter(k("pruned.nonminimal"), self.pruned_nonminimal as u64);
        out.counter(k("pruned.implied"), self.pruned_implied as u64);
        out.counter(k("pruned.inconsistent"), self.pruned_inconsistent as u64);
        out.counter(k("pruned.cover"), self.pruned_cover as u64);
        out.counter(k("pruned.capped"), self.pruned_capped as u64);
        out.counter(k("implication_checks"), self.implication_checks as u64);
        if let Some(s) = &self.sampling {
            s.export(&condep_telemetry::key(prefix, "sampling"), out);
        }
    }
}

/// Wall-clock phase breakdown of one [`discover`] run, in milliseconds.
/// For an exact run everything is mining; a sampled run splits into the
/// reservoir scan, the mining walk over the sample, and the full-data
/// confirmation scan. Timings are *measurements*, not part of any
/// determinism contract — compare [`DiscoveryStats`] instead.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Reservoir-sampling scan (0 for exact runs).
    pub sample_ms: f64,
    /// Lattice walk + CIND probing (over the sample when sampled).
    pub mine_ms: f64,
    /// Full-scan confirmation of the keep-set (0 for exact runs).
    pub confirm_ms: f64,
}

impl Export for PhaseTimings {
    fn export(&self, prefix: &str, out: &mut MetricsSnapshot) {
        let k = |name| condep_telemetry::key(prefix, name);
        out.float(k("sample_ms"), self.sample_ms);
        out.float(k("mine_ms"), self.mine_ms);
        out.float(k("confirm_ms"), self.confirm_ms);
    }
}

/// The ranked result of one [`discover`] run.
#[derive(Clone, Debug, Default)]
pub struct DiscoveredSigma {
    /// Kept CFDs, ranked by `(support, confidence)` descending.
    pub cfds: Vec<DiscoveredCfd>,
    /// Kept CINDs, ranked by `(support, confidence)` descending.
    pub cinds: Vec<DiscoveredCind>,
    /// Run counters.
    pub stats: DiscoveryStats,
    /// Wall-clock phase breakdown.
    pub timings: PhaseTimings,
}

impl DiscoveredSigma {
    /// Total kept dependencies.
    pub fn len(&self) -> usize {
        self.cfds.len() + self.cinds.len()
    }

    /// Did the run keep nothing?
    pub fn is_empty(&self) -> bool {
        self.cfds.is_empty() && self.cinds.is_empty()
    }

    /// The kept CFDs as a plain Σ half (evidence stripped).
    pub fn cfds_normal(&self) -> Vec<NormalCfd> {
        self.cfds.iter().map(|d| d.cfd.clone()).collect()
    }

    /// The kept CINDs as a plain Σ half (evidence stripped).
    pub fn cinds_normal(&self) -> Vec<NormalCind> {
        self.cinds.iter().map(|d| d.cind.clone()).collect()
    }

    /// The run as one metrics snapshot: kept counts under
    /// `discover.kept.*`, [`DiscoveryStats`] under `discover.stats.*`
    /// and [`PhaseTimings`] under `discover.timings.*`.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        out.counter("discover.kept.cfds", self.cfds.len() as u64);
        out.counter("discover.kept.cinds", self.cinds.len() as u64);
        self.stats.export("discover.stats", &mut out);
        self.timings.export("discover.timings", &mut out);
        out
    }
}

/// Mines a ranked Σ′ from `db`. Deterministic for a fixed
/// `(db, config)` — every internal collection either iterates in dense
/// order or sorts before harvesting.
///
/// With [`DiscoveryConfig::sample`] set the run is **budgeted**: mining
/// walks a per-relation reservoir sample, candidates carry
/// [`EvidenceInterval`] estimates, and one streaming full-data
/// confirmation pass re-counts the keep-set exactly before emission.
pub fn discover(db: &Database, config: &DiscoveryConfig) -> DiscoveredSigma {
    match config.sample {
        Some(sample_cfg) => discover_sampled(db, config, &sample_cfg),
        None => discover_exact(db, config),
    }
}

/// The budgeted path: reservoir-sample → mine the sample with scaled
/// floors → attach interval estimates → confirm exactly → re-rank.
fn discover_sampled(
    db: &Database,
    config: &DiscoveryConfig,
    sample_cfg: &SampleConfig,
) -> DiscoveredSigma {
    let sample_clock = Stopwatch::start();
    let outcome = sample::reservoir_sample(db, sample_cfg);
    SAMPLE_SPAN.record_us(sample_clock.elapsed_us());
    let sample_ms = sample_clock.elapsed_ms();
    let full_total: usize = outcome.full_rows.iter().sum();
    let sampled_total: usize = outcome.sampled_rows.iter().sum();
    if !outcome.any_downsampled() {
        // Every relation fit the budget: the exact path costs the same
        // and needs no estimation.
        let mut found = discover_exact(db, config);
        found.stats.sampling = Some(SamplingStats {
            full_rows: full_total,
            sampled_rows: sampled_total,
            delta: sample_cfg.delta,
            ..SamplingStats::default()
        });
        found.timings.sample_ms = sample_ms;
        return found;
    }
    // Worst realized half-width across the downsampled relations — the
    // confidence-floor relaxation has to cover the loosest estimate.
    let epsilon = outcome
        .sampled_rows
        .iter()
        .zip(&outcome.downsampled)
        .filter(|&(_, &down)| down)
        .map(|(&m, _)| sample_cfg.epsilon_for(m))
        .fold(0.0_f64, f64::max);
    let fraction = sampled_total as f64 / full_total.max(1) as f64;
    let mining = sample::sampled_mining_config(config, fraction, epsilon);
    let mut found = discover_exact(&outcome.db, &mining);
    found.timings.sample_ms = sample_ms;
    for d in &mut found.cfds {
        let (m, n) = outcome.rows(d.cfd.rel());
        d.interval = Some(cfd_interval(
            d,
            m,
            n,
            outcome.downsampled[d.cfd.rel().index()],
            sample_cfg,
        ));
    }
    for d in &mut found.cinds {
        let (m, n) = outcome.rows(d.cind.lhs_rel());
        d.interval = Some(cind_interval(
            d,
            m,
            n,
            outcome.downsampled[d.cind.lhs_rel().index()],
            outcome.downsampled[d.cind.rhs_rel().index()],
            sample_cfg,
        ));
    }
    let confirm_clock = Stopwatch::start();
    let confirmed = confirm::confirm(db, config, &mut found.cfds, &mut found.cinds);
    CONFIRM_SPAN.record_us(confirm_clock.elapsed_us());
    found.timings.confirm_ms = confirm_clock.elapsed_ms();
    // Exact figures may reorder the ranking the sample suggested.
    found
        .cfds
        .sort_by(|a, b| rank_key(b.support, b.confidence, a.support, a.confidence));
    found
        .cinds
        .sort_by(|a, b| rank_key(b.support, b.confidence, a.support, a.confidence));
    found.stats.sampling = Some(SamplingStats {
        full_rows: full_total,
        sampled_rows: sampled_total,
        relations_downsampled: outcome.downsampled.iter().filter(|&&d| d).count(),
        epsilon,
        delta: sample_cfg.delta,
        confirm_checked: confirmed.checked,
        confirm_dropped: confirmed.dropped,
    });
    found
}

/// The sampled→full interval of one CFD candidate: `m` sampled rows of
/// `n` full rows in its relation.
fn cfd_interval(
    d: &DiscoveredCfd,
    m: usize,
    n: usize,
    downsampled: bool,
    sample_cfg: &SampleConfig,
) -> EvidenceInterval {
    if !downsampled {
        return EvidenceInterval {
            support: (d.support, d.support),
            confidence: (d.confidence, d.confidence),
        };
    }
    if d.cfd.lhs_pat().is_all_any() && !d.cfd.is_constant_rhs() {
        // Variable row. Every sampled LHS pair is a full pair, so the
        // sampled ‖π_X‖ bounds the exact one from below; the majority
        // fraction is not a per-row mean, so its bound is the widened
        // heuristic documented on [`EvidenceInterval`].
        let eps = sample_cfg.epsilon_for(d.support.max(1));
        EvidenceInterval {
            support: (d.support, n),
            confidence: (
                (d.confidence - 2.0 * eps).max(0.0),
                (d.confidence + eps).min(1.0),
            ),
        }
    } else {
        // Constant row: the class fraction is a clean Bernoulli mean
        // over the m sampled rows; purity is a mean over the sampled
        // class members.
        let eps_rel = sample_cfg.epsilon_for(m);
        let p = d.support as f64 / m.max(1) as f64;
        let lower = (((p - eps_rel) * n as f64).floor().max(0.0)) as usize;
        let upper = (((p + eps_rel) * n as f64).ceil()) as usize;
        // Deterministic tightening: sampled class members are full class
        // members, and sampled non-members are full non-members.
        let det_upper = n - (m - d.support);
        let eps_class = sample_cfg.epsilon_for(d.support.max(1));
        EvidenceInterval {
            support: (lower.max(d.support), upper.min(det_upper)),
            confidence: (
                (d.confidence - eps_class).max(0.0),
                (d.confidence + eps_class).min(1.0),
            ),
        }
    }
}

/// The sampled→full interval of one CIND candidate: `m` sampled source
/// rows of `n` full source rows.
fn cind_interval(
    d: &DiscoveredCind,
    m: usize,
    n: usize,
    src_downsampled: bool,
    target_downsampled: bool,
    sample_cfg: &SampleConfig,
) -> EvidenceInterval {
    let support = if src_downsampled {
        // Trigger fraction over the sampled source rows.
        let eps_rel = sample_cfg.epsilon_for(m);
        let p = d.support as f64 / m.max(1) as f64;
        let lower = (((p - eps_rel) * n as f64).floor().max(0.0)) as usize;
        let upper = (((p + eps_rel) * n as f64).ceil()) as usize;
        (lower.max(d.support), upper.min(n - (m - d.support)))
    } else {
        (d.support, d.support)
    };
    let eps_cov = sample_cfg.epsilon_for(d.support.max(1));
    let confidence = if target_downsampled {
        // The sampled target misses values the full target holds:
        // coverage is downward-biased, so only 1.0 is a safe upper.
        ((d.confidence - eps_cov).max(0.0), 1.0)
    } else if src_downsampled {
        // Exhaustive target index: each sampled trigger's hit/miss is
        // its full-data hit/miss — a clean Bernoulli mean.
        (
            (d.confidence - eps_cov).max(0.0),
            (d.confidence + eps_cov).min(1.0),
        )
    } else {
        (d.confidence, d.confidence)
    };
    EvidenceInterval {
        support,
        confidence,
    }
}

/// The exact (unsampled) mining pipeline.
fn discover_exact(db: &Database, config: &DiscoveryConfig) -> DiscoveredSigma {
    let mine_clock = Stopwatch::start();
    let mut stats = DiscoveryStats::default();
    let (interner, tables) = SymTables::build(db);

    let mut cfd_cands: Vec<DiscoveredCfd> = Vec::new();
    for (rel, _) in db.iter() {
        stats.relations_profiled += 1;
        cfd_miner::mine_relation(rel, &interner, &tables, config, &mut stats, &mut cfd_cands);
    }
    let mut cind_cands: Vec<DiscoveredCind> = Vec::new();
    cind_miner::mine(db, &interner, &tables, config, &mut stats, &mut cind_cands);

    // Belt-and-braces trivia filter (the miners avoid most of these by
    // construction).
    cfd_cands.retain(|c| {
        let trivial = c.cfd.is_trivial();
        stats.pruned_trivial += trivial as usize;
        !trivial
    });
    cind_cands.retain(|c| {
        let trivial = c.cind.is_trivial();
        stats.pruned_trivial += trivial as usize;
        !trivial
    });

    // Rank by evidence; generation order (deterministic) breaks ties.
    cfd_cands.sort_by(|a, b| rank_key(b.support, b.confidence, a.support, a.confidence));
    cind_cands.sort_by(|a, b| rank_key(b.support, b.confidence, a.support, a.confidence));

    // Greedy keep: walk the ranking, dropping candidates the kept set
    // already implies (exact checkers, budgeted — `Unknown` keeps the
    // candidate, which is sound) and enforcing the caps.
    let schema = db.schema();
    let mut budget = config.implication_budget;
    let mut kept_cfds: Vec<DiscoveredCfd> = Vec::new();
    let mut kept_sigma: Vec<NormalCfd> = Vec::new();
    let mut per_rel: HashMap<RelId, usize, FxBuildHasher> = HashMap::default();
    for cand in cfd_cands {
        let kept_here = per_rel.entry(cand.cfd.rel()).or_insert(0);
        if *kept_here >= config.max_cfds_per_relation {
            stats.pruned_capped += 1;
            continue;
        }
        if budget > 0 {
            budget -= 1;
            stats.implication_checks += 1;
            if condep_cfd::implication::implies(
                schema,
                &kept_sigma,
                &cand.cfd,
                ImplicationConfig::with_max_instances(IMPLICATION_INSTANCE_BUDGET),
            ) == condep_cfd::implication::Implication::Implied
            {
                stats.pruned_implied += 1;
                continue;
            }
        }
        let mut same_rel: Vec<(usize, &NormalCfd)> = kept_sigma
            .iter()
            .filter(|k| k.rel() == cand.cfd.rel())
            .enumerate()
            .collect();
        same_rel.push((same_rel.len(), &cand.cfd));
        if matches!(
            condep_analyze::relation_consistency(
                schema,
                cand.cfd.rel(),
                &same_rel,
                &AnalyzeConfig::default(),
            ),
            condep_analyze::RelationVerdict::Unsat(_)
        ) {
            stats.pruned_inconsistent += 1;
            continue;
        }
        drop(same_rel);
        *kept_here += 1;
        kept_sigma.push(cand.cfd.clone());
        kept_cfds.push(cand);
    }

    let mut kept_cinds: Vec<DiscoveredCind> = Vec::new();
    let mut kept_cind_sigma: Vec<NormalCind> = Vec::new();
    let cind_impl_config = ImplicationConfig {
        max_states: 50_000,
        max_initial_assignments: 256,
        ..ImplicationConfig::default()
    };
    for cand in cind_cands {
        if kept_cinds.len() >= config.max_cinds {
            stats.pruned_capped += 1;
            continue;
        }
        if budget > 0 {
            budget -= 1;
            stats.implication_checks += 1;
            if condep_core::implication::implies(
                schema,
                &kept_cind_sigma,
                &cand.cind,
                cind_impl_config,
            ) == condep_core::implication::Implication::Implied
            {
                stats.pruned_implied += 1;
                continue;
            }
        }
        kept_cind_sigma.push(cand.cind.clone());
        kept_cinds.push(cand);
    }

    // Σ-cover pass over the kept set. The greedy walk above only checks
    // each candidate against *earlier* (higher-ranked) keeps; the cover
    // pass closes the loop — merging pattern rows a kept row subsumes,
    // deduping payload-identical CINDs, and (budget permitting) dropping
    // keeps the rest of the kept set implies. Both tiers are
    // satisfaction-preserving, so a database satisfying the covered Σ′
    // satisfies everything mined — implication recovery of planted
    // dependencies is untouched. Exact merges process in input order, so
    // the survivor of each family is its highest-ranked member.
    let cover = if budget > 0 {
        SigmaCover::minimal(
            schema,
            &kept_sigma,
            &kept_cind_sigma,
            ImplicationConfig::with_max_instances(IMPLICATION_INSTANCE_BUDGET),
        )
    } else {
        SigmaCover::exact(&kept_sigma, &kept_cind_sigma)
    };
    stats.pruned_cover =
        (kept_cfds.len() + kept_cinds.len()) - (cover.kept_cfds().len() + cover.kept_cinds().len());
    let mut keep_cfd = cover.cfd.iter().map(|r| r.is_kept());
    kept_cfds.retain(|_| keep_cfd.next().expect("one role per kept CFD"));
    let mut keep_cind = cover.cind.iter().map(|r| r.is_kept());
    kept_cinds.retain(|_| keep_cind.next().expect("one role per kept CIND"));

    MINE_SPAN.record_us(mine_clock.elapsed_us());
    DiscoveredSigma {
        cfds: kept_cfds,
        cinds: kept_cinds,
        stats,
        timings: PhaseTimings {
            mine_ms: mine_clock.elapsed_ms(),
            ..PhaseTimings::default()
        },
    }
}

/// Instance budget handed to the exhaustive CFD implication fallback
/// (finite-domain attributes); `Unknown` verdicts keep the candidate.
const IMPLICATION_INSTANCE_BUDGET: u64 = 4_096;

/// Descending `(support, confidence)` with a total order (confidence is
/// a well-formed fraction, so `partial_cmp` cannot fail; equal ties fall
/// back to `Equal`, keeping the sort stable over generation order).
fn rank_key(s_b: usize, c_b: f64, s_a: usize, c_a: f64) -> std::cmp::Ordering {
    s_b.cmp(&s_a)
        .then(c_b.partial_cmp(&c_a).unwrap_or(std::cmp::Ordering::Equal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_model::{tuple, Domain, PValue, Schema, Value};
    use std::sync::Arc;

    /// fact(city, country, zip): city → country exactly, with two big
    /// constant classes; zip is a key.
    fn city_db() -> Database {
        let schema = Arc::new(
            Schema::builder()
                .relation(
                    "fact",
                    &[
                        ("city", Domain::string()),
                        ("country", Domain::string()),
                        ("zip", Domain::string()),
                    ],
                )
                .relation("cities", &[("name", Domain::string())])
                .finish(),
        );
        let mut db = Database::empty(schema);
        let rows = [
            ("EDI", "UK"),
            ("EDI", "UK"),
            ("EDI", "UK"),
            ("NYC", "US"),
            ("NYC", "US"),
            ("NYC", "US"),
            ("GLA", "UK"),
            ("GLA", "UK"),
        ];
        for (i, (city, country)) in rows.iter().enumerate() {
            db.insert_into("fact", tuple![*city, *country, format!("z{i}").as_str()])
                .unwrap();
        }
        for city in ["EDI", "NYC", "GLA"] {
            db.insert_into("cities", tuple![city]).unwrap();
        }
        db
    }

    fn config(min_support: usize) -> DiscoveryConfig {
        DiscoveryConfig {
            min_support,
            ..DiscoveryConfig::default()
        }
    }

    #[test]
    fn mines_the_planted_fd_and_its_constant_rows() {
        let db = city_db();
        let found = discover(&db, &config(2));
        let schema = db.schema();
        let fact = schema.rel_id("fact").unwrap();
        let rs = schema.relation(fact).unwrap();
        let city = rs.attr_id("city").unwrap();
        let country = rs.attr_id("country").unwrap();
        // The variable FD city → country.
        let fd = found
            .cfds
            .iter()
            .find(|d| {
                d.cfd.rel() == fact
                    && d.cfd.lhs() == [city]
                    && d.cfd.rhs() == country
                    && d.cfd.lhs_pat().is_all_any()
                    && !d.cfd.is_constant_rhs()
            })
            .expect("city → country must be mined");
        assert_eq!(fd.support, 8, "all tuples sit in non-singleton classes");
        assert_eq!(fd.confidence, 1.0);
        // A constant specialization (EDI ‖ UK).
        let edi = found
            .cfds
            .iter()
            .find(|d| {
                d.cfd.rel() == fact
                    && d.cfd.lhs() == [city]
                    && d.cfd.lhs_pat().cell(0) == &PValue::constant("EDI")
            })
            .expect("the EDI class must specialize");
        assert_eq!(edi.support, 3);
        assert_eq!(edi.cfd.rhs_pat(), &PValue::constant("UK"));
        // Soundness: everything kept holds on the instance.
        for d in &found.cfds {
            assert!(
                condep_cfd::satisfy::satisfies_normal(&db, &d.cfd),
                "unsound CFD: {}",
                d.cfd.display(schema)
            );
        }
        // The key column never produces a dependency target from its
        // side: zip partitions are all singletons.
        assert!(found
            .cfds
            .iter()
            .all(|d| !d.cfd.lhs().contains(&rs.attr_id("zip").unwrap())));
    }

    #[test]
    fn mines_the_exact_inclusion() {
        let db = city_db();
        let found = discover(&db, &config(2));
        let schema = db.schema();
        let fact = schema.rel_id("fact").unwrap();
        let cities = schema.rel_id("cities").unwrap();
        let ind = found
            .cinds
            .iter()
            .find(|d| d.cind.lhs_rel() == fact && d.cind.rhs_rel() == cities)
            .expect("fact[city] ⊆ cities[name] must be mined");
        assert_eq!(ind.support, 8);
        assert_eq!(ind.confidence, 1.0);
        assert!(ind.cind.xp().is_empty());
        for d in &found.cinds {
            assert!(
                condep_core::satisfy::satisfies_normal(&db, &d.cind),
                "unsound CIND: {}",
                d.cind.display(schema)
            );
        }
    }

    #[test]
    fn near_inclusion_gets_an_exact_condition() {
        // src[v] ⊆ dst[v] fails only for kind=bad tuples: the condition
        // kind=good makes it exact.
        let schema = Arc::new(
            Schema::builder()
                .relation(
                    "src",
                    &[("v", Domain::string()), ("kind", Domain::string())],
                )
                .relation("dst", &[("v", Domain::string())])
                .finish(),
        );
        let mut db = Database::empty(schema);
        for i in 0..6 {
            db.insert_into("src", tuple![format!("ok{i}").as_str(), "good"])
                .unwrap();
            db.insert_into("dst", tuple![format!("ok{i}").as_str()])
                .unwrap();
        }
        db.insert_into("src", tuple!["orphan1", "bad"]).unwrap();
        db.insert_into("src", tuple!["orphan2", "bad"]).unwrap();
        let found = discover(&db, &config(2));
        let schema = db.schema();
        let src = schema.rel_id("src").unwrap();
        let kind = schema.relation(src).unwrap().attr_id("kind").unwrap();
        let cond = found
            .cinds
            .iter()
            .find(|d| d.cind.lhs_rel() == src && !d.cind.xp().is_empty())
            .expect("a conditioned near-IND must be mined");
        assert_eq!(
            cond.cind.xp(),
            &[(kind, Value::str("good"))],
            "the kind=good condition makes the inclusion exact"
        );
        assert_eq!(cond.support, 6);
        assert_eq!(cond.confidence, 1.0);
        assert!(condep_core::satisfy::satisfies_normal(&db, &cond.cind));
        // Strict mode must NOT emit the bare (violated) near-IND.
        assert!(found
            .cinds
            .iter()
            .all(|d| condep_core::satisfy::satisfies_normal(&db, &d.cind)));
        // Relaxing the confidence floor must never LOSE the exact
        // conditioned CIND, even when the orphan rate (25% here)
        // exceeds the relaxed tolerance (10%).
        let relaxed = discover(
            &db,
            &DiscoveryConfig {
                min_support: 2,
                min_confidence: 0.9,
                ..DiscoveryConfig::default()
            },
        );
        assert!(
            relaxed
                .cinds
                .iter()
                .any(|d| d.cind.xp() == [(kind, Value::str("good"))]),
            "relaxed mode must keep the conditioned near-IND: {:?}",
            relaxed.cinds
        );
    }

    #[test]
    fn approximate_mode_emits_the_near_dependencies() {
        let schema = Arc::new(
            Schema::builder()
                .relation(
                    "r",
                    &[
                        ("id", Domain::string()),
                        ("k", Domain::string()),
                        ("v", Domain::string()),
                    ],
                )
                .finish(),
        );
        let mut db = Database::empty(schema);
        // k=a determines v except for one dissenter (9 of 10 agree).
        for i in 0..9 {
            db.insert_into("r", tuple![format!("t{i}").as_str(), "a", "same"])
                .unwrap();
        }
        db.insert_into("r", tuple!["t9", "a", "dissent"]).unwrap();
        let r = db.schema().rel_id("r").unwrap();
        let rs = db.schema().relation(r).unwrap();
        let (k, v) = (rs.attr_id("k").unwrap(), rs.attr_id("v").unwrap());
        let broken_fd = |d: &DiscoveredCfd| {
            d.cfd.lhs() == [k]
                && d.cfd.rhs() == v
                && d.cfd.lhs_pat().is_all_any()
                && !d.cfd.is_constant_rhs()
        };
        let strict = discover(&db, &config(2));
        assert!(
            !strict.cfds.iter().any(&broken_fd),
            "strict mode rejects the broken FD"
        );
        let relaxed = discover(
            &db,
            &DiscoveryConfig {
                min_support: 2,
                min_confidence: 0.8,
                ..DiscoveryConfig::default()
            },
        );
        let fd = relaxed
            .cfds
            .iter()
            .find(|d| broken_fd(d))
            .expect("approximate k -> v must surface");
        assert_eq!(fd.support, 10);
        assert!((fd.confidence - 0.9).abs() < 1e-9, "{}", fd.confidence);
    }

    #[test]
    fn implied_candidates_are_pruned() {
        // Two copies of the same functional column pair: the ranked walk
        // keeps the FD and prunes whatever the chase proves redundant —
        // and never keeps two identical dependencies.
        let db = city_db();
        let found = discover(&db, &config(2));
        let mut seen = std::collections::HashSet::new();
        for d in &found.cfds {
            assert!(
                seen.insert(format!("{}", d.cfd.display(db.schema()))),
                "duplicate dependency kept: {}",
                d.cfd.display(db.schema())
            );
        }
        assert!(found.stats.implication_checks > 0);
    }

    #[test]
    fn discovery_is_deterministic() {
        let db = city_db();
        let a = discover(&db, &config(2));
        let b = discover(&db, &config(2));
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.cfds.len(), b.cfds.len());
        for (x, y) in a.cfds.iter().zip(&b.cfds) {
            assert_eq!(x.cfd, y.cfd);
            assert_eq!(x.support, y.support);
            assert_eq!(x.confidence, y.confidence);
        }
        for (x, y) in a.cinds.iter().zip(&b.cinds) {
            assert_eq!(x.cind, y.cind);
            assert_eq!(x.support, y.support);
        }
    }

    #[test]
    fn caps_bound_the_output() {
        let db = city_db();
        let capped = discover(
            &db,
            &DiscoveryConfig {
                min_support: 2,
                max_cfds_per_relation: 1,
                max_cinds: 1,
                ..DiscoveryConfig::default()
            },
        );
        let mut per_rel: HashMap<RelId, usize, FxBuildHasher> = HashMap::default();
        for d in &capped.cfds {
            *per_rel.entry(d.cfd.rel()).or_insert(0) += 1;
        }
        assert!(per_rel.values().all(|&n| n <= 1));
        assert!(capped.cinds.len() <= 1);
        assert!(capped.stats.pruned_capped > 0);
    }

    /// Keep-stage post-condition: the emitted Σ′ is never inconsistent.
    /// Mined-from-data rows rarely conflict by construction, so this
    /// asserts the analyzer agrees (`Sat`) and that nothing was pruned
    /// on the clean fixture — the `pruned_inconsistent` counter is a
    /// safety net for sampled / online drift, not the happy path.
    #[test]
    fn kept_sigma_is_always_consistent() {
        let db = city_db();
        let found = discover(&db, &config(2));
        assert!(!found.is_empty());
        let cfds: Vec<NormalCfd> = found.cfds.iter().map(|d| d.cfd.clone()).collect();
        let cinds: Vec<NormalCind> = found.cinds.iter().map(|d| d.cind.clone()).collect();
        let analysis =
            condep_analyze::analyze(db.schema(), &cfds, &cinds, &AnalyzeConfig::default());
        assert!(
            analysis.verdict.is_sat(),
            "discovered sigma must be satisfiable: {:?}",
            analysis.verdict
        );
        assert_eq!(found.stats.pruned_inconsistent, 0);
    }
}
