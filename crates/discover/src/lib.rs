#![warn(missing_docs)]

//! # condep-discover
//!
//! Dependency **discovery**: mine a ranked Σ′ of CFDs and CINDs from a
//! [`Database`] instance.
//!
//! The paper assumes Σ is given; every deployment starts by *profiling*
//! the data to find it. This crate closes that gap, turning the
//! workspace's loop into discover → validate → monitor → repair:
//!
//! * **CFD mining** ([`cfd_miner`], via [`discover`]) — per relation, a
//!   level-wise walk of the attribute-set lattice over **stripped
//!   partitions** (TANE's data structure, built from the existing
//!   [`SymTables`] symbolization and the [`condep_query::SymIndex`]
//!   counting-sort CSR — no string is hashed in the hot path). Each
//!   lattice node yields the plain FD `X → A` as a *variable* (all
//!   wildcard) tableau row and **specializes** each equivalence class of
//!   `π_X` into a *constant* row `(X = x̄ ‖ A = a)`, both tagged with
//!   `(support, confidence)`.
//! * **CIND mining** ([`cind_miner`], same entry point) — unary
//!   inclusion candidates probed against shared target-column indexes;
//!   exact inclusions become traditional INDs, near-inclusions get the
//!   highest-support constant source conditions that make them exact.
//! * **Ranking & pruning** — candidates are ranked by
//!   `(support, confidence)`; trivial dependencies
//!   ([`NormalCfd::is_trivial`] / [`NormalCind::is_trivial`]),
//!   non-minimal FDs (supersets of an exact LHS) and dependencies
//!   *implied* by higher-ranked keeps (checked with the exact
//!   [`condep_cfd::implication`] / [`condep_core::implication`]
//!   machinery, budgeted) are dropped; per-relation and global caps
//!   bound the output.
//!
//! The result is a [`DiscoveredSigma`]: ready to compile into a
//! batched validator (`condep::report::QualitySuite::discover` does
//! exactly that), feed a monitor, or — mined at
//! `min_confidence < 1.0` from dirty data — hand the repair engine a
//! realistic constraint set.
//!
//! ## Non-goals
//!
//! * **No full CTANE completeness.** The walk explores LHS sets up to
//!   [`DiscoveryConfig::max_lhs`] and specializes patterns per whole
//!   equivalence class: every attribute of a constant row is bound, so
//!   mixed wildcard/constant LHS rows (CTANE's full pattern lattice) are
//!   not enumerated.
//! * **Unary embedded INDs only.** CIND candidates match one source
//!   column against one target column; wider matched lists and
//!   target-side (`Yp`) conditions are not searched.
//! * **Empty-LHS CFDs** (global constant columns) are not emitted.
//!
//! Within those bounds the output is *sound*: at the default
//! `min_confidence = 1.0` every member of Σ′ is satisfied by the input
//! instance (property-tested at the workspace root).

use condep_cfd::NormalCfd;
use condep_core::implication::ImplicationConfig;
use condep_core::NormalCind;
use condep_model::fxhash::FxBuildHasher;
use condep_model::{Database, RelId, SymTables};
use condep_validate::SigmaCover;
use std::collections::HashMap;

mod cfd_miner;
mod cind_miner;
mod config;
mod partition;

pub use config::DiscoveryConfig;
pub use partition::StrippedPartition;

/// A mined CFD with its evidence.
#[derive(Clone, Debug)]
pub struct DiscoveredCfd {
    /// The dependency, in normal form.
    pub cfd: NormalCfd,
    /// Tuples supporting the pattern: class size for a constant row,
    /// `‖π_X‖` (tuples sharing their LHS value with another tuple) for a
    /// variable row.
    pub support: usize,
    /// Fraction of the support that satisfies the dependency (1.0 =
    /// exact on this instance).
    pub confidence: f64,
}

/// A mined CIND with its evidence.
#[derive(Clone, Debug)]
pub struct DiscoveredCind {
    /// The dependency, in normal form.
    pub cind: NormalCind,
    /// Triggered source tuples.
    pub support: usize,
    /// Fraction of the triggered tuples with a target partner (1.0 =
    /// exact on this instance).
    pub confidence: f64,
}

/// Counters describing one discovery run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiscoveryStats {
    /// Relations profiled.
    pub relations_profiled: usize,
    /// Attribute-set lattice nodes whose partition was materialized.
    pub lattice_nodes: usize,
    /// CFD tableau-row candidates examined (variable + constant).
    pub cfd_candidates: usize,
    /// CIND candidates examined (column pairs + conditions).
    pub cind_candidates: usize,
    /// Candidates dropped as trivially satisfied.
    pub pruned_trivial: usize,
    /// `(X, A)` nodes skipped because a subset of `X` already determines
    /// `A` exactly (lattice-level minimality pruning).
    pub pruned_nonminimal: usize,
    /// Ranked candidates dropped because the higher-ranked keeps already
    /// imply them.
    pub pruned_implied: usize,
    /// Kept dependencies the final Σ-cover pass removed: pattern rows
    /// merged into a subsuming keep, payload-identical CIND duplicates,
    /// and keeps the *rest* of the kept set implies (the greedy walk
    /// only checks each candidate against earlier keeps).
    pub pruned_cover: usize,
    /// Candidates dropped by a per-candidate, per-relation or global
    /// cap.
    pub pruned_capped: usize,
    /// Exact implication checks spent (bounded by
    /// [`DiscoveryConfig::implication_budget`]).
    pub implication_checks: usize,
}

/// The ranked result of one [`discover`] run.
#[derive(Clone, Debug, Default)]
pub struct DiscoveredSigma {
    /// Kept CFDs, ranked by `(support, confidence)` descending.
    pub cfds: Vec<DiscoveredCfd>,
    /// Kept CINDs, ranked by `(support, confidence)` descending.
    pub cinds: Vec<DiscoveredCind>,
    /// Run counters.
    pub stats: DiscoveryStats,
}

impl DiscoveredSigma {
    /// Total kept dependencies.
    pub fn len(&self) -> usize {
        self.cfds.len() + self.cinds.len()
    }

    /// Did the run keep nothing?
    pub fn is_empty(&self) -> bool {
        self.cfds.is_empty() && self.cinds.is_empty()
    }

    /// The kept CFDs as a plain Σ half (evidence stripped).
    pub fn cfds_normal(&self) -> Vec<NormalCfd> {
        self.cfds.iter().map(|d| d.cfd.clone()).collect()
    }

    /// The kept CINDs as a plain Σ half (evidence stripped).
    pub fn cinds_normal(&self) -> Vec<NormalCind> {
        self.cinds.iter().map(|d| d.cind.clone()).collect()
    }
}

/// Mines a ranked Σ′ from `db`. Deterministic for a fixed
/// `(db, config)` — every internal collection either iterates in dense
/// order or sorts before harvesting.
pub fn discover(db: &Database, config: &DiscoveryConfig) -> DiscoveredSigma {
    let mut stats = DiscoveryStats::default();
    let (interner, tables) = SymTables::build(db);

    let mut cfd_cands: Vec<DiscoveredCfd> = Vec::new();
    for (rel, _) in db.iter() {
        stats.relations_profiled += 1;
        cfd_miner::mine_relation(rel, &interner, &tables, config, &mut stats, &mut cfd_cands);
    }
    let mut cind_cands: Vec<DiscoveredCind> = Vec::new();
    cind_miner::mine(db, &interner, &tables, config, &mut stats, &mut cind_cands);

    // Belt-and-braces trivia filter (the miners avoid most of these by
    // construction).
    cfd_cands.retain(|c| {
        let trivial = c.cfd.is_trivial();
        stats.pruned_trivial += trivial as usize;
        !trivial
    });
    cind_cands.retain(|c| {
        let trivial = c.cind.is_trivial();
        stats.pruned_trivial += trivial as usize;
        !trivial
    });

    // Rank by evidence; generation order (deterministic) breaks ties.
    cfd_cands.sort_by(|a, b| rank_key(b.support, b.confidence, a.support, a.confidence));
    cind_cands.sort_by(|a, b| rank_key(b.support, b.confidence, a.support, a.confidence));

    // Greedy keep: walk the ranking, dropping candidates the kept set
    // already implies (exact checkers, budgeted — `Unknown` keeps the
    // candidate, which is sound) and enforcing the caps.
    let schema = db.schema();
    let mut budget = config.implication_budget;
    let mut kept_cfds: Vec<DiscoveredCfd> = Vec::new();
    let mut kept_sigma: Vec<NormalCfd> = Vec::new();
    let mut per_rel: HashMap<RelId, usize, FxBuildHasher> = HashMap::default();
    for cand in cfd_cands {
        let kept_here = per_rel.entry(cand.cfd.rel()).or_insert(0);
        if *kept_here >= config.max_cfds_per_relation {
            stats.pruned_capped += 1;
            continue;
        }
        if budget > 0 {
            budget -= 1;
            stats.implication_checks += 1;
            if condep_cfd::implication::implies(
                schema,
                &kept_sigma,
                &cand.cfd,
                ImplicationConfig::with_max_instances(IMPLICATION_INSTANCE_BUDGET),
            ) == condep_cfd::implication::Implication::Implied
            {
                stats.pruned_implied += 1;
                continue;
            }
        }
        *kept_here += 1;
        kept_sigma.push(cand.cfd.clone());
        kept_cfds.push(cand);
    }

    let mut kept_cinds: Vec<DiscoveredCind> = Vec::new();
    let mut kept_cind_sigma: Vec<NormalCind> = Vec::new();
    let cind_impl_config = ImplicationConfig {
        max_states: 50_000,
        max_initial_assignments: 256,
        ..ImplicationConfig::default()
    };
    for cand in cind_cands {
        if kept_cinds.len() >= config.max_cinds {
            stats.pruned_capped += 1;
            continue;
        }
        if budget > 0 {
            budget -= 1;
            stats.implication_checks += 1;
            if condep_core::implication::implies(
                schema,
                &kept_cind_sigma,
                &cand.cind,
                cind_impl_config,
            ) == condep_core::implication::Implication::Implied
            {
                stats.pruned_implied += 1;
                continue;
            }
        }
        kept_cind_sigma.push(cand.cind.clone());
        kept_cinds.push(cand);
    }

    // Σ-cover pass over the kept set. The greedy walk above only checks
    // each candidate against *earlier* (higher-ranked) keeps; the cover
    // pass closes the loop — merging pattern rows a kept row subsumes,
    // deduping payload-identical CINDs, and (budget permitting) dropping
    // keeps the rest of the kept set implies. Both tiers are
    // satisfaction-preserving, so a database satisfying the covered Σ′
    // satisfies everything mined — implication recovery of planted
    // dependencies is untouched. Exact merges process in input order, so
    // the survivor of each family is its highest-ranked member.
    let cover = if budget > 0 {
        SigmaCover::minimal(
            schema,
            &kept_sigma,
            &kept_cind_sigma,
            ImplicationConfig::with_max_instances(IMPLICATION_INSTANCE_BUDGET),
        )
    } else {
        SigmaCover::exact(&kept_sigma, &kept_cind_sigma)
    };
    stats.pruned_cover =
        (kept_cfds.len() + kept_cinds.len()) - (cover.kept_cfds().len() + cover.kept_cinds().len());
    let mut keep_cfd = cover.cfd.iter().map(|r| r.is_kept());
    kept_cfds.retain(|_| keep_cfd.next().expect("one role per kept CFD"));
    let mut keep_cind = cover.cind.iter().map(|r| r.is_kept());
    kept_cinds.retain(|_| keep_cind.next().expect("one role per kept CIND"));

    DiscoveredSigma {
        cfds: kept_cfds,
        cinds: kept_cinds,
        stats,
    }
}

/// Instance budget handed to the exhaustive CFD implication fallback
/// (finite-domain attributes); `Unknown` verdicts keep the candidate.
const IMPLICATION_INSTANCE_BUDGET: u64 = 4_096;

/// Descending `(support, confidence)` with a total order (confidence is
/// a well-formed fraction, so `partial_cmp` cannot fail; equal ties fall
/// back to `Equal`, keeping the sort stable over generation order).
fn rank_key(s_b: usize, c_b: f64, s_a: usize, c_a: f64) -> std::cmp::Ordering {
    s_b.cmp(&s_a)
        .then(c_b.partial_cmp(&c_a).unwrap_or(std::cmp::Ordering::Equal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_model::{tuple, Domain, PValue, Schema, Value};
    use std::sync::Arc;

    /// fact(city, country, zip): city → country exactly, with two big
    /// constant classes; zip is a key.
    fn city_db() -> Database {
        let schema = Arc::new(
            Schema::builder()
                .relation(
                    "fact",
                    &[
                        ("city", Domain::string()),
                        ("country", Domain::string()),
                        ("zip", Domain::string()),
                    ],
                )
                .relation("cities", &[("name", Domain::string())])
                .finish(),
        );
        let mut db = Database::empty(schema);
        let rows = [
            ("EDI", "UK"),
            ("EDI", "UK"),
            ("EDI", "UK"),
            ("NYC", "US"),
            ("NYC", "US"),
            ("NYC", "US"),
            ("GLA", "UK"),
            ("GLA", "UK"),
        ];
        for (i, (city, country)) in rows.iter().enumerate() {
            db.insert_into("fact", tuple![*city, *country, format!("z{i}").as_str()])
                .unwrap();
        }
        for city in ["EDI", "NYC", "GLA"] {
            db.insert_into("cities", tuple![city]).unwrap();
        }
        db
    }

    fn config(min_support: usize) -> DiscoveryConfig {
        DiscoveryConfig {
            min_support,
            ..DiscoveryConfig::default()
        }
    }

    #[test]
    fn mines_the_planted_fd_and_its_constant_rows() {
        let db = city_db();
        let found = discover(&db, &config(2));
        let schema = db.schema();
        let fact = schema.rel_id("fact").unwrap();
        let rs = schema.relation(fact).unwrap();
        let city = rs.attr_id("city").unwrap();
        let country = rs.attr_id("country").unwrap();
        // The variable FD city → country.
        let fd = found
            .cfds
            .iter()
            .find(|d| {
                d.cfd.rel() == fact
                    && d.cfd.lhs() == [city]
                    && d.cfd.rhs() == country
                    && d.cfd.lhs_pat().is_all_any()
                    && !d.cfd.is_constant_rhs()
            })
            .expect("city → country must be mined");
        assert_eq!(fd.support, 8, "all tuples sit in non-singleton classes");
        assert_eq!(fd.confidence, 1.0);
        // A constant specialization (EDI ‖ UK).
        let edi = found
            .cfds
            .iter()
            .find(|d| {
                d.cfd.rel() == fact
                    && d.cfd.lhs() == [city]
                    && d.cfd.lhs_pat().cell(0) == &PValue::constant("EDI")
            })
            .expect("the EDI class must specialize");
        assert_eq!(edi.support, 3);
        assert_eq!(edi.cfd.rhs_pat(), &PValue::constant("UK"));
        // Soundness: everything kept holds on the instance.
        for d in &found.cfds {
            assert!(
                condep_cfd::satisfy::satisfies_normal(&db, &d.cfd),
                "unsound CFD: {}",
                d.cfd.display(schema)
            );
        }
        // The key column never produces a dependency target from its
        // side: zip partitions are all singletons.
        assert!(found
            .cfds
            .iter()
            .all(|d| !d.cfd.lhs().contains(&rs.attr_id("zip").unwrap())));
    }

    #[test]
    fn mines_the_exact_inclusion() {
        let db = city_db();
        let found = discover(&db, &config(2));
        let schema = db.schema();
        let fact = schema.rel_id("fact").unwrap();
        let cities = schema.rel_id("cities").unwrap();
        let ind = found
            .cinds
            .iter()
            .find(|d| d.cind.lhs_rel() == fact && d.cind.rhs_rel() == cities)
            .expect("fact[city] ⊆ cities[name] must be mined");
        assert_eq!(ind.support, 8);
        assert_eq!(ind.confidence, 1.0);
        assert!(ind.cind.xp().is_empty());
        for d in &found.cinds {
            assert!(
                condep_core::satisfy::satisfies_normal(&db, &d.cind),
                "unsound CIND: {}",
                d.cind.display(schema)
            );
        }
    }

    #[test]
    fn near_inclusion_gets_an_exact_condition() {
        // src[v] ⊆ dst[v] fails only for kind=bad tuples: the condition
        // kind=good makes it exact.
        let schema = Arc::new(
            Schema::builder()
                .relation(
                    "src",
                    &[("v", Domain::string()), ("kind", Domain::string())],
                )
                .relation("dst", &[("v", Domain::string())])
                .finish(),
        );
        let mut db = Database::empty(schema);
        for i in 0..6 {
            db.insert_into("src", tuple![format!("ok{i}").as_str(), "good"])
                .unwrap();
            db.insert_into("dst", tuple![format!("ok{i}").as_str()])
                .unwrap();
        }
        db.insert_into("src", tuple!["orphan1", "bad"]).unwrap();
        db.insert_into("src", tuple!["orphan2", "bad"]).unwrap();
        let found = discover(&db, &config(2));
        let schema = db.schema();
        let src = schema.rel_id("src").unwrap();
        let kind = schema.relation(src).unwrap().attr_id("kind").unwrap();
        let cond = found
            .cinds
            .iter()
            .find(|d| d.cind.lhs_rel() == src && !d.cind.xp().is_empty())
            .expect("a conditioned near-IND must be mined");
        assert_eq!(
            cond.cind.xp(),
            &[(kind, Value::str("good"))],
            "the kind=good condition makes the inclusion exact"
        );
        assert_eq!(cond.support, 6);
        assert_eq!(cond.confidence, 1.0);
        assert!(condep_core::satisfy::satisfies_normal(&db, &cond.cind));
        // Strict mode must NOT emit the bare (violated) near-IND.
        assert!(found
            .cinds
            .iter()
            .all(|d| condep_core::satisfy::satisfies_normal(&db, &d.cind)));
        // Relaxing the confidence floor must never LOSE the exact
        // conditioned CIND, even when the orphan rate (25% here)
        // exceeds the relaxed tolerance (10%).
        let relaxed = discover(
            &db,
            &DiscoveryConfig {
                min_support: 2,
                min_confidence: 0.9,
                ..DiscoveryConfig::default()
            },
        );
        assert!(
            relaxed
                .cinds
                .iter()
                .any(|d| d.cind.xp() == [(kind, Value::str("good"))]),
            "relaxed mode must keep the conditioned near-IND: {:?}",
            relaxed.cinds
        );
    }

    #[test]
    fn approximate_mode_emits_the_near_dependencies() {
        let schema = Arc::new(
            Schema::builder()
                .relation(
                    "r",
                    &[
                        ("id", Domain::string()),
                        ("k", Domain::string()),
                        ("v", Domain::string()),
                    ],
                )
                .finish(),
        );
        let mut db = Database::empty(schema);
        // k=a determines v except for one dissenter (9 of 10 agree).
        for i in 0..9 {
            db.insert_into("r", tuple![format!("t{i}").as_str(), "a", "same"])
                .unwrap();
        }
        db.insert_into("r", tuple!["t9", "a", "dissent"]).unwrap();
        let r = db.schema().rel_id("r").unwrap();
        let rs = db.schema().relation(r).unwrap();
        let (k, v) = (rs.attr_id("k").unwrap(), rs.attr_id("v").unwrap());
        let broken_fd = |d: &DiscoveredCfd| {
            d.cfd.lhs() == [k]
                && d.cfd.rhs() == v
                && d.cfd.lhs_pat().is_all_any()
                && !d.cfd.is_constant_rhs()
        };
        let strict = discover(&db, &config(2));
        assert!(
            !strict.cfds.iter().any(&broken_fd),
            "strict mode rejects the broken FD"
        );
        let relaxed = discover(
            &db,
            &DiscoveryConfig {
                min_support: 2,
                min_confidence: 0.8,
                ..DiscoveryConfig::default()
            },
        );
        let fd = relaxed
            .cfds
            .iter()
            .find(|d| broken_fd(d))
            .expect("approximate k -> v must surface");
        assert_eq!(fd.support, 10);
        assert!((fd.confidence - 0.9).abs() < 1e-9, "{}", fd.confidence);
    }

    #[test]
    fn implied_candidates_are_pruned() {
        // Two copies of the same functional column pair: the ranked walk
        // keeps the FD and prunes whatever the chase proves redundant —
        // and never keeps two identical dependencies.
        let db = city_db();
        let found = discover(&db, &config(2));
        let mut seen = std::collections::HashSet::new();
        for d in &found.cfds {
            assert!(
                seen.insert(format!("{}", d.cfd.display(db.schema()))),
                "duplicate dependency kept: {}",
                d.cfd.display(db.schema())
            );
        }
        assert!(found.stats.implication_checks > 0);
    }

    #[test]
    fn discovery_is_deterministic() {
        let db = city_db();
        let a = discover(&db, &config(2));
        let b = discover(&db, &config(2));
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.cfds.len(), b.cfds.len());
        for (x, y) in a.cfds.iter().zip(&b.cfds) {
            assert_eq!(x.cfd, y.cfd);
            assert_eq!(x.support, y.support);
            assert_eq!(x.confidence, y.confidence);
        }
        for (x, y) in a.cinds.iter().zip(&b.cinds) {
            assert_eq!(x.cind, y.cind);
            assert_eq!(x.support, y.support);
        }
    }

    #[test]
    fn caps_bound_the_output() {
        let db = city_db();
        let capped = discover(
            &db,
            &DiscoveryConfig {
                min_support: 2,
                max_cfds_per_relation: 1,
                max_cinds: 1,
                ..DiscoveryConfig::default()
            },
        );
        let mut per_rel: HashMap<RelId, usize, FxBuildHasher> = HashMap::default();
        for d in &capped.cfds {
            *per_rel.entry(d.cfd.rel()).or_insert(0) += 1;
        }
        assert!(per_rel.values().all(|&n| n <= 1));
        assert!(capped.cinds.len() <= 1);
        assert!(capped.stats.pruned_capped > 0);
    }
}
