//! Level-wise CFD mining over stripped partitions.
//!
//! Per relation the miner walks the attribute-set lattice bottom-up:
//! level 1 holds the single-attribute partitions (built straight from
//! the [`condep_query::SymIndex`] counting-sort CSR over pre-symbolized
//! columns), level `k + 1` refines level-`k` partitions by one more
//! column. At every node `X` and for every RHS attribute `A ∉ X` the
//! per-class tallies of `π_X` against `A`'s column answer three
//! questions at once:
//!
//! * does the **variable** CFD (the plain FD `X → A`, all-wildcard
//!   pattern row) hold — and with what support (`‖π_X‖`) and confidence
//!   (fraction of supported tuples outside each class's majority that
//!   would have to go)?
//! * which **constant** tableau rows `(X = x̄ ‖ A = a)` hold: each
//!   equivalence class of `π_X` is one candidate constant pattern, its
//!   size the support, its majority-`A` frequency the confidence;
//! * is the candidate worth keeping at all — trivial (`A ∈ X`), vacuous
//!   (key `X`), or non-minimal (`X' ⊊ X` already gives `X' → A`
//!   exactly) candidates are pruned during the walk, before ranking.
//!
//! The walk is exact TANE-style for the wildcard level and a
//! *specialization* pass (constants per class) rather than a full CTANE
//! pattern-lattice exploration: mixed wildcard/constant LHS patterns are
//! out of scope (see the crate docs for the non-goals).

use crate::config::DiscoveryConfig;
use crate::partition::{tally_class, StrippedPartition};
use crate::{DiscoveredCfd, DiscoveryStats};
use condep_cfd::NormalCfd;
use condep_model::{AttrId, Interner, PValue, PatternRow, RelId, SymTables, SymValue, Value};

/// Resolves an interned symbol back to its [`Value`].
pub(crate) fn value_of(interner: &Interner, sym: SymValue) -> Value {
    match sym {
        SymValue::Bool(b) => Value::bool(b),
        SymValue::Int(i) => Value::int(i),
        SymValue::Str(s) => Value::str(interner.resolve(s)),
    }
}

/// One lattice node: a sorted attribute set and its stripped partition.
struct Node {
    attrs: Vec<AttrId>,
    partition: StrippedPartition,
}

/// Exact FDs found so far, per RHS attribute — the minimality filter.
struct MinimalFds {
    /// `per_rhs[A] =` list of minimal exact LHS sets for `A`.
    per_rhs: Vec<Vec<Vec<AttrId>>>,
}

impl MinimalFds {
    fn new(arity: usize) -> Self {
        MinimalFds {
            per_rhs: vec![Vec::new(); arity],
        }
    }

    /// Is some already-found exact LHS for `rhs` a subset of `attrs`?
    fn covers(&self, rhs: AttrId, attrs: &[AttrId]) -> bool {
        self.per_rhs[rhs.index()]
            .iter()
            .any(|lhs| lhs.iter().all(|a| attrs.contains(a)))
    }

    fn record(&mut self, rhs: AttrId, attrs: &[AttrId]) {
        self.per_rhs[rhs.index()].push(attrs.to_vec());
    }
}

/// Mines every CFD candidate of one relation. Candidates arrive
/// unranked; the caller ranks, dedups against implication and caps.
pub(crate) fn mine_relation(
    rel: RelId,
    interner: &Interner,
    tables: &SymTables,
    config: &DiscoveryConfig,
    stats: &mut DiscoveryStats,
    out: &mut Vec<DiscoveredCfd>,
) {
    let cols = tables.rel_columns(rel);
    let arity = cols.len();
    let rows = tables.rows(rel);
    if arity < 2 || rows < 2 {
        return;
    }
    let min_support = config.support_floor();
    let min_confidence = config.confidence_floor();
    let mut minimal = MinimalFds::new(arity);
    let mut tally_buf: Vec<SymValue> = Vec::new();

    // Level 1: one partition per attribute, via the SymIndex CSR path.
    let mut level: Vec<Node> = (0..arity)
        .filter_map(|a| {
            stats.lattice_nodes += 1;
            let partition = StrippedPartition::from_column(&cols[a]);
            // A key attribute supports nothing and refines to nothing.
            (!partition.is_key()).then(|| Node {
                attrs: vec![AttrId(a as u32)],
                partition,
            })
        })
        .collect();

    for depth in 1..=config.max_lhs {
        for node in &level {
            if node.partition.support() < min_support {
                continue;
            }
            for rhs in (0..arity).map(|a| AttrId(a as u32)) {
                if node.attrs.contains(&rhs) {
                    stats.pruned_trivial += 1;
                    continue;
                }
                if minimal.covers(rhs, &node.attrs) {
                    // X ⊇ X' with X' → A exact: everything this node
                    // could say about A specializes the minimal FD.
                    stats.pruned_nonminimal += 1;
                    continue;
                }
                emit_candidates(
                    rel,
                    node,
                    rhs,
                    cols,
                    interner,
                    config,
                    min_support,
                    min_confidence,
                    &mut minimal,
                    &mut tally_buf,
                    stats,
                    out,
                );
            }
        }
        if depth == config.max_lhs {
            break;
        }
        // Extend each node by one attribute beyond its maximum — the
        // standard prefix-free candidate generation; refinement reuses
        // the parent partition. Stripped support is anti-monotone under
        // refinement, so a node already below the support floor can
        // never produce an emitting child and is not extended.
        let mut next: Vec<Node> = Vec::new();
        for node in &level {
            if node.partition.support() < min_support {
                continue;
            }
            let max = node.attrs.last().expect("nodes are non-empty").index();
            for (b, col) in cols.iter().enumerate().skip(max + 1) {
                stats.lattice_nodes += 1;
                let partition = node.partition.refine(col);
                if partition.is_key() {
                    continue;
                }
                let mut attrs = node.attrs.clone();
                attrs.push(AttrId(b as u32));
                next.push(Node { attrs, partition });
            }
        }
        level = next;
    }
}

/// Emits the variable row and the qualifying constant rows of one
/// `(X, A)` candidate, updating the minimality filter.
#[allow(clippy::too_many_arguments)]
fn emit_candidates(
    rel: RelId,
    node: &Node,
    rhs: AttrId,
    cols: &[Vec<SymValue>],
    interner: &Interner,
    config: &DiscoveryConfig,
    min_support: usize,
    min_confidence: f64,
    minimal: &mut MinimalFds,
    tally_buf: &mut Vec<SymValue>,
    stats: &mut DiscoveryStats,
    out: &mut Vec<DiscoveredCfd>,
) {
    let rhs_col = &cols[rhs.index()];
    let support = node.partition.support();
    let mut kept_tuples = 0usize;
    // (class index, tally) for classes that qualify as constant rows.
    let mut constant_rows: Vec<(usize, crate::partition::ClassTally)> = Vec::new();
    for (ci, class) in node.partition.classes().enumerate() {
        let tally = tally_class(class, rhs_col, tally_buf);
        kept_tuples += tally.max_count;
        let class_confidence = tally.max_count as f64 / tally.len as f64;
        if tally.len >= min_support && class_confidence >= min_confidence {
            constant_rows.push((ci, tally));
        }
    }
    stats.cfd_candidates += 1 + constant_rows.len();

    // Variable row: the plain FD X → A.
    let exact = kept_tuples == support;
    let confidence = kept_tuples as f64 / support as f64;
    if exact {
        minimal.record(rhs, &node.attrs);
    }
    if support >= min_support && confidence >= min_confidence {
        out.push(DiscoveredCfd {
            cfd: NormalCfd::new(
                rel,
                node.attrs.clone(),
                PatternRow::all_any(node.attrs.len()),
                rhs,
                PValue::Any,
            ),
            support,
            confidence,
            interval: None,
        });
    }

    // Constant rows: one per qualifying class, largest first (class
    // order breaks ties deterministically), capped per candidate.
    if constant_rows.len() > config.max_patterns_per_fd {
        stats.pruned_capped += constant_rows.len() - config.max_patterns_per_fd;
        constant_rows.sort_by(|(ai, a), (bi, b)| b.len.cmp(&a.len).then(ai.cmp(bi)));
        constant_rows.truncate(config.max_patterns_per_fd);
        constant_rows.sort_by_key(|&(ci, _)| ci);
    }
    let classes: Vec<&[u32]> = node.partition.classes().collect();
    for (ci, tally) in constant_rows {
        // Every class member agrees on X; the first (lowest) position
        // is the canonical witness for the constants.
        let witness = classes[ci][0] as usize;
        let cells: Vec<PValue> = node
            .attrs
            .iter()
            .map(|a| PValue::Const(value_of(interner, cols[a.index()][witness])))
            .collect();
        out.push(DiscoveredCfd {
            cfd: NormalCfd::new(
                rel,
                node.attrs.clone(),
                PatternRow::new(cells),
                rhs,
                PValue::Const(value_of(interner, tally.majority)),
            ),
            support: tally.len,
            confidence: tally.max_count as f64 / tally.len as f64,
            interval: None,
        });
    }
}
