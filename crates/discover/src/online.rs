//! Incremental (online) dependency discovery from stream mutations.
//!
//! [`OnlineMiner`] maintains the **level-1** evidence the batch miner
//! derives from scratch — per-attribute-pair value sketches (the
//! class → RHS-tally view of a stripped partition restricted to one LHS
//! attribute) and per-column-pair inclusion miss counters — and updates
//! them in O(arity²) per effective mutation, never rescanning the
//! instance. [`OnlineMiner::proposals`] then replays the batch miner's
//! emission rules over the sketches, so on any snapshot the proposal
//! set is a **superset** of what [`crate::discover`] keeps at
//! `max_lhs = 1` with the condition hunt disabled (the batch caps,
//! implication pruning and cover pass only *remove* dependencies) —
//! the property the online-vs-batch oracle test pins down.
//!
//! The miner works on **values**, not interned symbols: a long-lived
//! monitor must survive interner compaction, and level-1 sketches touch
//! each mutation's own cells only, so there is no hot re-hash loop to
//! avoid. Feed it *effective* operations only (the workspace's
//! instances are sets; an insert of a present tuple or a delete of an
//! absent one must not reach [`OnlineMiner::observe_insert`] /
//! [`OnlineMiner::observe_delete`] — `condep::report::QualityMonitor`
//! filters on the stream's own no-op detection).

use crate::{DiscoveredCfd, DiscoveredCind};
use condep_cfd::NormalCfd;
use condep_core::NormalCind;
use condep_model::fxhash::FxBuildHasher;
use condep_model::{AttrId, Database, PValue, PatternRow, RelId, Schema, Tuple, Value};
use condep_validate::Mutation;
use std::collections::HashMap;
use std::sync::Arc;

type ValueCounts = HashMap<Value, usize, FxBuildHasher>;

/// Knobs of one [`OnlineMiner`].
#[derive(Clone, Copy, Debug)]
pub struct OnlineConfig {
    /// Minimum support a proposal needs (same meaning as
    /// [`crate::DiscoveryConfig::min_support`]).
    pub min_support: usize,
    /// Minimum confidence a proposal needs.
    pub min_confidence: f64,
    /// Confidence floor below which a previously-promoted dependency is
    /// retired by the monitor (hysteresis: propose at
    /// `min_confidence`, retire only when evidence decays below this).
    pub retire_confidence: f64,
    /// Effective mutations between monitor-driven proposal polls.
    pub window: usize,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            min_support: 8,
            min_confidence: 1.0,
            retire_confidence: 0.9,
            window: 1_024,
        }
    }
}

/// Per-relation level-1 sketches.
#[derive(Clone, Debug)]
struct RelSketch {
    /// Live rows.
    rows: usize,
    /// Per attribute: value → occurrence count.
    cols: Vec<ValueCounts>,
    /// Per ordered attribute pair `(x, y)`, flattened `x·arity + y`
    /// (diagonal unused): LHS value → RHS value → count.
    pairs: Vec<HashMap<Value, ValueCounts, FxBuildHasher>>,
}

/// One inclusion candidate `src[attr] ⊆ dst[attr]`, tracked by its
/// miss count (source rows whose value is absent from the target
/// column) so coverage is O(1) to read.
#[derive(Clone, Debug)]
struct CindPair {
    src_rel: RelId,
    src_attr: AttrId,
    dst_rel: RelId,
    dst_attr: AttrId,
    misses: usize,
}

/// The current proposal set of one [`OnlineMiner::proposals`] poll.
#[derive(Clone, Debug, Default)]
pub struct OnlineProposals {
    /// Proposed CFDs (variable FDs and constant rows), with evidence.
    pub cfds: Vec<DiscoveredCfd>,
    /// Proposed (unconditioned, unary) CINDs, with evidence.
    pub cinds: Vec<DiscoveredCind>,
}

impl OnlineProposals {
    /// Total proposed dependencies.
    pub fn len(&self) -> usize {
        self.cfds.len() + self.cinds.len()
    }

    /// Nothing proposed?
    pub fn is_empty(&self) -> bool {
        self.cfds.is_empty() && self.cinds.is_empty()
    }
}

/// Incremental level-1 dependency miner (see the module docs).
#[derive(Clone, Debug)]
pub struct OnlineMiner {
    schema: Arc<Schema>,
    config: OnlineConfig,
    rels: Vec<RelSketch>,
    cinds: Vec<CindPair>,
    /// Pair indexes by source column — the per-mutation update walks
    /// only the pairs the mutated cells touch.
    src_of: HashMap<(RelId, AttrId), Vec<usize>, FxBuildHasher>,
    /// Pair indexes by target column.
    dst_of: HashMap<(RelId, AttrId), Vec<usize>, FxBuildHasher>,
    /// Pair index by full column pair (retirement lookups).
    pair_of: HashMap<(RelId, AttrId, RelId, AttrId), usize, FxBuildHasher>,
    ops: u64,
}

impl OnlineMiner {
    /// An empty miner over `schema`; [`OnlineMiner::seed`] it with the
    /// current snapshot before streaming mutations.
    pub fn new(schema: Arc<Schema>, config: OnlineConfig) -> Self {
        let rels = schema
            .iter()
            .map(|(_, rs)| {
                let arity = rs.arity();
                RelSketch {
                    rows: 0,
                    cols: (0..arity).map(|_| ValueCounts::default()).collect(),
                    pairs: (0..arity * arity).map(|_| HashMap::default()).collect(),
                }
            })
            .collect();
        // The same candidate column pairs the batch CIND miner probes:
        // distinct columns of matching base type.
        let columns: Vec<(RelId, AttrId)> = schema
            .iter()
            .flat_map(|(rel, rs)| (0..rs.arity()).map(move |a| (rel, AttrId(a as u32))))
            .collect();
        let mut cinds = Vec::new();
        let mut src_of: HashMap<(RelId, AttrId), Vec<usize>, FxBuildHasher> = HashMap::default();
        let mut dst_of: HashMap<(RelId, AttrId), Vec<usize>, FxBuildHasher> = HashMap::default();
        let mut pair_of = HashMap::default();
        for &(src_rel, src_attr) in &columns {
            for &(dst_rel, dst_attr) in &columns {
                if (src_rel, src_attr) == (dst_rel, dst_attr)
                    || base_type(&schema, src_rel, src_attr)
                        != base_type(&schema, dst_rel, dst_attr)
                {
                    continue;
                }
                let i = cinds.len();
                cinds.push(CindPair {
                    src_rel,
                    src_attr,
                    dst_rel,
                    dst_attr,
                    misses: 0,
                });
                src_of.entry((src_rel, src_attr)).or_default().push(i);
                dst_of.entry((dst_rel, dst_attr)).or_default().push(i);
                pair_of.insert((src_rel, src_attr, dst_rel, dst_attr), i);
            }
        }
        OnlineMiner {
            schema,
            config,
            rels,
            cinds,
            src_of,
            dst_of,
            pair_of,
            ops: 0,
        }
    }

    /// The miner's configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// Effective mutations observed since the seed.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Absorbs a full snapshot (each tuple once — instances are sets).
    /// Resets the [`OnlineMiner::ops`] counter: seeding is not stream
    /// traffic.
    pub fn seed(&mut self, db: &Database) {
        for (rel, relation) in db.iter() {
            for t in relation.iter() {
                self.observe_insert(rel, t);
            }
        }
        self.ops = 0;
    }

    /// Routes one *effective* mutation to the sketch updates. An
    /// `Update` is a delete of `old` plus an insert of `new`; when the
    /// update degenerated to a pure deletion (`new` already present),
    /// feed [`OnlineMiner::observe_delete`] directly instead.
    pub fn observe(&mut self, mutation: &Mutation) {
        match mutation {
            Mutation::Insert { rel, tuple } => self.observe_insert(*rel, tuple),
            Mutation::Delete { rel, tuple } => self.observe_delete(*rel, tuple),
            Mutation::Update { rel, old, new } => {
                self.observe_delete(*rel, old);
                self.observe_insert(*rel, new);
            }
        }
    }

    /// Absorbs one effective insert of `t` into `rel`.
    pub fn observe_insert(&mut self, rel: RelId, t: &Tuple) {
        self.ops += 1;
        // Target transitions (0 → 1) first, against pre-insert source
        // counts: exactly the rows that were missing stop missing. The
        // inserted tuple's own source cells are not yet counted, which
        // is right — they never missed.
        for (a, v) in t.values().iter().enumerate() {
            let attr = AttrId(a as u32);
            if self.rels[rel.index()].cols[a].contains_key(v) {
                continue;
            }
            if let Some(pairs) = self.dst_of.get(&(rel, attr)) {
                for &i in pairs {
                    let pair = &self.cinds[i];
                    let n = self.rels[pair.src_rel.index()].cols[pair.src_attr.index()]
                        .get(v)
                        .copied()
                        .unwrap_or(0);
                    self.cinds[i].misses -= n;
                }
            }
        }
        // Commit the row into the column and pair sketches.
        {
            let sketch = &mut self.rels[rel.index()];
            let arity = sketch.cols.len();
            sketch.rows += 1;
            for (a, v) in t.values().iter().enumerate() {
                *sketch.cols[a].entry(v.clone()).or_insert(0) += 1;
            }
            for x in 0..arity {
                for y in 0..arity {
                    if x == y {
                        continue;
                    }
                    let class = sketch.pairs[x * arity + y]
                        .entry(t.values()[x].clone())
                        .or_default();
                    *class.entry(t.values()[y].clone()).or_insert(0) += 1;
                }
            }
        }
        // New source cells, against post-insert target counts (a tuple
        // providing both sides of a pair counts itself as covered).
        for (a, v) in t.values().iter().enumerate() {
            let attr = AttrId(a as u32);
            if let Some(pairs) = self.src_of.get(&(rel, attr)) {
                for &i in pairs {
                    let pair = &self.cinds[i];
                    let present =
                        self.rels[pair.dst_rel.index()].cols[pair.dst_attr.index()].contains_key(v);
                    if !present {
                        self.cinds[i].misses += 1;
                    }
                }
            }
        }
    }

    /// Absorbs one effective delete of `t` from `rel`.
    pub fn observe_delete(&mut self, rel: RelId, t: &Tuple) {
        self.ops += 1;
        // Departing source cells first, against pre-delete target
        // counts: each was missing iff its value was absent then.
        for (a, v) in t.values().iter().enumerate() {
            let attr = AttrId(a as u32);
            if let Some(pairs) = self.src_of.get(&(rel, attr)) {
                for &i in pairs {
                    let pair = &self.cinds[i];
                    let present =
                        self.rels[pair.dst_rel.index()].cols[pair.dst_attr.index()].contains_key(v);
                    if !present {
                        self.cinds[i].misses -= 1;
                    }
                }
            }
        }
        // Retract the row from the column and pair sketches.
        {
            let sketch = &mut self.rels[rel.index()];
            let arity = sketch.cols.len();
            sketch.rows -= 1;
            for (a, v) in t.values().iter().enumerate() {
                let count = sketch.cols[a].get_mut(v).expect("delete of a counted cell");
                *count -= 1;
                if *count == 0 {
                    sketch.cols[a].remove(v);
                }
            }
            for x in 0..arity {
                for y in 0..arity {
                    if x == y {
                        continue;
                    }
                    let map = &mut sketch.pairs[x * arity + y];
                    let class = map.get_mut(&t.values()[x]).expect("counted class");
                    let count = class.get_mut(&t.values()[y]).expect("counted RHS value");
                    *count -= 1;
                    if *count == 0 {
                        class.remove(&t.values()[y]);
                    }
                    if class.is_empty() {
                        map.remove(&t.values()[x]);
                    }
                }
            }
        }
        // Target transitions (1 → 0), against post-delete source
        // counts: every remaining source row with the vanished value
        // starts missing.
        for (a, v) in t.values().iter().enumerate() {
            let attr = AttrId(a as u32);
            if self.rels[rel.index()].cols[a].contains_key(v) {
                continue;
            }
            if let Some(pairs) = self.dst_of.get(&(rel, attr)) {
                for &i in pairs {
                    let pair = &self.cinds[i];
                    let n = self.rels[pair.src_rel.index()].cols[pair.src_attr.index()]
                        .get(v)
                        .copied()
                        .unwrap_or(0);
                    self.cinds[i].misses += n;
                }
            }
        }
    }

    /// The dependencies the current sketches support at the configured
    /// floors, with evidence. Deterministic for a fixed tuple set:
    /// relations and attribute pairs stream in dense order, classes in
    /// value order.
    pub fn proposals(&self) -> OnlineProposals {
        let mut out = OnlineProposals::default();
        let floor_c = self.config.min_confidence.clamp(0.0, 1.0);
        let floor_s = self.config.min_support.max(2);
        for (rel, rs) in self.schema.iter() {
            let sketch = &self.rels[rel.index()];
            if sketch.rows == 0 {
                continue;
            }
            let arity = rs.arity();
            for x in 0..arity {
                for y in 0..arity {
                    if x == y {
                        continue;
                    }
                    let map = &sketch.pairs[x * arity + y];
                    let mut classes: Vec<(&Value, &ValueCounts)> = map.iter().collect();
                    classes.sort_by(|a, b| a.0.cmp(b.0));
                    let mut support = 0usize;
                    let mut kept = 0usize;
                    let mut constants: Vec<DiscoveredCfd> = Vec::new();
                    for (xv, tally) in classes {
                        let len: usize = tally.values().sum();
                        let (maj_v, maj_c) = majority(tally);
                        if len >= 2 {
                            // The stripped-partition view: singleton
                            // classes support nothing.
                            support += len;
                            kept += maj_c;
                        }
                        let confidence = maj_c as f64 / len as f64;
                        if len >= floor_s && confidence >= floor_c {
                            let cfd = NormalCfd::new(
                                rel,
                                vec![AttrId(x as u32)],
                                PatternRow::new(vec![PValue::Const(xv.clone())]),
                                AttrId(y as u32),
                                PValue::Const(maj_v.clone()),
                            );
                            if !cfd.is_trivial() {
                                constants.push(DiscoveredCfd {
                                    cfd,
                                    support: len,
                                    confidence,
                                    interval: None,
                                });
                            }
                        }
                    }
                    if support >= floor_s {
                        let confidence = kept as f64 / support as f64;
                        if confidence >= floor_c {
                            let cfd = NormalCfd::new(
                                rel,
                                vec![AttrId(x as u32)],
                                PatternRow::all_any(1),
                                AttrId(y as u32),
                                PValue::Any,
                            );
                            if !cfd.is_trivial() {
                                out.cfds.push(DiscoveredCfd {
                                    cfd,
                                    support,
                                    confidence,
                                    interval: None,
                                });
                            }
                        }
                    }
                    out.cfds.append(&mut constants);
                }
            }
        }
        for pair in &self.cinds {
            let rows = self.rels[pair.src_rel.index()].rows;
            if rows < floor_s || self.rels[pair.dst_rel.index()].rows == 0 {
                continue;
            }
            let confidence = (rows - pair.misses) as f64 / rows as f64;
            if confidence < floor_c {
                continue;
            }
            let cind = NormalCind::new(
                pair.src_rel,
                pair.dst_rel,
                vec![pair.src_attr],
                vec![pair.dst_attr],
                Vec::new(),
                Vec::new(),
            );
            if !cind.is_trivial() {
                out.cinds.push(DiscoveredCind {
                    cind,
                    support: rows,
                    confidence,
                    interval: None,
                });
            }
        }
        out
    }

    /// Current `(support, confidence)` of a level-1 CFD — the
    /// retirement probe. `None` when the shape is outside the online
    /// fragment (multi-attribute LHS, mixed pattern); support 0 reads
    /// as vacuously satisfied.
    pub fn confidence_of_cfd(&self, cfd: &NormalCfd) -> Option<(usize, f64)> {
        if cfd.lhs().len() != 1 || cfd.rel().index() >= self.rels.len() {
            return None;
        }
        let (x, y) = (cfd.lhs()[0], cfd.rhs());
        if x == y {
            return None;
        }
        let arity = self.schema.relation(cfd.rel()).ok()?.arity();
        if x.index() >= arity || y.index() >= arity {
            return None;
        }
        let map = &self.rels[cfd.rel().index()].pairs[x.index() * arity + y.index()];
        if cfd.lhs_pat().is_all_any() && !cfd.is_constant_rhs() {
            let mut support = 0usize;
            let mut kept = 0usize;
            for tally in map.values() {
                let len: usize = tally.values().sum();
                if len < 2 {
                    continue;
                }
                support += len;
                kept += majority(tally).1;
            }
            if support == 0 {
                return Some((0, 1.0));
            }
            return Some((support, kept as f64 / support as f64));
        }
        let xv = match cfd.lhs_pat().cell(0) {
            PValue::Const(v) => v,
            PValue::Any => return None,
        };
        let yv = match cfd.rhs_pat() {
            PValue::Const(v) => v,
            PValue::Any => return None,
        };
        match map.get(xv) {
            None => Some((0, 1.0)),
            Some(tally) => {
                let len: usize = tally.values().sum();
                let agree = tally.get(yv).copied().unwrap_or(0);
                Some((len, agree as f64 / len as f64))
            }
        }
    }

    /// Current `(support, confidence)` of an unconditioned unary CIND —
    /// the retirement probe. `None` outside the online fragment.
    pub fn confidence_of_cind(&self, cind: &NormalCind) -> Option<(usize, f64)> {
        if cind.x().len() != 1 || !cind.xp().is_empty() || !cind.yp().is_empty() {
            return None;
        }
        let i = *self
            .pair_of
            .get(&(cind.lhs_rel(), cind.x()[0], cind.rhs_rel(), cind.y()[0]))?;
        let rows = self.rels[cind.lhs_rel().index()].rows;
        if rows == 0 {
            return Some((0, 1.0));
        }
        Some((rows, (rows - self.cinds[i].misses) as f64 / rows as f64))
    }
}

/// `(value, count)` of the majority RHS value; count ties break toward
/// the smallest value (the batch miner breaks toward the smallest
/// interned symbol — identical on sorted-insert data, close enough for
/// ranking everywhere else).
fn majority(tally: &ValueCounts) -> (&Value, usize) {
    tally
        .iter()
        .map(|(v, &c)| (v, c))
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(a.0)))
        .expect("classes are non-empty")
}

fn base_type(schema: &Schema, rel: RelId, attr: AttrId) -> condep_model::BaseType {
    schema
        .relation(rel)
        .expect("relation in range")
        .attribute(attr)
        .expect("attribute in range")
        .domain()
        .base_type()
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_model::{tuple, Domain};

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder()
                .relation(
                    "fact",
                    &[
                        ("city", Domain::string()),
                        ("country", Domain::string()),
                        ("zip", Domain::string()),
                    ],
                )
                .relation("cities", &[("name", Domain::string())])
                .finish(),
        )
    }

    fn city_db() -> Database {
        let mut db = Database::empty(schema());
        let rows = [
            ("EDI", "UK"),
            ("EDI", "UK"),
            ("EDI", "UK"),
            ("NYC", "US"),
            ("NYC", "US"),
            ("NYC", "US"),
            ("GLA", "UK"),
            ("GLA", "UK"),
        ];
        for (i, (city, country)) in rows.iter().enumerate() {
            db.insert_into("fact", tuple![*city, *country, format!("z{i}").as_str()])
                .unwrap();
        }
        for city in ["EDI", "NYC", "GLA"] {
            db.insert_into("cities", tuple![city]).unwrap();
        }
        db
    }

    fn config(min_support: usize) -> OnlineConfig {
        OnlineConfig {
            min_support,
            ..OnlineConfig::default()
        }
    }

    #[test]
    fn seeded_proposals_cover_the_planted_dependencies() {
        let db = city_db();
        let mut miner = OnlineMiner::new(db.schema().clone(), config(2));
        miner.seed(&db);
        let props = miner.proposals();
        let schema = db.schema();
        let fact = schema.rel_id("fact").unwrap();
        let cities = schema.rel_id("cities").unwrap();
        let rs = schema.relation(fact).unwrap();
        let (city, country) = (rs.attr_id("city").unwrap(), rs.attr_id("country").unwrap());
        let fd = props
            .cfds
            .iter()
            .find(|d| {
                d.cfd.rel() == fact
                    && d.cfd.lhs() == [city]
                    && d.cfd.rhs() == country
                    && d.cfd.lhs_pat().is_all_any()
            })
            .expect("city → country proposed");
        assert_eq!(fd.support, 8);
        assert_eq!(fd.confidence, 1.0);
        assert!(props
            .cfds
            .iter()
            .any(|d| d.cfd.lhs_pat().cell(0) == &PValue::constant("EDI")
                && d.cfd.rhs_pat() == &PValue::constant("UK")
                && d.support == 3));
        assert!(props.cinds.iter().any(|d| d.cind.lhs_rel() == fact
            && d.cind.rhs_rel() == cities
            && d.confidence == 1.0));
        // Soundness of exact proposals on the snapshot.
        for d in &props.cfds {
            assert!(condep_cfd::satisfy::satisfies_normal(&db, &d.cfd));
        }
        for d in &props.cinds {
            assert!(condep_core::satisfy::satisfies_normal(&db, &d.cind));
        }
    }

    /// The sketches are a pure function of the live tuple set: any
    /// insert/delete path reaching a set must equal seeding that set.
    #[test]
    fn incremental_path_equals_reseeding() {
        let db = city_db();
        let fact = db.schema().rel_id("fact").unwrap();
        let mut streamed = OnlineMiner::new(db.schema().clone(), config(2));
        streamed.seed(&db);
        // Churn: orphan city arrives (breaks the CIND), is updated to a
        // known city, then a fresh EDI row lands.
        streamed.observe(&Mutation::Insert {
            rel: fact,
            tuple: tuple!["ABD", "UK", "z8"],
        });
        streamed.observe(&Mutation::Update {
            rel: fact,
            old: tuple!["ABD", "UK", "z8"],
            new: tuple!["GLA", "UK", "z8"],
        });
        streamed.observe(&Mutation::Insert {
            rel: fact,
            tuple: tuple!["EDI", "UK", "z9"],
        });
        streamed.observe(&Mutation::Delete {
            rel: fact,
            tuple: tuple!["GLA", "UK", "z6"],
        });
        assert_eq!(streamed.ops(), 5, "update counts as delete + insert");

        let mut end_state = city_db();
        end_state
            .insert_into("fact", tuple!["GLA", "UK", "z8"])
            .unwrap();
        end_state
            .insert_into("fact", tuple!["EDI", "UK", "z9"])
            .unwrap();
        end_state
            .remove(fact, &tuple!["GLA", "UK", "z6"])
            .expect("the churned-out tuple is present");
        let mut reseeded = OnlineMiner::new(end_state.schema().clone(), config(2));
        reseeded.seed(&end_state);

        let a = streamed.proposals();
        let b = reseeded.proposals();
        assert_eq!(a.cfds.len(), b.cfds.len());
        assert_eq!(a.cinds.len(), b.cinds.len());
        for (x, y) in a.cfds.iter().zip(&b.cfds) {
            assert_eq!(x.cfd, y.cfd);
            assert_eq!(x.support, y.support);
            assert_eq!(x.confidence, y.confidence);
        }
        for (x, y) in a.cinds.iter().zip(&b.cinds) {
            assert_eq!(x.cind, y.cind);
            assert_eq!((x.support, x.confidence), (y.support, y.confidence));
        }
    }

    #[test]
    fn confidence_decays_and_recovers_through_the_probe() {
        let db = city_db();
        let fact = db.schema().rel_id("fact").unwrap();
        let rs = db.schema().relation(fact).unwrap();
        let fd = NormalCfd::new(
            fact,
            vec![rs.attr_id("city").unwrap()],
            PatternRow::all_any(1),
            rs.attr_id("country").unwrap(),
            PValue::Any,
        );
        let mut miner = OnlineMiner::new(db.schema().clone(), config(2));
        miner.seed(&db);
        assert_eq!(miner.confidence_of_cfd(&fd), Some((8, 1.0)));
        // A dissenting country for EDI drops confidence below 1.
        let dissent = tuple!["EDI", "FR", "z9"];
        miner.observe_insert(fact, &dissent);
        let (support, confidence) = miner.confidence_of_cfd(&fd).unwrap();
        assert_eq!(support, 9);
        assert!((confidence - 8.0 / 9.0).abs() < 1e-9);
        miner.observe_delete(fact, &dissent);
        assert_eq!(miner.confidence_of_cfd(&fd), Some((8, 1.0)));
        // CIND probe: an orphan city breaks coverage.
        let cities = db.schema().rel_id("cities").unwrap();
        let ind = NormalCind::new(
            fact,
            cities,
            vec![rs.attr_id("city").unwrap()],
            vec![AttrId(0)],
            Vec::new(),
            Vec::new(),
        );
        assert_eq!(miner.confidence_of_cind(&ind), Some((8, 1.0)));
        miner.observe_insert(fact, &tuple!["ABD", "UK", "z9"]);
        let (support, confidence) = miner.confidence_of_cind(&ind).unwrap();
        assert_eq!(support, 9);
        assert!((confidence - 8.0 / 9.0).abs() < 1e-9);
        // Outside the online fragment: conditioned CINDs read None.
        let conditioned = NormalCind::new(
            fact,
            cities,
            vec![rs.attr_id("city").unwrap()],
            vec![AttrId(0)],
            vec![(rs.attr_id("country").unwrap(), Value::str("UK"))],
            Vec::new(),
        );
        assert_eq!(miner.confidence_of_cind(&conditioned), None);
    }
}
