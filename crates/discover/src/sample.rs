//! Deterministic reservoir sampling for budgeted discovery.
//!
//! Sampling happens **before** symbolization: at 10M rows the dominant
//! cost of a full [`crate::discover`] run is `SymTables::build` plus
//! the level-1 index builds, all linear in the instance. Feeding the
//! lattice walk a bounded sample caps that whole pipeline at the
//! budget, and the (cheap, streaming) confirmation pass in
//! [`crate::confirm`] is the only full-data work left.
//!
//! The sample is Algorithm R per relation, driven by an
//! [`rand::rngs::StdRng`] seeded from [`SampleConfig::seed`] and the
//! relation index — deterministic for a fixed `(db, config)`, and
//! stable per relation (adding a relation never reshuffles another's
//! sample). Sampled positions are re-sorted ascending before the rows
//! are copied, so the sampled instance preserves the source's relative
//! tuple order (the miners' tie-breaks stay position-deterministic).

use crate::config::SampleConfig;
use condep_model::{Database, RelId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The sampled snapshot plus enough bookkeeping to scale estimates
/// back to the full instance.
pub(crate) struct SampleOutcome {
    /// The sampled database (relations at or under budget are whole).
    pub db: Database,
    /// Full-instance row count per relation.
    pub full_rows: Vec<usize>,
    /// Sampled row count per relation.
    pub sampled_rows: Vec<usize>,
    /// Was this relation actually downsampled?
    pub downsampled: Vec<bool>,
}

impl SampleOutcome {
    /// Did any relation get downsampled? (If not, the exact path is
    /// strictly better — same cost, no estimation.)
    pub fn any_downsampled(&self) -> bool {
        self.downsampled.iter().any(|&d| d)
    }

    /// `(sampled, full)` row counts for one relation.
    pub fn rows(&self, rel: RelId) -> (usize, usize) {
        (self.sampled_rows[rel.index()], self.full_rows[rel.index()])
    }
}

/// Draws the per-relation reservoir sample of at most `budget` rows.
pub(crate) fn reservoir_sample(db: &Database, config: &SampleConfig) -> SampleOutcome {
    let budget = config.effective_budget();
    let mut out = SampleOutcome {
        db: Database::empty(db.schema().clone()),
        full_rows: Vec::new(),
        sampled_rows: Vec::new(),
        downsampled: Vec::new(),
    };
    for (rel, relation) in db.iter() {
        let n = relation.len();
        out.full_rows.push(n);
        if n <= budget {
            // Whole relation: exact counts for free.
            for t in relation.iter() {
                out.db.insert(rel, t.clone()).expect("same schema");
            }
            out.sampled_rows.push(n);
            out.downsampled.push(false);
            continue;
        }
        // Algorithm R over positions; per-relation stream so samples
        // are independent and stable across schema growth.
        let mut rng = StdRng::seed_from_u64(
            config
                .seed
                .wrapping_add((rel.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        let mut reservoir: Vec<u32> = (0..budget as u32).collect();
        for pos in budget..n {
            let j = rng.gen_range(0..=pos);
            if j < budget {
                reservoir[j] = pos as u32;
            }
        }
        reservoir.sort_unstable();
        for &pos in &reservoir {
            let t = relation.get(pos as usize).expect("sampled in range");
            out.db.insert(rel, t.clone()).expect("same schema");
        }
        out.sampled_rows.push(budget);
        out.downsampled.push(true);
    }
    out
}

/// The mining configuration used **on the sample**: support floors are
/// scaled to the sampled fraction (halved again, so a borderline class
/// that under-samples is not lost before confirmation can count it
/// exactly) and the confidence floor is relaxed by the realized
/// Hoeffding half-width — candidates whose interval still reaches the
/// requested floor survive to the exact confirmation pass, which
/// re-applies the caller's original floors.
pub(crate) fn sampled_mining_config(
    config: &crate::DiscoveryConfig,
    sampled_fraction: f64,
    epsilon: f64,
) -> crate::DiscoveryConfig {
    let scaled_support = (config.support_floor() as f64 * sampled_fraction * 0.5).floor() as usize;
    crate::DiscoveryConfig {
        min_support: scaled_support.max(2),
        min_confidence: (config.confidence_floor() - epsilon).max(0.0),
        sample: None,
        ..*config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_model::{tuple, Domain, Schema};
    use std::sync::Arc;

    fn db(n: usize) -> Database {
        let schema = Arc::new(
            Schema::builder()
                .relation("r", &[("id", Domain::string()), ("v", Domain::string())])
                .relation("small", &[("v", Domain::string())])
                .finish(),
        );
        let mut db = Database::empty(schema);
        for i in 0..n {
            db.insert_into(
                "r",
                tuple![format!("t{i}").as_str(), format!("v{}", i % 7).as_str()],
            )
            .unwrap();
        }
        for i in 0..3 {
            db.insert_into("small", tuple![format!("v{i}").as_str()])
                .unwrap();
        }
        db
    }

    #[test]
    fn sample_is_deterministic_and_respects_the_budget() {
        let db = db(500);
        let cfg = SampleConfig {
            budget_rows: 64,
            epsilon: 0.2,
            delta: 0.1,
            seed: 7,
        };
        let a = reservoir_sample(&db, &cfg);
        let b = reservoir_sample(&db, &cfg);
        assert_eq!(a.sampled_rows, vec![cfg.effective_budget().min(500), 3]);
        assert_eq!(a.downsampled, vec![true, false]);
        assert!(a.any_downsampled());
        let r = db.schema().rel_id("r").unwrap();
        assert_eq!(a.db.relation(r).len(), b.db.relation(r).len());
        for (x, y) in a.db.relation(r).iter().zip(b.db.relation(r).iter()) {
            assert_eq!(x, y, "reservoir must be deterministic");
        }
        // Every sampled tuple is a real source tuple.
        for t in a.db.relation(r).iter() {
            assert!(db.relation(r).iter().any(|s| s == t));
        }
    }

    #[test]
    fn small_relations_are_taken_whole() {
        let db = db(10);
        let out = reservoir_sample(&db, &SampleConfig::default());
        assert!(!out.any_downsampled());
        assert_eq!(out.db.total_tuples(), db.total_tuples());
    }

    #[test]
    fn requested_epsilon_raises_an_undersized_budget() {
        let cfg = SampleConfig {
            budget_rows: 10,
            epsilon: 0.05,
            delta: 0.01,
            seed: 0,
        };
        // ln(200) / (2 · 0.0025) ≈ 1060 rows needed for ε = 0.05.
        assert!(cfg.effective_budget() >= 1_000);
        assert!(cfg.epsilon_for(cfg.effective_budget()) <= cfg.epsilon + 1e-9);
    }
}
