//! Discovery parameters.

/// Knobs of the [`crate::discover`] run.
///
/// The defaults aim at profiling workloads in the 10K–1M tuple range:
/// strict (confidence 1.0) mining, LHS sets of at most 2 attributes,
/// and support floors that keep the candidate stream to dependencies a
/// human (or the repair engine) would act on. Lower
/// [`DiscoveryConfig::min_confidence`] below `1.0` to mine *approximate*
/// dependencies from dirty data — the violations the relaxed Σ′ still
/// flags are exactly what a repair engine consumes.
#[derive(Clone, Copy, Debug)]
pub struct DiscoveryConfig {
    /// Maximum LHS attribute-set size explored by the CFD lattice walk.
    /// The walk is level-wise, so cost grows with
    /// `C(arity, max_lhs) × rows`.
    pub max_lhs: usize,
    /// Minimum support: for a variable (all-wildcard) CFD, the tuples in
    /// non-singleton LHS classes; for a constant tableau row, the size of
    /// its equivalence class; for a CIND, the triggered source tuples.
    pub min_support: usize,
    /// Minimum confidence (fraction of supporting tuples kept after
    /// removing the cheapest violators). `1.0` mines only dependencies
    /// the instance satisfies exactly.
    pub min_confidence: f64,
    /// Cap on constant tableau rows emitted per `(X, A)` candidate
    /// (largest classes win).
    pub max_patterns_per_fd: usize,
    /// Cap on CFDs kept per relation after ranking.
    pub max_cfds_per_relation: usize,
    /// Cap on CINDs kept overall after ranking.
    pub max_cinds: usize,
    /// Cap on constant conditions attached per near-inclusion (highest
    /// support wins).
    pub max_conditions_per_ind: usize,
    /// Cap on Σ′-implication checks spent pruning redundant candidates;
    /// once exhausted, remaining candidates are kept unchecked (sound —
    /// pruning only removes provably implied dependencies).
    pub implication_budget: usize,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            max_lhs: 2,
            min_support: 8,
            min_confidence: 1.0,
            max_patterns_per_fd: 32,
            max_cfds_per_relation: 128,
            max_cinds: 32,
            max_conditions_per_ind: 4,
            implication_budget: 2_048,
        }
    }
}

impl DiscoveryConfig {
    /// The clamped confidence threshold (`0.0 ..= 1.0`).
    pub(crate) fn confidence_floor(&self) -> f64 {
        self.min_confidence.clamp(0.0, 1.0)
    }

    /// The support floor, never below 2 (a stripped partition cannot
    /// witness anything smaller, and support-1 "dependencies" are
    /// tautologies of single tuples).
    pub(crate) fn support_floor(&self) -> usize {
        self.min_support.max(2)
    }
}
