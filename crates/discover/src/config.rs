//! Discovery parameters.

/// Knobs of the [`crate::discover`] run.
///
/// The defaults aim at profiling workloads in the 10K–1M tuple range:
/// strict (confidence 1.0) mining, LHS sets of at most 2 attributes,
/// and support floors that keep the candidate stream to dependencies a
/// human (or the repair engine) would act on. Lower
/// [`DiscoveryConfig::min_confidence`] below `1.0` to mine *approximate*
/// dependencies from dirty data — the violations the relaxed Σ′ still
/// flags are exactly what a repair engine consumes.
#[derive(Clone, Copy, Debug)]
pub struct DiscoveryConfig {
    /// Maximum LHS attribute-set size explored by the CFD lattice walk.
    /// The walk is level-wise, so cost grows with
    /// `C(arity, max_lhs) × rows`.
    pub max_lhs: usize,
    /// Minimum support: for a variable (all-wildcard) CFD, the tuples in
    /// non-singleton LHS classes; for a constant tableau row, the size of
    /// its equivalence class; for a CIND, the triggered source tuples.
    pub min_support: usize,
    /// Minimum confidence (fraction of supporting tuples kept after
    /// removing the cheapest violators). `1.0` mines only dependencies
    /// the instance satisfies exactly.
    pub min_confidence: f64,
    /// Cap on constant tableau rows emitted per `(X, A)` candidate
    /// (largest classes win).
    pub max_patterns_per_fd: usize,
    /// Cap on CFDs kept per relation after ranking.
    pub max_cfds_per_relation: usize,
    /// Cap on CINDs kept overall after ranking.
    pub max_cinds: usize,
    /// Cap on constant conditions attached per near-inclusion (highest
    /// support wins).
    pub max_conditions_per_ind: usize,
    /// Cap on Σ′-implication checks spent pruning redundant candidates;
    /// once exhausted, remaining candidates are kept unchecked (sound —
    /// pruning only removes provably implied dependencies).
    pub implication_budget: usize,
    /// When set, mining runs on a deterministic reservoir sample per
    /// relation instead of the full instance, and a full-scan
    /// confirmation pass re-counts the surviving keep-set — see
    /// [`SampleConfig`]. `None` (the default) mines exactly.
    pub sample: Option<SampleConfig>,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            max_lhs: 2,
            min_support: 8,
            min_confidence: 1.0,
            max_patterns_per_fd: 32,
            max_cfds_per_relation: 128,
            max_cinds: 32,
            max_conditions_per_ind: 4,
            implication_budget: 2_048,
            sample: None,
        }
    }
}

impl DiscoveryConfig {
    /// Switches the run to **sampled** mining: mine on a reservoir
    /// sample of at most [`SampleConfig::budget_rows`] rows per
    /// relation, attach Hoeffding-style `(support, confidence)`
    /// interval estimates to every candidate, and confirm the surviving
    /// keep-set with one exact full-data scan.
    pub fn sample(mut self, sample: SampleConfig) -> Self {
        self.sample = Some(sample);
        self
    }
    /// The clamped confidence threshold (`0.0 ..= 1.0`).
    pub(crate) fn confidence_floor(&self) -> f64 {
        self.min_confidence.clamp(0.0, 1.0)
    }

    /// The support floor, never below 2 (a stripped partition cannot
    /// witness anything smaller, and support-1 "dependencies" are
    /// tautologies of single tuples).
    pub(crate) fn support_floor(&self) -> usize {
        self.min_support.max(2)
    }
}

/// Budgeted sampling parameters for [`DiscoveryConfig::sample`].
///
/// Mining runs on a deterministic per-relation **reservoir sample**
/// (Algorithm R, seeded): relations at or under the budget are taken
/// whole, larger ones contribute a uniform sample of `budget_rows`
/// positions. Candidate `(support, confidence)` figures mined from the
/// sample become **interval estimates** with Hoeffding half-width
/// `ε(m, δ) = sqrt(ln(2/δ) / 2m)` for a sample of `m` rows, and a
/// full-scan confirmation pass re-counts only the surviving keep-set so
/// the emitted dependencies carry exact figures.
///
/// The quoted `epsilon` is a *request*: when
/// `budget_rows < ln(2/δ) / 2ε²` the budget is raised to the sample
/// size that achieves the requested half-width, so the bounds recorded
/// in [`crate::SamplingStats`] are never looser than asked for.
#[derive(Clone, Copy, Debug)]
pub struct SampleConfig {
    /// Reservoir budget: the maximum rows sampled per relation.
    pub budget_rows: usize,
    /// Requested Hoeffding half-width of the interval estimates.
    pub epsilon: f64,
    /// Failure probability of each interval (two-sided): a fraction of
    /// at most `delta` of the quoted intervals may miss the exact value.
    pub delta: f64,
    /// Seed of the deterministic reservoir (per-relation streams are
    /// derived from it, so adding a relation never reshuffles another).
    pub seed: u64,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            budget_rows: 50_000,
            epsilon: 0.05,
            delta: 0.01,
            seed: 2007,
        }
    }
}

impl SampleConfig {
    /// The smallest sample size achieving the requested `(ε, δ)`:
    /// `m ≥ ln(2/δ) / 2ε²`.
    pub fn required_rows(&self) -> usize {
        let eps = self.epsilon.clamp(1e-6, 1.0);
        let delta = self.delta.clamp(1e-12, 1.0);
        ((2.0 / delta).ln() / (2.0 * eps * eps)).ceil() as usize
    }

    /// The effective per-relation budget: the configured
    /// [`SampleConfig::budget_rows`], raised to
    /// [`SampleConfig::required_rows`] when the request is tighter.
    pub fn effective_budget(&self) -> usize {
        self.budget_rows.max(self.required_rows()).max(2)
    }

    /// The realized Hoeffding half-width for a sample of `m` rows.
    pub fn epsilon_for(&self, m: usize) -> f64 {
        let delta = self.delta.clamp(1e-12, 1.0);
        ((2.0 / delta).ln() / (2.0 * m.max(1) as f64)).sqrt()
    }
}
