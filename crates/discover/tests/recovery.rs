//! End-to-end recovery: discovery on a database generated from a hidden
//! planted Σ must return a Σ′ that **implies** every planted dependency
//! (checked with the exact implication machinery).

use condep_cfd::implication::Implication as CfdImplication;
use condep_core::implication::{Implication as CindImplication, ImplicationConfig};
use condep_discover::{discover, DiscoveryConfig};
use condep_gen::{clean_database_with_hidden_sigma, PlantedSigmaConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn recovered_sigma_implies_the_planted_one() {
    let cfg = PlantedSigmaConfig {
        fd_pairs: 3,
        pair_cardinality: 6,
        constant_rows_per_pair: 3,
        cind_count: 2,
        tuples: 1_500,
        ..PlantedSigmaConfig::default()
    };
    let planted = clean_database_with_hidden_sigma(&cfg, &mut StdRng::seed_from_u64(4242));
    let found = discover(&planted.db, &DiscoveryConfig::default());
    let schema = planted.db.schema();

    let sigma_cfds = found.cfds_normal();
    for cfd in &planted.cfds {
        assert_eq!(
            condep_cfd::implication::implies(
                schema,
                &sigma_cfds,
                cfd,
                ImplicationConfig::unbounded()
            ),
            CfdImplication::Implied,
            "planted CFD not implied by the recovered sigma: {}",
            cfd.display(schema)
        );
    }
    let sigma_cinds = found.cinds_normal();
    for cind in &planted.cinds {
        assert_eq!(
            condep_core::implication::implies(
                schema,
                &sigma_cinds,
                cind,
                ImplicationConfig::default()
            ),
            CindImplication::Implied,
            "planted CIND not implied by the recovered sigma: {}",
            cind.display(schema)
        );
    }

    // The recovery is not vacuous: the planted variable FDs are found
    // with full support, the constants with class-level support.
    assert!(found.cfds.len() >= planted.cfds.len());
    assert!(found.cinds.len() >= planted.cinds.len());
}
