//! The online-vs-batch **oracle**: after any number of delta windows,
//! [`OnlineMiner::proposals`] on the final sketch state is a
//! **superset** of what batch [`discover`] keeps on the same snapshot
//! at the same floors within the online fragment (`max_lhs = 1`, no
//! CIND conditions) — the batch caps, implication pruning and cover
//! pass only *remove* dependencies, never add.

use condep_discover::online::{OnlineConfig, OnlineMiner};
use condep_discover::{discover, DiscoveryConfig};
use condep_gen::{clean_database_with_hidden_sigma, PlantedSigmaConfig};
use condep_model::Database;
use condep_validate::Mutation;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn online_proposals_superset_batch_discovery_on_the_same_snapshot() {
    // A drifting pair makes the streamed suffix *break* dependencies
    // the seeded prefix satisfied — the oracle must hold through decay,
    // not just growth.
    let planted = clean_database_with_hidden_sigma(
        &PlantedSigmaConfig {
            fd_pairs: 3,
            pair_cardinality: 6,
            constant_rows_per_pair: 3,
            cind_count: 2,
            tuples: 2_000,
            drift_pairs: 1,
            drift_onset: 0.5,
        },
        &mut StdRng::seed_from_u64(99),
    );
    let schema = planted.db.schema();
    let fact = schema.rel_id("fact").unwrap();

    // Seed on the clean prefix (full dimension tables, half the fact
    // rows), then stream the drifted suffix as mutation windows with
    // some churn mixed in.
    let mut prefix = Database::empty(schema.clone());
    for (rel, inst) in planted.db.iter() {
        let take = if rel == fact {
            planted.drift_onset_row
        } else {
            inst.len()
        };
        for t in inst.iter().take(take) {
            prefix.insert(rel, t.clone()).unwrap();
        }
    }
    let mut miner = OnlineMiner::new(
        schema.clone(),
        OnlineConfig {
            min_support: 4,
            min_confidence: 1.0,
            ..OnlineConfig::default()
        },
    );
    miner.seed(&prefix);

    let suffix: Vec<_> = planted
        .db
        .relation(fact)
        .iter()
        .skip(planted.drift_onset_row)
        .cloned()
        .collect();
    for (i, t) in suffix.iter().enumerate() {
        miner.observe(&Mutation::Insert {
            rel: fact,
            tuple: t.clone(),
        });
        // Churn every 64th arrival: bounce a resident tuple out and
        // back in. Net zero on the snapshot, but the sketches must
        // round-trip it.
        if i % 64 == 0 {
            miner.observe(&Mutation::Delete {
                rel: fact,
                tuple: t.clone(),
            });
            miner.observe(&Mutation::Insert {
                rel: fact,
                tuple: t.clone(),
            });
        }
    }

    // Batch-mine the identical snapshot, restricted to the online
    // fragment at the same floors.
    let batch = discover(
        &planted.db,
        &DiscoveryConfig {
            max_lhs: 1,
            max_conditions_per_ind: 0,
            min_support: 4,
            min_confidence: 1.0,
            ..DiscoveryConfig::default()
        },
    );
    assert!(
        !batch.is_empty(),
        "the stable pairs must survive batch discovery"
    );

    let props = miner.proposals();
    for d in &batch.cfds {
        assert!(
            props.cfds.iter().any(|p| p.cfd == d.cfd),
            "batch keep missing from the online proposals: {}",
            d.cfd.display(schema)
        );
    }
    for d in &batch.cinds {
        assert!(
            props.cinds.iter().any(|p| p.cind == d.cind),
            "batch keep missing from the online proposals: {}",
            d.cind.display(schema)
        );
    }

    // And the proposals carry honest evidence: on this snapshot every
    // exact-confidence proposal is genuinely satisfied.
    for p in props.cfds.iter().filter(|p| p.confidence >= 1.0) {
        assert!(condep_cfd::satisfy::satisfies_normal(&planted.db, &p.cfd));
    }
    for p in props.cinds.iter().filter(|p| p.confidence >= 1.0) {
        assert!(condep_core::satisfy::satisfies_normal(&planted.db, &p.cind));
    }
}
