//! Property suite of the **sampled** discovery path
//! ([`DiscoveryConfig::sample`]): across 64 reservoir seeds the quoted
//! [`EvidenceInterval`]s must contain the exact (support, confidence)
//! figures at the configured `(ε, δ)` rate, the realized half-width
//! must honour the request, and the whole budgeted pipeline must stay
//! deterministic.

use condep_discover::{discover, DiscoveryConfig, SampleConfig};
use condep_gen::{clean_database_with_hidden_sigma, PlantedSigmaConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn planted() -> condep_gen::PlantedDatabase {
    clean_database_with_hidden_sigma(
        &PlantedSigmaConfig {
            fd_pairs: 3,
            pair_cardinality: 6,
            constant_rows_per_pair: 3,
            cind_count: 2,
            tuples: 10_000,
            ..PlantedSigmaConfig::default()
        },
        &mut StdRng::seed_from_u64(4242),
    )
}

fn sampled_config(seed: u64) -> DiscoveryConfig {
    DiscoveryConfig {
        min_support: 8,
        ..DiscoveryConfig::default()
    }
    .sample(SampleConfig {
        budget_rows: 1_000,
        epsilon: 0.05,
        delta: 0.05,
        seed,
    })
}

/// The headline property: emitted figures are exact (the confirmation
/// pass re-counted them), and the sampled interval that *selected* each
/// keep contains those exact figures — per interval with probability
/// `≥ 1 − δ`, so across 64 seeds the observed miss fraction must stay
/// within the Hoeffding budget (we allow `2δ` against binomial noise).
#[test]
fn intervals_contain_the_exact_figures_across_64_seeds() {
    let planted = planted();
    let mut intervals = 0usize;
    let mut misses = 0usize;
    for seed in 0..64 {
        let found = discover(&planted.db, &sampled_config(seed));
        assert!(!found.is_empty(), "seed {seed}: sampling found nothing");
        let sampling = found
            .stats
            .sampling
            .expect("a sampled run records its sampling stats");
        assert!(
            sampling.relations_downsampled >= 1,
            "seed {seed}: the 10K fact relation must be downsampled at a 1K budget"
        );
        assert!(
            sampling.epsilon <= 0.05 + 1e-9,
            "seed {seed}: realized ε {} looser than requested",
            sampling.epsilon
        );
        for d in &found.cfds {
            let iv = d.interval.expect("sampled keeps carry their interval");
            intervals += 1;
            if !iv.contains(d.support, d.confidence) {
                misses += 1;
            }
        }
        for d in &found.cinds {
            let iv = d.interval.expect("sampled keeps carry their interval");
            intervals += 1;
            if !iv.contains(d.support, d.confidence) {
                misses += 1;
            }
        }
    }
    assert!(
        intervals >= 64,
        "the sweep must quote intervals: {intervals}"
    );
    let budget = (2.0 * 0.05 * intervals as f64).ceil() as usize;
    assert!(
        misses <= budget,
        "interval misses {misses}/{intervals} exceed the 2δ budget {budget}"
    );
}

/// Budgeted mining is still **sound** end-to-end: whatever the sample
/// kept, the confirmation pass made exact, so every emitted dependency
/// genuinely meets the floors on the full instance.
#[test]
fn confirmed_keeps_meet_the_floors_exactly() {
    let planted = planted();
    let found = discover(&planted.db, &sampled_config(7));
    for d in &found.cfds {
        assert!(
            d.support >= 8,
            "{}: support {}",
            d.cfd.display(planted.db.schema()),
            d.support
        );
        assert!(d.confidence >= 1.0 - 1e-9);
        assert!(condep_cfd::satisfy::satisfies_normal(&planted.db, &d.cfd));
    }
    for d in &found.cinds {
        assert!(d.support >= 8);
        assert!(d.confidence >= 1.0 - 1e-9);
        assert!(condep_core::satisfy::satisfies_normal(&planted.db, &d.cind));
    }
}

/// One `(db, config)` pair, one answer: the reservoir is seeded and the
/// pipeline never iterates a hash map into its output.
#[test]
fn sampled_discovery_is_deterministic() {
    let planted = planted();
    let a = discover(&planted.db, &sampled_config(13));
    let b = discover(&planted.db, &sampled_config(13));
    assert_eq!(a.cfds.len(), b.cfds.len());
    assert_eq!(a.cinds.len(), b.cinds.len());
    for (x, y) in a.cfds.iter().zip(&b.cfds) {
        assert_eq!(x.cfd, y.cfd);
        assert_eq!((x.support, x.confidence), (y.support, y.confidence));
        assert_eq!(x.interval, y.interval);
    }
    for (x, y) in a.cinds.iter().zip(&b.cinds) {
        assert_eq!(x.cind, y.cind);
        assert_eq!((x.support, x.confidence), (y.support, y.confidence));
        assert_eq!(x.interval, y.interval);
    }
    assert_eq!(a.stats.sampling, b.stats.sampling);
}
