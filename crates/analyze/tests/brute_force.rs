//! Brute-force property suite for the Σ analyzer's verdict lattice.
//!
//! Over tiny all-finite schemas (≤ 2 relations × ≤ 3 attrs × ≤ 3
//! values) the consistency question is exhaustively checkable: a CFD
//! set is satisfiable by some nonempty database iff some relation
//! admits a **single-tuple** witness (CFD satisfaction is closed under
//! subinstance, so any satisfying instance yields a one-tuple one, and
//! a Σ over several relations is satisfied by putting that tuple in
//! its relation and leaving the rest empty). The oracle below
//! enumerates every candidate tuple of every relation — at most
//! 3³ = 27 per relation — and tests the singleton database with the
//! independent semantic checker `condep_cfd::satisfy::satisfies_all`.
//!
//! Checked per seed:
//! - the analyzer's verdict equals the oracle (never `Unknown` on
//!   CFD-only input within the default budget);
//! - a `Sat` witness actually satisfies Σ, re-validated through
//!   `condep_validate::Validator` (the production sweep);
//! - an `Unsat` core is itself unsatisfiable and **minimal**: dropping
//!   any single member restores satisfiability (which implies every
//!   proper subset is satisfiable).

use condep_analyze::{analyze, AnalyzeConfig, SigmaVerdict};
use condep_cfd::NormalCfd;
use condep_core::NormalCind;
use condep_model::{AttrId, Database, Domain, PValue, PatternRow, RelId, Schema, Tuple, Value};
use condep_validate::Validator;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;

/// All candidate tuples of a relation (finite domains only).
fn all_tuples(schema: &Schema, rel: RelId) -> Vec<Tuple> {
    let rs = schema.relation(rel).unwrap();
    let domains: Vec<&[Value]> = rs
        .attributes()
        .iter()
        .map(|a| a.domain().values().expect("oracle schemas are all-finite"))
        .collect();
    let mut out = vec![Vec::new()];
    for dom in domains {
        out = out
            .into_iter()
            .flat_map(|prefix| {
                dom.iter().map(move |v| {
                    let mut next = prefix.clone();
                    next.push(v.clone());
                    next
                })
            })
            .collect();
    }
    out.into_iter().map(Tuple::new).collect()
}

/// Exhaustive oracle: does ANY nonempty database satisfy `cfds`?
/// (Equivalently by the subinstance-closure lemma: does any single
/// tuple of any relation do so?)
fn oracle_consistent(schema: &Arc<Schema>, cfds: &[NormalCfd]) -> bool {
    schema.iter().any(|(rel, _)| {
        all_tuples(schema, rel).into_iter().any(|t| {
            let mut db = Database::empty(Arc::clone(schema));
            db.insert(rel, t).unwrap();
            condep_cfd::satisfy::satisfies_all(&db, cfds)
        })
    })
}

/// Random tiny all-finite schema: 1–2 relations, 2–3 attrs, 2–3 values.
fn random_schema(rng: &mut StdRng) -> Arc<Schema> {
    let rels = rng.gen_range(1..=2usize);
    let mut builder = Schema::builder();
    for r in 0..rels {
        let arity = rng.gen_range(2..=3usize);
        let name = format!("r{r}");
        let attrs: Vec<(String, Domain)> = (0..arity)
            .map(|a| {
                let size = rng.gen_range(2..=3usize);
                let values: Vec<&str> = ["a", "b", "c"][..size].to_vec();
                (format!("x{a}"), Domain::finite_strs(&values))
            })
            .collect();
        let borrowed: Vec<(&str, Domain)> =
            attrs.iter().map(|(n, d)| (n.as_str(), d.clone())).collect();
        builder = builder.relation(&name, &borrowed);
    }
    Arc::new(builder.finish())
}

/// Random CFD over `rel`, biased toward constant patterns so conflicts
/// actually occur.
fn random_cfd(rng: &mut StdRng, schema: &Schema, rel: RelId) -> NormalCfd {
    let rs = schema.relation(rel).unwrap();
    let arity = rs.arity();
    let lhs_len = rng.gen_range(1..=(arity - 1).clamp(1, 2));
    // Distinct LHS attrs.
    let mut attrs: Vec<u32> = (0..arity as u32).collect();
    for i in (1..attrs.len()).rev() {
        let j = rng.gen_range(0..=i);
        attrs.swap(i, j);
    }
    let lhs: Vec<AttrId> = attrs[..lhs_len].iter().map(|&a| AttrId(a)).collect();
    let rhs = AttrId(attrs[lhs_len % attrs.len()]);
    let cell = |rng: &mut StdRng, attr: AttrId| -> PValue {
        if rng.gen_bool(0.6) {
            let dom = rs.attribute(attr).unwrap().domain();
            let values = dom.values().unwrap();
            PValue::Const(values[rng.gen_range(0..values.len())].clone())
        } else {
            PValue::Any
        }
    };
    let lhs_pat = PatternRow::new(lhs.iter().map(|&a| cell(rng, a)).collect::<Vec<_>>());
    let rhs_pat = if rng.gen_bool(0.75) {
        cell(rng, rhs)
    } else {
        PValue::Any
    };
    NormalCfd::new(rel, lhs, lhs_pat, rhs, rhs_pat)
}

#[test]
fn verdicts_match_exhaustive_enumeration_over_240_seeds() {
    let config = AnalyzeConfig::default();
    let (mut sat_seen, mut unsat_seen) = (0usize, 0usize);
    for seed in 0..240u64 {
        let mut rng = StdRng::seed_from_u64(0xC0FD_0000 + seed);
        let schema = random_schema(&mut rng);
        let n = rng.gen_range(1..=6usize);
        let mut cfds: Vec<NormalCfd> = (0..n)
            .map(|_| {
                let rel = RelId(rng.gen_range(0..schema.len() as u32));
                random_cfd(&mut rng, &schema, rel)
            })
            .collect();
        // Half the seeds get a deliberate same-key clone with a
        // different RHS constant, tilting toward real conflicts.
        if rng.gen_bool(0.5) {
            let base = cfds[rng.gen_range(0..cfds.len())].clone();
            if let Some(orig) = base.rhs_pat().as_const() {
                let rs = schema.relation(base.rel()).unwrap();
                let values = rs.attribute(base.rhs()).unwrap().domain().values().unwrap();
                if let Some(other) = values.iter().find(|v| *v != orig) {
                    cfds.push(NormalCfd::new(
                        base.rel(),
                        base.lhs().to_vec(),
                        base.lhs_pat().clone(),
                        base.rhs(),
                        PValue::Const(other.clone()),
                    ));
                }
            }
        }
        // A global Unsat needs EVERY relation to conflict, so inject
        // per-relation conflict gadgets: either two wildcard rows with
        // clashing constants (core of 2) or a domain-covering chain
        // against a wildcard row (core of |domain| + 1).
        for (rel, rs) in schema.iter() {
            if !rng.gen_bool(0.55) {
                continue;
            }
            let lhs = AttrId(0);
            let rhs = AttrId(1);
            let rvals = rs
                .attribute(rhs)
                .unwrap()
                .domain()
                .values()
                .unwrap()
                .to_vec();
            if rng.gen_bool(0.4) {
                for v in rvals.iter().take(2) {
                    cfds.push(NormalCfd::new(
                        rel,
                        vec![lhs],
                        PatternRow::all_any(1),
                        rhs,
                        PValue::Const(v.clone()),
                    ));
                }
            } else {
                let lvals = rs
                    .attribute(lhs)
                    .unwrap()
                    .domain()
                    .values()
                    .unwrap()
                    .to_vec();
                for v in &lvals {
                    cfds.push(NormalCfd::new(
                        rel,
                        vec![lhs],
                        PatternRow::new([PValue::Const(v.clone())]),
                        rhs,
                        PValue::Const(rvals[0].clone()),
                    ));
                }
                cfds.push(NormalCfd::new(
                    rel,
                    vec![lhs],
                    PatternRow::all_any(1),
                    rhs,
                    PValue::Const(rvals[1].clone()),
                ));
            }
        }

        let expected = oracle_consistent(&schema, &cfds);
        let analysis = analyze(&schema, &cfds, &[], &config);
        match &analysis.verdict {
            SigmaVerdict::Sat(w) => {
                assert!(
                    expected,
                    "seed {seed}: analyzer Sat but oracle says inconsistent"
                );
                sat_seen += 1;
                assert!(w.db.total_tuples() >= 1, "seed {seed}: empty witness");
                assert!(
                    condep_cfd::satisfy::satisfies_all(&w.db, &cfds),
                    "seed {seed}: witness does not satisfy sigma"
                );
                // Re-validate through the production sweep.
                let report = Validator::new(cfds.clone(), Vec::new()).validate(&w.db);
                assert!(
                    report.is_empty(),
                    "seed {seed}: Validator found violations in witness"
                );
            }
            SigmaVerdict::Unsat(core) => {
                assert!(
                    !expected,
                    "seed {seed}: analyzer Unsat but oracle found a witness"
                );
                unsat_seen += 1;
                assert!(!core.cfds.is_empty(), "seed {seed}: empty unsat core");
                let subset = |keep: &dyn Fn(usize) -> bool| -> Vec<NormalCfd> {
                    core.cfds
                        .iter()
                        .filter(|i| keep(**i))
                        .map(|&i| cfds[i].clone())
                        .collect()
                };
                // The core alone is already inconsistent...
                assert!(
                    !oracle_consistent(&schema, &subset(&|_| true)),
                    "seed {seed}: reported core is satisfiable"
                );
                // ...and minimal: dropping any single member restores
                // satisfiability (hence every proper subset is Sat).
                for &drop in &core.cfds {
                    assert!(
                        oracle_consistent(&schema, &subset(&|i| i != drop)),
                        "seed {seed}: core not minimal — dropping {drop} stays inconsistent"
                    );
                }
            }
            SigmaVerdict::Unknown(trip) => {
                panic!(
                    "seed {seed}: Unknown ({}) on CFD-only tiny-domain input",
                    trip.reason
                )
            }
        }
    }
    // The generator must actually exercise both sides of the lattice.
    assert!(
        sat_seen >= 20,
        "only {sat_seen} Sat seeds — generator too conflict-heavy"
    );
    assert!(
        unsat_seen >= 20,
        "only {unsat_seen} Unsat seeds — generator too benign"
    );
}

#[test]
fn example_3_2_is_unsat_with_the_full_four_cfd_core() {
    let (schema, cfds) = condep_cfd::fixtures::example_3_2();
    let analysis = analyze(&schema, &cfds, &[], &AnalyzeConfig::default());
    match analysis.verdict {
        SigmaVerdict::Unsat(core) => {
            // The Example 3.2 cycle needs all four CFDs: dropping any
            // one of them leaves a satisfiable set.
            assert_eq!(core.cfds, vec![0, 1, 2, 3]);
        }
        other => panic!("example 3.2 must be Unsat, got {other:?}"),
    }
}

fn two_rel_schema() -> Arc<Schema> {
    Arc::new(
        Schema::builder()
            .relation("r", &[("a", Domain::finite_strs(&["a", "b"]))])
            .relation(
                "s",
                &[
                    ("k", Domain::finite_strs(&["a", "b"])),
                    ("c", Domain::finite_strs(&["x", "y"])),
                ],
            )
            .finish(),
    )
}

#[test]
fn cind_chase_builds_a_two_relation_witness() {
    let schema = two_rel_schema();
    // r[a] ⊆ s[k] with no conditions; s is otherwise unconstrained.
    let cind = NormalCind::parse(&schema, "r", &["a"], &[], "s", &["k"], &[]).unwrap();
    let analysis = analyze(&schema, &[], std::slice::from_ref(&cind), &AnalyzeConfig::default());
    match analysis.verdict {
        SigmaVerdict::Sat(w) => {
            assert!(w.db.total_tuples() >= 1);
            assert!(condep_core::satisfy::satisfies_all(&w.db, &[cind]));
        }
        other => panic!("expected Sat via chase, got {other:?}"),
    }
}

#[test]
fn cind_into_unsat_target_degrades_to_unknown_never_sat() {
    let schema = two_rel_schema();
    let s = schema.rel_id("s").unwrap();
    // Two key-group rows force different constants on s.c for every
    // tuple: s admits no tuple at all.
    let clash = |c: &str| {
        NormalCfd::new(
            s,
            vec![AttrId(0)],
            PatternRow::all_any(1),
            AttrId(1),
            PValue::constant(c),
        )
    };
    let cfds = vec![clash("x"), clash("y")];
    // r is unconstrained (Sat), but every r-tuple forces an s-tuple.
    let cind = NormalCind::parse(&schema, "r", &["a"], &[], "s", &["k"], &[]).unwrap();
    let analysis = analyze(&schema, &cfds, &[cind], &AnalyzeConfig::default());
    // Truth: inconsistent (r nonempty forces s nonempty, s unsat; both
    // empty is not allowed). The budgeted chase cannot prove that, so
    // the only sound answers are Unsat or Unknown — never Sat.
    assert!(
        !analysis.verdict.is_sat(),
        "chase must not claim Sat for an inconsistent CFD+CIND set"
    );
}

#[test]
fn lints_flag_conflicting_and_unreachable_rows() {
    use condep_analyze::SigmaLint;
    let schema = two_rel_schema();
    let s = schema.rel_id("s").unwrap();
    let row = |pat: PValue, rhs: &str| {
        NormalCfd::new(
            s,
            vec![AttrId(0)],
            PatternRow::new([pat]),
            AttrId(1),
            PValue::constant(rhs),
        )
    };
    let cfds = vec![
        // Same key group, identical patterns, conflicting constants.
        row(PValue::Any, "x"),
        row(PValue::Any, "y"),
        // Subsumed by row 0 but carries yet another constant — and "z"
        // is outside s.c's {x, y} domain, so also unreachable.
        row(PValue::constant("a"), "z"),
    ];
    let analysis = analyze(&schema, &cfds, &[], &AnalyzeConfig::default());
    assert!(analysis.lints.iter().any(|l| matches!(
        l,
        SigmaLint::KeyGroupConflict {
            left: 0,
            right: 1,
            ..
        }
    )));
    assert!(analysis.lints.iter().any(|l| matches!(
        l,
        SigmaLint::RedundantConflict {
            general: 0,
            specific: 2,
            ..
        }
    )));
    assert!(analysis.lints.iter().any(|l| matches!(
        l,
        SigmaLint::UnreachablePattern {
            cfd: 2,
            conclusion: true,
            ..
        }
    )));
}
