//! The seeded Σ families of `condep-gen` carry *exact* expected
//! outcomes; this suite holds the analyzer to them across many seeds.
//! The `sigma_lint` scoreboard scenario gates the same counters, so a
//! drift here fails fast in unit tests before it fails in CI's smoke
//! diff.

use condep_analyze::{analyze, AnalyzeConfig, SigmaVerdict};
use condep_gen::{sigma_families, ExpectedVerdict};
use condep_validate::Validator;

#[test]
fn every_family_meets_its_expectation_across_seeds() {
    let config = AnalyzeConfig::default();
    for seed in 0..40u64 {
        for family in sigma_families(seed) {
            let analysis = analyze(&family.schema, &family.cfds, &family.cinds, &config);
            let tag = format!("family {} seed {seed}", family.name);
            assert_eq!(
                analysis.lints.len(),
                family.expect.lints,
                "{tag}: lints {:?}",
                analysis.lints
            );
            match (family.expect.verdict, &analysis.verdict) {
                (ExpectedVerdict::Sat, SigmaVerdict::Sat(w)) => {
                    // The witness must re-validate through the standard
                    // validator, not just the analyzer's own checker.
                    let v = Validator::new(family.cfds.clone(), family.cinds.clone());
                    assert!(
                        v.validate(&w.db).is_empty(),
                        "{tag}: witness fails validation"
                    );
                }
                (ExpectedVerdict::Unsat, SigmaVerdict::Unsat(core)) => {
                    assert_eq!(
                        core.cfds.len(),
                        family.expect.core_size,
                        "{tag}: core {:?}",
                        core.cfds
                    );
                }
                (ExpectedVerdict::Unknown, SigmaVerdict::Unknown(_)) => {}
                (want, got) => panic!("{tag}: expected {want:?}, got {got:?}"),
            }
        }
    }
}
