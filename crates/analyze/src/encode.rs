//! SAT encoding of single-relation CFD consistency.
//!
//! The key fact (BravoFM07, consistency analysis): a CFD set over one
//! relation is satisfiable by *some* nonempty instance iff it is
//! satisfiable by a **single tuple** — CFD satisfaction is closed under
//! subinstances, so any witness instance yields a one-tuple witness.
//! That makes the encoding small: one propositional variable per
//! `(attribute, value)` choice for a single hypothetical tuple.
//!
//! - **Finite attribute**: exactly-one over the domain's values.
//! - **Infinite attribute**: at-most-one over the constants Σ mentions
//!   for it; all-false means "some fresh value" that matches no
//!   mentioned constant (an infinite domain always has one).
//! - **Constant-RHS CFD** `(X → A, (pat ‖ c))`: a single tuple violates
//!   it iff the pattern matches and `t[A] ≠ c`, giving the clause
//!   `¬pat₁ ∨ … ∨ ¬patₖ ∨ (A=c)`. Variable-RHS CFDs are vacuous on one
//!   tuple and contribute nothing (and therefore can never sit in an
//!   unsat core).

use condep_cfd::NormalCfd;
use condep_model::{AttrId, RelId, Schema, Tuple, Value};
use condep_sat::{Cnf, Lit, SolveResult, Solver, SolverConfig, Var};

use crate::AnalyzeConfig;

/// Outcome of deciding one relation's CFD set.
#[derive(Debug, Clone)]
pub enum RelationVerdict {
    /// A single-tuple witness for the relation.
    Sat(Tuple),
    /// No nonempty instance of the relation satisfies the set; the
    /// payload is a **minimal** unsat core of the caller's indices.
    Unsat(Vec<usize>),
    /// The solver's conflict budget tripped before a decision.
    Unknown,
}

/// Per-attribute variable block for the single hypothetical tuple.
struct AttrVars {
    finite: bool,
    /// Domain values (finite) or Σ-mentioned constants (infinite).
    values: Vec<Value>,
    vars: Vec<Var>,
}

struct Encoding {
    cnf: Cnf,
    attrs: Vec<AttrVars>,
    /// Caller indices of CFDs that contributed a clause.
    contributing: Vec<usize>,
}

/// Encode the active CFD subset for `rel` into CNF over one tuple.
fn encode(schema: &Schema, rel: RelId, active: &[(usize, &NormalCfd)]) -> Encoding {
    let rs = schema.relation(rel).expect("relation in schema");
    let mut cnf = Cnf::new();
    let mut attrs: Vec<AttrVars> = Vec::with_capacity(rs.arity());

    for (attr, a) in rs.iter() {
        if let Some(values) = a.domain().values() {
            let vars = cnf.fresh_vars(values.len());
            let lits: Vec<Lit> = vars.iter().map(|v| v.pos()).collect();
            cnf.add_exactly_one(&lits);
            attrs.push(AttrVars {
                finite: true,
                values: values.to_vec(),
                vars,
            });
        } else {
            // Collect the constants Σ mentions for this infinite attr.
            let mut mentioned: Vec<Value> = Vec::new();
            for (_, cfd) in active {
                for (pos, &la) in cfd.lhs().iter().enumerate() {
                    if la == attr {
                        if let Some(v) = cfd.lhs_pat().cell(pos).as_const() {
                            if !mentioned.contains(v) {
                                mentioned.push(v.clone());
                            }
                        }
                    }
                }
                if cfd.rhs() == attr {
                    if let Some(v) = cfd.rhs_pat().as_const() {
                        if !mentioned.contains(v) {
                            mentioned.push(v.clone());
                        }
                    }
                }
            }
            let vars = cnf.fresh_vars(mentioned.len());
            let lits: Vec<Lit> = vars.iter().map(|v| v.pos()).collect();
            if lits.len() > 1 {
                cnf.add_at_most_one(&lits);
            }
            attrs.push(AttrVars {
                finite: false,
                values: mentioned,
                vars,
            });
        }
        debug_assert_eq!(attrs.len() - 1, attr.index());
    }

    // Literal asserting `t[attr] = v`, or None when the value is
    // outside a finite domain (unsatisfiable by any tuple).
    let value_lit = |attrs: &[AttrVars], attr: AttrId, v: &Value| -> Option<Lit> {
        let av = &attrs[attr.index()];
        av.values
            .iter()
            .position(|x| x == v)
            .map(|i| av.vars[i].pos())
    };

    let mut contributing = Vec::new();
    'cfd: for &(idx, cfd) in active {
        let Some(rhs_const) = cfd.rhs_pat().as_const() else {
            continue; // variable RHS: vacuous on a single tuple
        };
        let mut clause: Vec<Lit> = Vec::new();
        for (pos, &la) in cfd.lhs().iter().enumerate() {
            if let Some(v) = cfd.lhs_pat().cell(pos).as_const() {
                match value_lit(&attrs, la, v) {
                    // Premise constant outside the finite domain: the
                    // row can never match, the CFD is vacuous.
                    None => continue 'cfd,
                    Some(lit) => clause.push(!lit),
                }
            }
        }
        // An RHS constant outside the finite domain contributes no
        // literal: the conclusion can never hold, so the clause keeps
        // only the negated premise (empty if the premise is
        // all-wildcard).
        if let Some(lit) = value_lit(&attrs, cfd.rhs(), rhs_const) {
            clause.push(lit);
        }
        cnf.add_clause(clause);
        contributing.push(idx);
    }

    Encoding {
        cnf,
        attrs,
        contributing,
    }
}

/// Extend an encoding with pinned cell values (used by the chase).
/// Returns `false` when a pin is unsatisfiable (finite domain missing
/// the value).
fn apply_pins(enc: &mut Encoding, pins: &[(AttrId, Value)]) -> bool {
    for (attr, v) in pins {
        let av = &mut enc.attrs[attr.index()];
        let pos = match av.values.iter().position(|x| x == v) {
            Some(p) => Some(p),
            None if av.finite => return false,
            None => {
                // Infinite attr pinned to an unmentioned constant:
                // introduce its variable so clauses stay sound (it can
                // never equal a *different* mentioned constant).
                av.values.push(v.clone());
                let var = enc.cnf.fresh_var();
                av.vars.push(var);
                let lits: Vec<Lit> = av.vars.iter().map(|x| x.pos()).collect();
                if lits.len() > 1 {
                    enc.cnf.add_at_most_one(&lits);
                }
                Some(av.values.len() - 1)
            }
        };
        if let Some(p) = pos {
            let lit = enc.attrs[attr.index()].vars[p].pos();
            enc.cnf.add_unit(lit);
        }
    }
    true
}

fn solve(enc: &Encoding, config: &AnalyzeConfig) -> SolveResult {
    if enc.cnf.is_trivially_unsat() {
        return SolveResult::Unsat;
    }
    Solver::with_config(
        &enc.cnf,
        SolverConfig {
            max_conflicts: config.max_conflicts,
        },
    )
    .solve()
}

/// Decode a model into the witness tuple. Fresh values for
/// unconstrained infinite attrs avoid every mentioned constant plus
/// the caller's `avoid` set (so the witness prefers not to trigger
/// CIND conditions it doesn't have to).
fn decode(
    schema: &Schema,
    rel: RelId,
    enc: &Encoding,
    model: &[bool],
    avoid: &[(AttrId, Value)],
) -> Tuple {
    let rs = schema.relation(rel).expect("relation in schema");
    let mut cells: Vec<Value> = Vec::with_capacity(rs.arity());
    for (attr, a) in rs.iter() {
        let av = &enc.attrs[attr.index()];
        let chosen = av
            .vars
            .iter()
            .position(|v| model[v.index()])
            .map(|i| av.values[i].clone());
        match chosen {
            Some(v) => cells.push(v),
            None => {
                debug_assert!(!av.finite, "exactly-one guarantees a finite choice");
                let extra: Vec<&Value> = avoid
                    .iter()
                    .filter(|(x, _)| *x == attr)
                    .map(|(_, v)| v)
                    .collect();
                let fresh = a
                    .domain()
                    .fresh_value(av.values.iter().chain(extra.iter().copied()))
                    .expect("infinite domain always has a fresh value");
                cells.push(fresh);
            }
        }
    }
    Tuple::new(cells)
}

/// Decide consistency of `cfds` (pairs of caller index + CFD, all on
/// `rel`) over a single hypothetical tuple, with pinned cells.
///
/// On `Unsat` the returned core is shrunk by deletion until minimal:
/// every index is necessary (dropping any one makes the rest — plus
/// the pins — satisfiable). `avoid` only biases fresh-value choice in
/// the witness; it never affects the verdict.
pub(crate) fn relation_consistency_pinned(
    schema: &Schema,
    rel: RelId,
    cfds: &[(usize, &NormalCfd)],
    pins: &[(AttrId, Value)],
    avoid: &[(AttrId, Value)],
    config: &AnalyzeConfig,
) -> RelationVerdict {
    let run = |active: &[(usize, &NormalCfd)]| -> (SolveResult, Encoding) {
        let mut enc = encode(schema, rel, active);
        if !apply_pins(&mut enc, pins) {
            return (SolveResult::Unsat, enc);
        }
        let r = solve(&enc, config);
        (r, enc)
    };

    let (result, enc) = run(cfds);
    match result {
        SolveResult::Sat(model) => RelationVerdict::Sat(decode(schema, rel, &enc, &model, avoid)),
        SolveResult::Unknown => RelationVerdict::Unknown,
        SolveResult::Unsat => {
            // Deletion-based shrink over the clause-contributing
            // subset. Non-contributing CFDs (variable RHS, dead rows)
            // can never be core members.
            let mut core: Vec<usize> = enc.contributing.clone();
            for candidate in enc.contributing {
                let trial: Vec<(usize, &NormalCfd)> = cfds
                    .iter()
                    .filter(|(i, _)| core.contains(i) && *i != candidate)
                    .copied()
                    .collect();
                let (r, _) = run(&trial);
                if matches!(r, SolveResult::Unsat) {
                    core.retain(|&i| i != candidate);
                }
                // Sat or Unknown: keep the candidate (conservative —
                // with the default budget tiny encodings never trip).
            }
            core.sort_unstable();
            RelationVerdict::Unsat(core)
        }
    }
}

/// Decide consistency of one relation's CFD set (public entry used by
/// the Σ driver, discovery's keep stage, and `condep-consistency`).
///
/// `cfds` pairs each CFD with the caller's index for it; core indices
/// and the [`crate::SigmaLint`] catalogue are reported in that
/// numbering.
pub fn relation_consistency(
    schema: &Schema,
    rel: RelId,
    cfds: &[(usize, &NormalCfd)],
    config: &AnalyzeConfig,
) -> RelationVerdict {
    relation_consistency_pinned(schema, rel, cfds, &[], &[], config)
}
