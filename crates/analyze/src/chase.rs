//! Budgeted chase for CFD + CIND interaction.
//!
//! Consistency of CFDs **with** CINDs is undecidable in general
//! (BravoFM07, Theorem 4.2), so this chase is a *sound, incomplete*
//! procedure: it either produces a concrete finite witness database
//! (verified against the full Σ before we claim anything) or gives up,
//! and giving up surfaces as [`crate::SigmaVerdict::Unknown`] — never a
//! wrong verdict.
//!
//! The search space is deliberately tiny: one tuple per relation. Start
//! from a relation whose CFD set is satisfiable, then close CIND
//! obligations — a triggered CIND pins the target tuple's `Y` cells to
//! the source's `X` projection plus the `Yp` constants, and the pinned
//! single-tuple SAT encoding ([`crate::encode`]) searches for a target
//! tuple satisfying the target relation's CFDs under those pins. Any
//! contradiction between two obligations on the same relation (each
//! relation holds one tuple) aborts the attempt.

use condep_cfd::NormalCfd;
use condep_core::NormalCind;
use condep_model::{AttrId, Database, RelId, Schema, Tuple, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::encode::{relation_consistency_pinned, RelationVerdict};
use crate::AnalyzeConfig;

/// Try to close all CIND obligations starting from `(start, seed)`.
/// Returns a fully verified witness database, or `None` to signal
/// "give up" (the caller degrades to `Unknown`).
pub(crate) fn chase(
    schema: &Arc<Schema>,
    cfds: &[NormalCfd],
    cinds: &[NormalCind],
    start: RelId,
    seed: &Tuple,
    avoid: &BTreeMap<RelId, Vec<(AttrId, Value)>>,
    config: &AnalyzeConfig,
) -> Option<Database> {
    let mut occupied: BTreeMap<RelId, Tuple> = BTreeMap::new();
    occupied.insert(start, seed.clone());

    let by_rel = |rel: RelId| -> Vec<(usize, &NormalCfd)> {
        cfds.iter()
            .enumerate()
            .filter(|(_, c)| c.rel() == rel)
            .collect()
    };
    let empty: Vec<(AttrId, Value)> = Vec::new();

    // Each productive pass occupies at least one new relation, so the
    // loop ends within |relations| passes; the step budget is a
    // belt-and-braces cap on top.
    for _ in 0..config.chase_steps {
        let mut progressed = false;
        for cind in cinds {
            let Some(t) = occupied.get(&cind.lhs_rel()) else {
                continue;
            };
            if !cind.triggers(t) {
                continue;
            }
            // Obligation: some target tuple u with u[Y] = t[X] and u
            // matching Yp.
            let mut pins: Vec<(AttrId, Value)> = cind
                .y()
                .iter()
                .zip(t.project(cind.x()))
                .map(|(&a, v)| (a, v))
                .collect();
            pins.extend(cind.yp().iter().cloned());

            if let Some(u) = occupied.get(&cind.rhs_rel()) {
                let met = pins.iter().all(|(a, v)| u.get(*a) == Some(v));
                if met {
                    continue;
                }
                // The single resident target tuple conflicts with this
                // obligation; a richer instance might resolve it, so
                // give up rather than conclude anything.
                return None;
            }

            // Conflicting pins on the same attr (e.g. Yp vs. carried X
            // values) can never be met by one tuple: give up.
            for (i, (a, v)) in pins.iter().enumerate() {
                if pins[i + 1..].iter().any(|(b, w)| a == b && v != w) {
                    return None;
                }
            }

            let group = by_rel(cind.rhs_rel());
            let avoid_rel = avoid.get(&cind.rhs_rel()).unwrap_or(&empty);
            match relation_consistency_pinned(
                schema,
                cind.rhs_rel(),
                &group,
                &pins,
                avoid_rel,
                config,
            ) {
                RelationVerdict::Sat(u) => {
                    occupied.insert(cind.rhs_rel(), u);
                    progressed = true;
                }
                // Unsat under pins only rules out *single-tuple*
                // targets; Unknown rules out nothing. Either way this
                // attempt cannot conclude.
                RelationVerdict::Unsat(_) | RelationVerdict::Unknown => return None,
            }
        }
        if !progressed {
            break; // fixpoint: every triggered obligation is met
        }
    }

    // Materialize and verify against the full Σ before claiming Sat.
    let mut db = Database::empty(Arc::clone(schema));
    for (rel, t) in occupied {
        if db.insert(rel, t).is_err() {
            return None;
        }
    }
    let ok = condep_cfd::satisfy::satisfies_all(&db, cfds)
        && condep_core::satisfy::satisfies_all(&db, cinds);
    ok.then_some(db)
}
