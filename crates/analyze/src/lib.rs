//! Static analysis of Σ: is a dependency set satisfiable *at all*, and
//! if not, exactly which dependencies conflict?
//!
//! BravoFM07's headline results are static analyses: consistency of a
//! CFD set is NP-complete over finite domains, and adding CINDs makes
//! it undecidable (Theorem 4.2). This crate turns those theorems into
//! an engineering contract:
//!
//! - **CFD-only Σ** is decided *exactly* by a SAT encoding over a
//!   single hypothetical tuple per relation ([`relation_consistency`]),
//!   with a satisfying witness database on `Sat` and a **minimal**
//!   unsat core (deletion-shrunk; every proper subset satisfiable) on
//!   `Unsat`.
//! - **CFD + CIND Σ** runs a budgeted chase that closes CIND
//!   obligations one tuple per relation; when the budget trips or the
//!   shape outgrows the search, the verdict is [`SigmaVerdict::Unknown`]
//!   — sound, never wrong.
//! - A [`SigmaLint`] catalogue reports advisory findings (conflicting
//!   rows on a key group, unreachable patterns, impossible CIND
//!   conditions) independent of the verdict.
//!
//! The analyzer is dependency-light (model + cfd + core + sat only) so
//! every layer above — validate, discover, repair, bench — can gate on
//! it without cycles.

#![warn(missing_docs)]

mod chase;
mod encode;
mod lint;

pub use encode::{relation_consistency, RelationVerdict};
pub use lint::SigmaLint;

use condep_cfd::NormalCfd;
use condep_core::NormalCind;
use condep_model::{AttrId, Database, RelId, Schema, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Budgets for the analysis. The defaults decide every tiny-domain Σ
/// exactly and keep worst-case work bounded on adversarial input.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Conflict budget per SAT solve (`None` = unbounded).
    pub max_conflicts: Option<u64>,
    /// Maximum chase passes when CINDs are present.
    pub chase_steps: usize,
    /// Cap on pairwise row comparisons in the lint scan.
    pub lint_pair_cap: usize,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            max_conflicts: Some(50_000),
            chase_steps: 64,
            lint_pair_cap: 100_000,
        }
    }
}

/// A concrete database satisfying Σ (nonempty; one tuple per occupied
/// relation).
#[derive(Debug, Clone)]
pub struct Witness {
    /// The satisfying instance.
    pub db: Database,
}

/// The Σ indices (into the analyzed CFD slice) of a minimal
/// unsatisfiable subset: the named CFDs are jointly unsatisfiable and
/// dropping any one of them restores satisfiability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsatCore {
    /// Sorted CFD indices in conflict.
    pub cfds: Vec<usize>,
}

/// Why the analyzer could not decide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetTrip {
    /// Human-readable budget that tripped.
    pub reason: &'static str,
}

/// Three-valued consistency verdict for a Σ.
#[derive(Debug, Clone)]
pub enum SigmaVerdict {
    /// Σ is consistent; the witness satisfies every dependency.
    Sat(Witness),
    /// Σ is inconsistent; the core names a minimal conflict.
    Unsat(UnsatCore),
    /// Undecided within budget (only possible when CINDs are present
    /// or a conflict budget trips) — sound: never claims Sat or Unsat.
    Unknown(BudgetTrip),
}

impl SigmaVerdict {
    /// `true` for [`SigmaVerdict::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SigmaVerdict::Sat(_))
    }

    /// `true` for [`SigmaVerdict::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SigmaVerdict::Unsat(_))
    }

    /// The unsat core, when the verdict is `Unsat`.
    pub fn core(&self) -> Option<&UnsatCore> {
        match self {
            SigmaVerdict::Unsat(core) => Some(core),
            _ => None,
        }
    }
}

/// The result of a full Σ analysis: a verdict plus advisory lints.
#[derive(Debug, Clone)]
pub struct SigmaAnalysis {
    /// Consistency verdict.
    pub verdict: SigmaVerdict,
    /// Advisory findings (index-addressed into the analyzed slices).
    pub lints: Vec<SigmaLint>,
}

impl SigmaAnalysis {
    /// Translate every CFD/CIND index in the analysis through the
    /// given maps (`map[analyzed] = original`). Used when the analyzed
    /// slices were compacted (e.g. retired dependencies filtered out)
    /// so reports land in the caller's original Σ numbering.
    pub fn remap(mut self, cfd_map: &[usize], cind_map: &[usize]) -> SigmaAnalysis {
        if let SigmaVerdict::Unsat(core) = &mut self.verdict {
            for i in core.cfds.iter_mut() {
                *i = cfd_map[*i];
            }
            core.cfds.sort_unstable();
        }
        for lint in self.lints.iter_mut() {
            lint.remap(cfd_map, cind_map);
        }
        self
    }
}

/// Error returned by pre-flight gates (`Validator::strict`,
/// `repair()`): Σ itself is unsatisfiable, so validating or repairing
/// against it is meaningless.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsatSigma {
    /// Minimal unsat core in the caller's Σ numbering.
    pub core: Vec<usize>,
}

impl fmt::Display for UnsatSigma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sigma is unsatisfiable: no nonempty database can satisfy it (minimal conflicting \
             CFD indices: {:?})",
            self.core
        )
    }
}

impl std::error::Error for UnsatSigma {}

/// The schema-free "cheap tier": pairwise key-group row lints only
/// (conflicting/redundant constant rows). No solving, no domain
/// reasoning — cheap enough to run on every `Validator` construction.
pub fn row_lints(cfds: &[NormalCfd], config: &AnalyzeConfig) -> Vec<SigmaLint> {
    let mut out = Vec::new();
    lint::lint_rows(cfds, config, &mut out);
    out
}

/// Analyze a Σ: decide consistency (exactly for CFD-only input, via a
/// budgeted chase when CINDs are present) and collect the lint
/// catalogue.
///
/// A Σ is *consistent* iff some **nonempty** database satisfies every
/// dependency — the same semantics as
/// `condep_cfd::consistency::set_consistent_exact`. Verdict contract:
///
/// - `Sat(w)`: `w.db` is nonempty and satisfies every CFD and CIND
///   (verified before returning).
/// - `Unsat(core)`: **no** nonempty database satisfies Σ; `core` is a
///   minimal set of CFD indices that is already unsatisfiable on its
///   own.
/// - `Unknown`: the budget tripped or the CIND chase gave up; nothing
///   is claimed either way.
pub fn analyze(
    schema: &Arc<Schema>,
    cfds: &[NormalCfd],
    cinds: &[NormalCind],
    config: &AnalyzeConfig,
) -> SigmaAnalysis {
    let lints = lint::lint_sigma(schema, cfds, cinds, config);

    // Fresh witness values should dodge CIND source conditions where
    // possible, so a CFD witness doesn't trigger obligations it could
    // have avoided.
    let mut avoid: BTreeMap<RelId, Vec<(AttrId, Value)>> = BTreeMap::new();
    for cind in cinds {
        avoid
            .entry(cind.lhs_rel())
            .or_default()
            .extend(cind.xp().iter().cloned());
    }

    // Per-relation CFD consistency. A CFD set over one relation is
    // satisfiable iff a single tuple satisfies it (CFD satisfaction is
    // closed under subinstance), and Σ is satisfiable by a nonempty
    // database iff SOME relation admits a witness with every other
    // relation empty — modulo CIND obligations, handled by the chase.
    let empty: Vec<(AttrId, Value)> = Vec::new();
    let mut witnesses = Vec::new();
    let mut cores: Vec<usize> = Vec::new();
    let mut any_unknown = false;
    for (rel, _) in schema.iter() {
        let group: Vec<(usize, &NormalCfd)> = cfds
            .iter()
            .enumerate()
            .filter(|(_, c)| c.rel() == rel)
            .collect();
        let avoid_rel = avoid.get(&rel).unwrap_or(&empty);
        match encode::relation_consistency_pinned(schema, rel, &group, &[], avoid_rel, config) {
            RelationVerdict::Sat(t) => witnesses.push((rel, t)),
            RelationVerdict::Unsat(core) => cores.extend(core),
            RelationVerdict::Unknown => any_unknown = true,
        }
    }

    if witnesses.is_empty() {
        // Every relation's CFD set is unsatisfiable even in isolation,
        // so no nonempty database exists regardless of CINDs (any
        // nonempty db has a nonempty relation, and CFD satisfaction is
        // closed under subinstance). The union of per-relation minimal
        // cores stays minimal: each CFD constrains exactly one
        // relation, so dropping any core member frees its relation.
        let verdict = if any_unknown {
            SigmaVerdict::Unknown(BudgetTrip {
                reason: "sat conflict budget exhausted",
            })
        } else {
            cores.sort_unstable();
            SigmaVerdict::Unsat(UnsatCore { cfds: cores })
        };
        return SigmaAnalysis { verdict, lints };
    }

    if cinds.is_empty() {
        // One witness tuple in one relation, everything else empty.
        let (rel, t) = witnesses.swap_remove(0);
        let mut db = Database::empty(Arc::clone(schema));
        db.insert(rel, t).expect("witness tuple conforms to schema");
        debug_assert!(condep_cfd::satisfy::satisfies_all(&db, cfds));
        return SigmaAnalysis {
            verdict: SigmaVerdict::Sat(Witness { db }),
            lints,
        };
    }

    // CINDs present: chase obligations from each CFD-satisfiable
    // relation until one attempt closes.
    for (rel, t) in &witnesses {
        if let Some(db) = chase::chase(schema, cfds, cinds, *rel, t, &avoid, config) {
            return SigmaAnalysis {
                verdict: SigmaVerdict::Sat(Witness { db }),
                lints,
            };
        }
    }
    SigmaAnalysis {
        verdict: SigmaVerdict::Unknown(BudgetTrip {
            reason: "cind chase gave up within budget",
        }),
        lints,
    }
}
