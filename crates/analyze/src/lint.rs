//! The Σ lint catalogue: advisory findings beyond hard inconsistency.
//!
//! Lints never change a verdict — they name the *shape* of trouble so a
//! caller can point at the exact Σ indices involved. Every lint that
//! references a dependency does so by its index in the analyzed slice;
//! [`crate::SigmaAnalysis::remap`] translates them back into a caller's
//! original numbering when the analyzed slice was compacted.

use condep_cfd::NormalCfd;
use condep_core::NormalCind;
use condep_model::{AttrId, PValue, RelId, Schema, Value};
use std::fmt;

use crate::AnalyzeConfig;

/// One advisory finding about a Σ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigmaLint {
    /// Two constant-RHS CFDs share a key group (relation + canonical
    /// LHS attributes), their pattern rows are compatible (some tuple
    /// matches both), and they force *different* constants on the same
    /// RHS attribute — any tuple matching both patterns is a
    /// contradiction.
    KeyGroupConflict {
        /// Relation both CFDs constrain.
        rel: RelId,
        /// Index of the first CFD in the analyzed slice.
        left: usize,
        /// Index of the second CFD in the analyzed slice.
        right: usize,
        /// The RHS attribute receiving two different constants.
        attr: AttrId,
    },
    /// One CFD's pattern row subsumes another's on the same key group
    /// (the specific row is redundant under cover merging) yet the two
    /// carry conflicting RHS constants — the "redundant but
    /// contradictory" shape the cover would otherwise silently merge.
    RedundantConflict {
        /// Index of the more general CFD (its pattern subsumes).
        general: usize,
        /// Index of the more specific CFD (subsumed pattern).
        specific: usize,
        /// The RHS attribute receiving two different constants.
        attr: AttrId,
    },
    /// A CFD mentions a constant outside the attribute's finite domain:
    /// with `conclusion: false` the premise can never fire (the row is
    /// dead weight), with `conclusion: true` the conclusion can never
    /// hold (any tuple matching the premise is a violation).
    UnreachablePattern {
        /// Index of the CFD in the analyzed slice.
        cfd: usize,
        /// The attribute whose domain excludes the constant.
        attr: AttrId,
        /// `false`: an LHS pattern cell is unreachable; `true`: the RHS
        /// constant is unsatisfiable.
        conclusion: bool,
    },
    /// A CIND condition column pins a constant outside the attribute's
    /// finite domain, so the pattern can never match any tuple.
    CindConditionImpossible {
        /// Index of the CIND in the analyzed slice.
        cind: usize,
        /// `false`: the source-side `Xp` condition; `true`: the
        /// target-side `Yp` condition.
        target_side: bool,
        /// The attribute whose domain excludes the pinned constant.
        attr: AttrId,
    },
    /// A repair round's accepted edits all rewrote the same key class
    /// toward one value — the classic "majority was actually the dirt"
    /// blind spot (advisory only; repair behavior is unchanged).
    SuspectMajority {
        /// Relation whose tuples were rewritten.
        rel: RelId,
        /// Attribute that was rewritten.
        attr: AttrId,
        /// The value every accepted edit converged on.
        value: Value,
        /// How many cells were rewritten toward it.
        rewritten: usize,
    },
}

impl SigmaLint {
    /// CFD indices this lint references (for remapping).
    pub(crate) fn cfd_indices_mut(&mut self) -> Vec<&mut usize> {
        match self {
            SigmaLint::KeyGroupConflict { left, right, .. } => vec![left, right],
            SigmaLint::RedundantConflict {
                general, specific, ..
            } => vec![general, specific],
            SigmaLint::UnreachablePattern { cfd, .. } => vec![cfd],
            _ => Vec::new(),
        }
    }

    /// CIND indices this lint references (for remapping).
    pub(crate) fn cind_indices_mut(&mut self) -> Vec<&mut usize> {
        match self {
            SigmaLint::CindConditionImpossible { cind, .. } => vec![cind],
            _ => Vec::new(),
        }
    }

    /// Translate every dependency index through `map[analyzed] =
    /// original` (see [`crate::SigmaAnalysis::remap`]).
    pub fn remap(&mut self, cfd_map: &[usize], cind_map: &[usize]) {
        for i in self.cfd_indices_mut() {
            *i = cfd_map[*i];
        }
        for i in self.cind_indices_mut() {
            *i = cind_map[*i];
        }
    }
}

impl fmt::Display for SigmaLint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigmaLint::KeyGroupConflict {
                rel,
                left,
                right,
                attr,
            } => write!(
                f,
                "key-group conflict on relation {}: CFDs #{left} and #{right} force different \
                 constants on attribute {}",
                rel.0, attr.0
            ),
            SigmaLint::RedundantConflict {
                general,
                specific,
                attr,
            } => write!(
                f,
                "redundant conflict: CFD #{specific} is subsumed by #{general} but carries a \
                 different RHS constant on attribute {}",
                attr.0
            ),
            SigmaLint::UnreachablePattern {
                cfd,
                attr,
                conclusion,
            } => {
                if *conclusion {
                    write!(
                        f,
                        "CFD #{cfd}: RHS constant on attribute {} is outside the finite domain — \
                         the conclusion can never hold",
                        attr.0
                    )
                } else {
                    write!(
                        f,
                        "CFD #{cfd}: LHS pattern constant on attribute {} is outside the finite \
                         domain — the row can never match",
                        attr.0
                    )
                }
            }
            SigmaLint::CindConditionImpossible {
                cind,
                target_side,
                attr,
            } => {
                write!(
                f,
                "CIND #{cind}: {} condition on attribute {} pins a constant outside the finite \
                 domain — it can never match",
                if *target_side { "target-side" } else { "source-side" },
                attr.0
            )
            }
            SigmaLint::SuspectMajority {
                rel,
                attr,
                value,
                rewritten,
            } => write!(
                f,
                "suspect majority on relation {} attribute {}: {rewritten} accepted edits all \
                 rewrote toward {value:?} — the majority may be the dirt",
                rel.0, attr.0
            ),
        }
    }
}

/// `true` when some tuple can match both pattern rows over the same
/// canonical attribute list: cell-wise, constants must agree wherever
/// both are constant.
fn compatible(a: &[Option<&Value>], b: &[Option<&Value>]) -> bool {
    a.iter().zip(b).all(|(x, y)| match (x, y) {
        (Some(va), Some(vb)) => va == vb,
        _ => true,
    })
}

/// `true` when pattern `spec` is subsumed by `gen` (every tuple
/// matching `spec` matches `gen`): wherever `gen` is constant, `spec`
/// has the same constant.
fn subsumed(spec: &[Option<&Value>], general: &[Option<&Value>]) -> bool {
    spec.iter().zip(general).all(|(s, g)| match (s, g) {
        (_, None) => true,
        (Some(vs), Some(vg)) => vs == vg,
        (None, Some(_)) => false,
    })
}

/// Run the whole-Σ lint pass (domain reachability + key-group row
/// conflicts + CIND condition checks). Pure pattern/domain reasoning —
/// no solving.
pub(crate) fn lint_sigma(
    schema: &Schema,
    cfds: &[NormalCfd],
    cinds: &[NormalCind],
    config: &AnalyzeConfig,
) -> Vec<SigmaLint> {
    let mut lints = Vec::new();
    lint_domains(schema, cfds, cinds, &mut lints);
    lint_rows(cfds, config, &mut lints);
    lints
}

/// Constants outside finite domains: unreachable CFD rows and
/// impossible CIND conditions.
fn lint_domains(
    schema: &Schema,
    cfds: &[NormalCfd],
    cinds: &[NormalCind],
    out: &mut Vec<SigmaLint>,
) {
    for (i, cfd) in cfds.iter().enumerate() {
        let Ok(rs) = schema.relation(cfd.rel()) else {
            continue;
        };
        for (pos, &attr) in cfd.lhs().iter().enumerate() {
            if let (Some(v), Ok(a)) = (cfd.lhs_pat().cell(pos).as_const(), rs.attribute(attr)) {
                if !a.domain().contains(v) {
                    out.push(SigmaLint::UnreachablePattern {
                        cfd: i,
                        attr,
                        conclusion: false,
                    });
                }
            }
        }
        if let (Some(v), Ok(a)) = (cfd.rhs_pat().as_const(), rs.attribute(cfd.rhs())) {
            if !a.domain().contains(v) {
                out.push(SigmaLint::UnreachablePattern {
                    cfd: i,
                    attr: cfd.rhs(),
                    conclusion: true,
                });
            }
        }
    }
    for (i, cind) in cinds.iter().enumerate() {
        for (target_side, rel, cond) in [
            (false, cind.lhs_rel(), cind.xp()),
            (true, cind.rhs_rel(), cind.yp()),
        ] {
            let Ok(rs) = schema.relation(rel) else {
                continue;
            };
            for (attr, v) in cond {
                if let Ok(a) = rs.attribute(*attr) {
                    if !a.domain().contains(v) {
                        out.push(SigmaLint::CindConditionImpossible {
                            cind: i,
                            target_side,
                            attr: *attr,
                        });
                    }
                }
            }
        }
    }
}

/// Pairwise key-group scan: constant-RHS rows on the same
/// `(relation, canonical LHS, RHS attr)` group whose patterns overlap
/// but whose constants differ. Schema-free — this is the cheap tier
/// run on every `Validator` construction.
pub(crate) fn lint_rows(cfds: &[NormalCfd], config: &AnalyzeConfig, out: &mut Vec<SigmaLint>) {
    use std::collections::HashMap;
    // Group by (rel, sorted LHS attrs, rhs attr); only constant-RHS
    // rows can pairwise conflict on a single tuple.
    let mut groups: HashMap<(RelId, Vec<AttrId>, AttrId), Vec<usize>> = HashMap::new();
    for (i, cfd) in cfds.iter().enumerate() {
        if !matches!(cfd.rhs_pat(), PValue::Const(_)) {
            continue;
        }
        let (attrs, _) = cfd.canonical_lhs();
        groups
            .entry((cfd.rel(), attrs, cfd.rhs()))
            .or_default()
            .push(i);
    }
    let mut budget = config.lint_pair_cap;
    let mut keys: Vec<_> = groups.keys().cloned().collect();
    keys.sort();
    for key in keys {
        let members = &groups[&key];
        for (a, &i) in members.iter().enumerate() {
            for &j in &members[a + 1..] {
                if budget == 0 {
                    return;
                }
                budget -= 1;
                let (ci, cj) = (&cfds[i], &cfds[j]);
                if ci.rhs_pat() == cj.rhs_pat() {
                    continue; // same constant: duplicates, not a conflict
                }
                let (_, pi) = ci.canonical_lhs();
                let (_, pj) = cj.canonical_lhs();
                if !compatible(&pi, &pj) {
                    continue; // disjoint rows can never co-fire
                }
                let attr = key.2;
                if subsumed(&pi, &pj) && !subsumed(&pj, &pi) {
                    out.push(SigmaLint::RedundantConflict {
                        general: j,
                        specific: i,
                        attr,
                    });
                } else if subsumed(&pj, &pi) && !subsumed(&pi, &pj) {
                    out.push(SigmaLint::RedundantConflict {
                        general: i,
                        specific: j,
                        attr,
                    });
                } else {
                    out.push(SigmaLint::KeyGroupConflict {
                        rel: key.0,
                        left: i,
                        right: j,
                        attr,
                    });
                }
            }
        }
    }
}
