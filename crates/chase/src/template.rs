//! Database templates: databases over constants and pool variables.

use condep_model::{AttrId, RelId, Schema, Tuple, Value};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// A pool variable: the `idx`-th member of `var[A]` for attribute `A`
/// of relation `rel` (the paper's per-attribute variable sets).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarRef {
    /// The relation whose attribute owns the pool.
    pub rel: RelId,
    /// The attribute owning the pool.
    pub attr: AttrId,
    /// Index within `var[A]` (bounded by the pool size `N`).
    pub idx: u8,
}

impl fmt::Display for VarRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}_{}_{}", self.rel.0, self.attr.0, self.idx)
    }
}

/// A template cell: a pool variable or a constant.
///
/// The paper's order: variables precede constants (`v < a` for every
/// variable `v` and constant `a`), variables are ordered among
/// themselves, and constants are left unordered by `<` (our derived
/// order on [`Value`] is a harmless refinement used only for
/// determinism). Matching: `v ≭ a` but `v ≍ _`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum TplValue {
    /// A pool variable (sorts before every constant).
    Var(VarRef),
    /// A concrete constant.
    Const(Value),
}

impl TplValue {
    /// Is this a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, TplValue::Var(_))
    }

    /// The constant payload, if any.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            TplValue::Const(v) => Some(v),
            TplValue::Var(_) => None,
        }
    }
}

impl fmt::Display for TplValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TplValue::Var(v) => write!(f, "{v}"),
            TplValue::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A template tuple.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TplTuple(pub Vec<TplValue>);

impl TplTuple {
    /// The cell at `attr`.
    pub fn get(&self, attr: AttrId) -> &TplValue {
        &self.0[attr.index()]
    }

    /// All cells.
    pub fn cells(&self) -> &[TplValue] {
        &self.0
    }

    /// Does every `(attr, const)` pair hold exactly? (Template matching:
    /// variables never equal constants.)
    pub fn matches_consts(&self, pairs: &[(AttrId, Value)]) -> bool {
        pairs
            .iter()
            .all(|(a, v)| self.get(*a) == &TplValue::Const(v.clone()))
    }

    /// Converts to a concrete [`Tuple`] if no variables remain.
    pub fn to_concrete(&self) -> Option<Tuple> {
        let values: Option<Vec<Value>> = self.0.iter().map(|c| c.as_const().cloned()).collect();
        values.map(Tuple::new)
    }
}

impl fmt::Display for TplTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// A database template `D` (paper: "a chasing sequence of database
/// templates (with variables)"). Relations are tuple sets with
/// deterministic iteration order.
#[derive(Clone, Debug)]
pub struct TemplateDb {
    schema: Arc<Schema>,
    relations: Vec<Vec<TplTuple>>,
}

impl TemplateDb {
    /// An empty template over `schema`.
    pub fn empty(schema: Arc<Schema>) -> Self {
        let relations = (0..schema.len()).map(|_| Vec::new()).collect();
        TemplateDb { schema, relations }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Tuples of relation `rel`.
    pub fn relation(&self, rel: RelId) -> &[TplTuple] {
        &self.relations[rel.index()]
    }

    /// Inserts a tuple (set semantics); returns whether it was new.
    pub fn insert(&mut self, rel: RelId, t: TplTuple) -> bool {
        debug_assert_eq!(
            t.0.len(),
            self.schema.relation(rel).map(|r| r.arity()).unwrap_or(0)
        );
        let tuples = &mut self.relations[rel.index()];
        if tuples.contains(&t) {
            return false;
        }
        tuples.push(t);
        true
    }

    /// Total tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(Vec::len).sum()
    }

    /// Is the whole template empty?
    pub fn is_empty(&self) -> bool {
        self.relations.iter().all(Vec::is_empty)
    }

    /// Substitutes variable `v := to` everywhere, then deduplicates
    /// collapsed tuples. Returns whether anything changed.
    pub fn substitute(&mut self, v: VarRef, to: &TplValue) -> bool {
        let mut changed = false;
        for tuples in &mut self.relations {
            for t in tuples.iter_mut() {
                for cell in &mut t.0 {
                    if *cell == TplValue::Var(v) {
                        *cell = to.clone();
                        changed = true;
                    }
                }
            }
            if changed {
                let mut seen = HashSet::with_capacity(tuples.len());
                tuples.retain(|t| seen.insert(t.clone()));
            }
        }
        changed
    }

    /// All distinct variables occurring in the template.
    pub fn variables(&self) -> Vec<VarRef> {
        let mut seen = std::collections::BTreeSet::new();
        for tuples in &self.relations {
            for t in tuples {
                for cell in &t.0 {
                    if let TplValue::Var(v) = cell {
                        seen.insert(*v);
                    }
                }
            }
        }
        seen.into_iter().collect()
    }

    /// The variables whose attribute has a finite domain — the set `V`
    /// the valuations of Section 5.2 range over.
    pub fn finite_variables(&self) -> Vec<VarRef> {
        self.variables()
            .into_iter()
            .filter(|v| {
                self.schema
                    .relation(v.rel)
                    .ok()
                    .and_then(|rs| rs.attribute(v.attr).ok().map(|a| a.is_finite()))
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Converts to a concrete [`condep_model::Database`], mapping every
    /// remaining variable to a fresh value of its attribute's domain
    /// (distinct per variable, avoiding `avoid_constants`). Returns
    /// `None` if some finite-domain variable cannot receive a fresh
    /// value — callers should have instantiated those via valuations.
    pub fn instantiate_fresh(&self, avoid_constants: &[Value]) -> Option<condep_model::Database> {
        let mut db = condep_model::Database::empty(self.schema.clone());
        let mut assigned: std::collections::HashMap<VarRef, Value> =
            std::collections::HashMap::new();
        let mut used: Vec<Value> = avoid_constants.to_vec();
        for v in self.variables() {
            let dom = self
                .schema
                .relation(v.rel)
                .ok()?
                .attribute(v.attr)
                .ok()?
                .domain()
                .clone();
            let fresh = dom.fresh_value(used.iter())?;
            used.push(fresh.clone());
            assigned.insert(v, fresh);
        }
        for (i, tuples) in self.relations.iter().enumerate() {
            let rel = RelId(i as u32);
            for t in tuples {
                let concrete = Tuple::new(t.0.iter().map(|c| match c {
                    TplValue::Const(v) => v.clone(),
                    TplValue::Var(v) => assigned[v].clone(),
                }));
                db.insert(rel, concrete).ok()?;
            }
        }
        Some(db)
    }
}

impl fmt::Display for TemplateDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, tuples) in self.relations.iter().enumerate() {
            let name = self
                .schema
                .relation(RelId(i as u32))
                .map(|r| r.name().to_string())
                .unwrap_or_else(|_| format!("R{i}"));
            writeln!(f, "{name}:")?;
            for t in tuples {
                writeln!(f, "  {t}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_core::fixtures::example_5_1_schema;

    fn var(rel: u32, attr: u32, idx: u8) -> VarRef {
        VarRef {
            rel: RelId(rel),
            attr: AttrId(attr),
            idx,
        }
    }

    #[test]
    fn ordering_vars_before_consts() {
        let v = TplValue::Var(var(0, 0, 0));
        let c = TplValue::Const(Value::str("a"));
        assert!(v < c, "the paper's order requires v < a");
        let v2 = TplValue::Var(var(0, 0, 1));
        assert!(v < v2);
    }

    #[test]
    fn insert_dedups_and_counts() {
        let schema = example_5_1_schema(false);
        let mut db = TemplateDb::empty(schema.clone());
        let r1 = schema.rel_id("r1").unwrap();
        let t = TplTuple(vec![
            TplValue::Var(var(0, 0, 0)),
            TplValue::Var(var(0, 1, 0)),
        ]);
        assert!(db.insert(r1, t.clone()));
        assert!(!db.insert(r1, t));
        assert_eq!(db.total_tuples(), 1);
        assert!(!db.is_empty());
    }

    #[test]
    fn substitution_is_global_and_dedups() {
        let schema = example_5_1_schema(false);
        let mut db = TemplateDb::empty(schema.clone());
        let r1 = schema.rel_id("r1").unwrap();
        let v0 = var(0, 0, 0);
        db.insert(
            r1,
            TplTuple(vec![TplValue::Var(v0), TplValue::Const(Value::str("x"))]),
        );
        db.insert(
            r1,
            TplTuple(vec![
                TplValue::Const(Value::str("c")),
                TplValue::Const(Value::str("x")),
            ]),
        );
        assert_eq!(db.relation(r1).len(), 2);
        // v0 := c collapses the two tuples into one.
        assert!(db.substitute(v0, &TplValue::Const(Value::str("c"))));
        assert_eq!(db.relation(r1).len(), 1);
        assert!(db.variables().is_empty());
    }

    #[test]
    fn finite_variables_filters_by_domain() {
        let schema = example_5_1_schema(true); // dom(H) = {0, 1}
        let mut db = TemplateDb::empty(schema.clone());
        let r2 = schema.rel_id("r2").unwrap();
        let vg = var(1, 0, 0);
        let vh = var(1, 1, 0);
        db.insert(r2, TplTuple(vec![TplValue::Var(vg), TplValue::Var(vh)]));
        assert_eq!(db.variables().len(), 2);
        assert_eq!(db.finite_variables(), vec![vh]);
    }

    #[test]
    fn instantiate_fresh_avoids_constants_and_distinguishes_vars() {
        let schema = example_5_1_schema(false);
        let mut db = TemplateDb::empty(schema.clone());
        let r1 = schema.rel_id("r1").unwrap();
        db.insert(
            r1,
            TplTuple(vec![
                TplValue::Var(var(0, 0, 0)),
                TplValue::Var(var(0, 1, 0)),
            ]),
        );
        let avoid = vec![Value::str("a"), Value::str("b")];
        let concrete = db.instantiate_fresh(&avoid).unwrap();
        let inst = concrete.relation(r1);
        assert_eq!(inst.len(), 1);
        let t = inst.get(0).unwrap();
        // Fresh values avoid the constants and are pairwise distinct.
        assert!(!avoid.contains(&t[AttrId(0)]));
        assert!(!avoid.contains(&t[AttrId(1)]));
        assert_ne!(t[AttrId(0)], t[AttrId(1)]);
    }

    #[test]
    fn matches_consts_requires_exact_constants() {
        let t = TplTuple(vec![
            TplValue::Const(Value::str("0")),
            TplValue::Var(var(1, 1, 0)),
        ]);
        assert!(t.matches_consts(&[(AttrId(0), Value::str("0"))]));
        // A variable never matches a constant (v ≭ a).
        assert!(!t.matches_consts(&[(AttrId(1), Value::str("0"))]));
    }

    #[test]
    fn to_concrete_requires_groundness() {
        let ground = TplTuple(vec![TplValue::Const(Value::str("x"))]);
        assert!(ground.to_concrete().is_some());
        let open = TplTuple(vec![TplValue::Var(var(0, 0, 0))]);
        assert!(open.to_concrete().is_none());
    }
}
