//! Incremental candidate checking for the instantiated chase.
//!
//! Procedure `CFD_Checking` (Section 5.2) instantiates the remaining
//! finite-domain variables one by one, skipping candidates that
//! immediately fire a conflicting CFD premise. The naive check rescans
//! every tuple pair of the template per candidate — `O(|D|²·|Σ|)` per
//! trial. A [`ChaseValidator`] replaces the rescans with the workspace's
//! delta engine: the template is **encoded** once into a concrete
//! [`condep_model::Database`] (variables become tagged sentinel strings)
//! backing a persistent [`condep_validate::ValidatorStream`], and each
//! candidate trial is
//!
//! 1. **apply** — overlay the substitution as `delete + insert` deltas on
//!    the tuples carrying the variable,
//! 2. **check** — probe the carrier tuples' own key groups for conflicts
//!    whose witnessing cells are all *rigid* (genuine constants; a
//!    disagreement involving a variable is repairable by `FD(φ)` and is
//!    not a conflict),
//! 3. **retract** — roll the deltas back if the candidate is rejected,
//!    or keep them (and the live indexes) if it is accepted.
//!
//! Each trial therefore costs time proportional to the tuples the
//! substitution touches and their key-group sizes — never a template
//! rescan. The classic quadratic check survives as
//! [`crate::engine::candidate_conflicts`], the reference oracle the
//! differential tests compare against.

use crate::template::{TemplateDb, TplValue, VarRef};
use condep_cfd::NormalCfd;
use condep_model::{AttrId, Database, Domain, PValue, PatternRow, RelId, Schema, Tuple, Value};
use condep_validate::{Mutation, Validator, ValidatorStream};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Tag prefixing encoded pool variables. `U+0001` cannot collide with
/// encoded constants, which always carry a `s:`/`i:`/`b:` type prefix.
const VAR_TAG: char = '\u{1}';

/// Encodes a template constant injectively as a string (the relaxed
/// schema is all-string so arity and equality survive, domains don't
/// constrain sentinel values).
fn encode_const(v: &Value) -> Value {
    match v {
        Value::Str(s) => Value::str(format!("s:{s}")),
        Value::Int(i) => Value::str(format!("i:{i}")),
        Value::Bool(b) => Value::str(format!("b:{b}")),
    }
}

/// Encodes a pool variable as a tagged sentinel string.
fn encode_var(v: VarRef) -> Value {
    Value::str(format!("{VAR_TAG}{}:{}:{}", v.rel.0, v.attr.0, v.idx))
}

/// Encodes one template cell.
fn encode_cell(c: &TplValue) -> Value {
    match c {
        TplValue::Const(v) => encode_const(v),
        TplValue::Var(v) => encode_var(*v),
    }
}

/// Is an encoded value a genuine constant (not a variable sentinel)?
/// Variables match only wildcards and never conflict as witnesses.
fn is_rigid(v: &Value) -> bool {
    v.as_str().is_none_or(|s| !s.starts_with(VAR_TAG))
}

/// Recovers the [`VarRef`] behind an encoded variable sentinel.
fn decode_var(v: &Value) -> Option<VarRef> {
    let rest = v.as_str()?.strip_prefix(VAR_TAG)?;
    let mut it = rest.split(':');
    let rel = it.next()?.parse().ok()?;
    let attr = it.next()?.parse().ok()?;
    let idx = it.next()?.parse().ok()?;
    Some(VarRef {
        rel: RelId(rel),
        attr: AttrId(attr),
        idx,
    })
}

/// The template's schema with every domain relaxed to unconstrained
/// strings, so encoded constants and variable sentinels all type-check.
fn relaxed_schema(schema: &Schema) -> Arc<Schema> {
    let mut b = Schema::builder();
    for (_, rs) in schema.iter() {
        let attrs: Vec<(&str, Domain)> = rs
            .attributes()
            .iter()
            .map(|a| (a.name(), Domain::string()))
            .collect();
        b = b.relation(rs.name(), &attrs);
    }
    Arc::new(b.finish())
}

/// Re-expresses a CFD over the relaxed schema: same attributes, pattern
/// constants encoded the same way as tuple cells.
fn encode_cfd(cfd: &NormalCfd) -> NormalCfd {
    let lhs_pat = PatternRow::new(cfd.lhs_pat().cells().iter().map(|c| match c {
        PValue::Any => PValue::Any,
        PValue::Const(v) => PValue::Const(encode_const(v)),
    }));
    let rhs_pat = match cfd.rhs_pat() {
        PValue::Any => PValue::Any,
        PValue::Const(v) => PValue::Const(encode_const(v)),
    };
    NormalCfd::new(cfd.rel(), cfd.lhs().to_vec(), lhs_pat, cfd.rhs(), rhs_pat)
}

/// One applied carrier update, kept for rollback/commit.
struct Applied {
    rel: RelId,
    old: Tuple,
    new: Tuple,
    /// The inverse mutation the stream handed back — for a merged
    /// carrier (the replacement already resided, two template tuples
    /// collapsed) this is the bare re-insertion of `old`, so rollback
    /// never deletes the pre-existing partner.
    revert: Mutation,
}

/// A persistent incremental CFD checker over an encoded chase template.
pub struct ChaseValidator {
    stream: ValidatorStream,
    /// Which encoded tuples carry each live variable — across **all**
    /// relations (`IND(ψ)` copies variables into target relations).
    occ: HashMap<VarRef, HashSet<(RelId, Tuple)>>,
}

impl ChaseValidator {
    /// Encodes `db` and compiles `cfds` into a live stream. Built once
    /// per instantiation pass; every candidate trial afterwards is
    /// delta-cost.
    pub fn new(db: &TemplateDb, cfds: &[NormalCfd]) -> Self {
        let schema = relaxed_schema(db.schema());
        let mut enc = Database::empty(schema);
        let mut occ: HashMap<VarRef, HashSet<(RelId, Tuple)>> = HashMap::new();
        for i in 0..db.schema().len() {
            let rel = RelId(i as u32);
            for t in db.relation(rel) {
                let tuple = Tuple::new(t.cells().iter().map(encode_cell));
                enc.insert(rel, tuple.clone())
                    .expect("relaxed schema accepts every encoded cell");
                for cell in t.cells() {
                    if let TplValue::Var(v) = cell {
                        occ.entry(*v).or_default().insert((rel, tuple.clone()));
                    }
                }
            }
        }
        let validator = Validator::new(cfds.iter().map(encode_cfd).collect(), vec![]);
        let (stream, _initial) = ValidatorStream::new_validated(validator, enc);
        ChaseValidator { stream, occ }
    }

    /// Overlays `var := candidate` on every carrier tuple through the
    /// stream's value-level [`Mutation`] API; each carrier's inverse
    /// mutation is stashed for [`ChaseValidator::retract`]. A merging
    /// update (the replacement already resides — two template tuples
    /// collapse) degenerates to a deletion inside the stream, and its
    /// revert re-inserts only `old`.
    fn apply(&mut self, var: VarRef, candidate: &Value) -> Vec<Applied> {
        let enc_var = encode_var(var);
        let enc_cand = encode_const(candidate);
        let carriers: Vec<(RelId, Tuple)> = self
            .occ
            .get(&var)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        let mut applied = Vec::with_capacity(carriers.len());
        for (rel, old) in carriers {
            let new = Tuple::new(old.values().iter().map(|v| {
                if *v == enc_var {
                    enc_cand.clone()
                } else {
                    v.clone()
                }
            }));
            let outcome = self
                .stream
                .apply(Mutation::Update {
                    rel,
                    old: old.clone(),
                    new: new.clone(),
                })
                .expect("relaxed schema accepts every encoded cell");
            let revert = outcome
                .revert
                .expect("a carrier update is never a no-op: the variable occurs in `old`");
            applied.push(Applied {
                rel,
                old,
                new,
                revert,
            });
        }
        applied
    }

    /// Undoes [`ChaseValidator::apply`] by replaying the stashed inverse
    /// mutations (reverse order, so merged tuples un-merge correctly).
    fn retract(&mut self, applied: Vec<Applied>) {
        for a in applied.into_iter().rev() {
            self.stream
                .revert(a.revert)
                .expect("restoring a previously valid tuple");
        }
    }

    /// Keeps an applied substitution: the variable is gone, and the
    /// carriers' remaining variables now live in the replacement tuples.
    fn commit(&mut self, var: VarRef, applied: Vec<Applied>) {
        self.occ.remove(&var);
        for a in applied {
            for v in a.old.values() {
                if let Some(w) = decode_var(v) {
                    if w == var {
                        continue;
                    }
                    if let Some(set) = self.occ.get_mut(&w) {
                        set.remove(&(a.rel, a.old.clone()));
                        set.insert((a.rel, a.new.clone()));
                    }
                }
            }
        }
    }

    /// Does the fully applied substitution leave a rigid CFD conflict on
    /// any carrier?
    fn conflicts(&self, applied: &[Applied]) -> bool {
        applied
            .iter()
            .any(|a| self.stream.cfd_conflicts(a.rel, &a.new, is_rigid))
    }

    /// The apply → check → retract-on-reject cycle: tries `var :=
    /// candidate`, keeping it (and returning `true`) iff no CFD premise
    /// immediately conflicts. On `true` the caller must mirror the
    /// substitution on its template ([`TemplateDb::substitute`]).
    pub fn try_instantiate(&mut self, var: VarRef, candidate: &Value) -> bool {
        let applied = self.apply(var, candidate);
        if self.conflicts(&applied) {
            self.retract(applied);
            return false;
        }
        self.commit(var, applied);
        true
    }

    /// Applies `var := value` unconditionally — the engine's fallback
    /// when every candidate conflicts (the following CFD fixpoint then
    /// reports the chase undefined, which is the correct signal).
    pub fn force_instantiate(&mut self, var: VarRef, value: &Value) {
        let applied = self.apply(var, value);
        self.commit(var, applied);
    }

    /// Checks a candidate without committing either way — the
    /// differential-testing entry point.
    pub fn would_conflict(&mut self, var: VarRef, candidate: &Value) -> bool {
        let applied = self.apply(var, candidate);
        let conflict = self.conflicts(&applied);
        self.retract(applied);
        conflict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::candidate_conflicts;
    use crate::template::TplTuple;
    use condep_core::fixtures::example_5_1_schema;
    use condep_model::prow;

    fn var(rel: u32, attr: u32, idx: u8) -> VarRef {
        VarRef {
            rel: RelId(rel),
            attr: AttrId(attr),
            idx,
        }
    }

    /// Deterministic xorshift so the differential sweep is reproducible.
    fn next(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_cell(state: &mut u64, rel: u32, attr: u32) -> TplValue {
        match next(state) % 5 {
            0 => TplValue::Var(var(rel, attr, 0)),
            1 => TplValue::Var(var(rel, attr, 1)),
            k => {
                let consts = ["a", "b", "c"];
                TplValue::Const(Value::str(consts[(k as usize - 2) % consts.len()]))
            }
        }
    }

    /// Random templates over the Example 5.1 schema, mixed CFD shapes:
    /// the incremental checker must agree with the quadratic reference
    /// on every (variable, candidate) decision.
    #[test]
    fn differential_against_candidate_conflicts() {
        let schema = example_5_1_schema(false);
        let cfds = vec![
            NormalCfd::parse(&schema, "r1", &["e"], prow![_], "f", PValue::Any).unwrap(),
            NormalCfd::parse(&schema, "r2", &["h"], prow![_], "g", PValue::constant("c")).unwrap(),
            NormalCfd::parse(
                &schema,
                "r1",
                &["e"],
                prow!["a"],
                "f",
                PValue::constant("b"),
            )
            .unwrap(),
            NormalCfd::parse(&schema, "r2", &["g"], prow![_], "h", PValue::Any).unwrap(),
        ];
        let candidates = [Value::str("a"), Value::str("b"), Value::str("c")];
        let mut state = 0x5eed_cafe_f00d_1234u64;
        let mut decisions = 0usize;
        for _case in 0..120 {
            let mut db = TemplateDb::empty(schema.clone());
            for rel in 0..2u32 {
                let n = 1 + next(&mut state) % 4;
                for _ in 0..n {
                    let cells = (0..2u32)
                        .map(|attr| random_cell(&mut state, rel, attr))
                        .collect();
                    db.insert(RelId(rel), TplTuple(cells));
                }
            }
            let vars = db.variables();
            if vars.is_empty() {
                continue;
            }
            let mut cv = ChaseValidator::new(&db, &cfds);
            for v in vars {
                for cand in &candidates {
                    let incremental = cv.would_conflict(v, cand);
                    let reference = candidate_conflicts(&db, &cfds, v, cand);
                    assert_eq!(
                        incremental, reference,
                        "case diverged on {v:?} := {cand:?} for template:\n{db}"
                    );
                    decisions += 1;
                }
            }
        }
        assert!(decisions > 300, "sweep too small: {decisions}");
    }

    /// Committed instantiations keep the checker usable for later
    /// variables, mirroring template substitution (including merges).
    #[test]
    fn commit_tracks_merges_and_remaining_variables() {
        let schema = example_5_1_schema(false);
        // (R1: E → F, (_ || _)): same E forces same F.
        let fd = NormalCfd::parse(&schema, "r1", &["e"], prow![_], "f", PValue::Any).unwrap();
        let r1 = schema.rel_id("r1").unwrap();
        let ve = var(0, 0, 0);
        let vf = var(0, 1, 0);
        let mut db = TemplateDb::empty(schema.clone());
        // (vE, a) and (b, a): instantiating vE := b merges the tuples.
        db.insert(
            r1,
            TplTuple(vec![TplValue::Var(ve), TplValue::Const(Value::str("a"))]),
        );
        db.insert(
            r1,
            TplTuple(vec![
                TplValue::Const(Value::str("b")),
                TplValue::Const(Value::str("a")),
            ]),
        );
        // (c, vF): a second group, F still open.
        db.insert(
            r1,
            TplTuple(vec![TplValue::Const(Value::str("c")), TplValue::Var(vf)]),
        );
        let mut cv = ChaseValidator::new(&db, &[fd]);
        assert!(cv.try_instantiate(ve, &Value::str("b")), "merge is clean");
        db.substitute(ve, &TplValue::Const(Value::str("b")));
        assert_eq!(db.relation(r1).len(), 2, "template merged");
        // The merged stream agrees: any candidate for vF is clean (its
        // group is a singleton).
        assert!(!cv.would_conflict(vf, &Value::str("a")));
        assert!(cv.try_instantiate(vf, &Value::str("c")));
        db.substitute(vf, &TplValue::Const(Value::str("c")));
        assert!(db.variables().is_empty());
    }

    /// A rejected candidate must leave no trace: the same query repeats
    /// identically and an alternative candidate still succeeds.
    #[test]
    fn retract_restores_the_stream() {
        let schema = example_5_1_schema(false);
        let pin =
            NormalCfd::parse(&schema, "r2", &["h"], prow![_], "g", PValue::constant("c")).unwrap();
        let r2 = schema.rel_id("r2").unwrap();
        let vg = var(1, 0, 0);
        let mut db = TemplateDb::empty(schema.clone());
        db.insert(
            r2,
            TplTuple(vec![TplValue::Var(vg), TplValue::Const(Value::str("k"))]),
        );
        let mut cv = ChaseValidator::new(&db, std::slice::from_ref(&pin));
        for _ in 0..3 {
            assert!(cv.would_conflict(vg, &Value::str("a")), "g must be c");
        }
        assert!(!cv.try_instantiate(vg, &Value::str("a")));
        assert!(cv.try_instantiate(vg, &Value::str("c")));
        db.substitute(vg, &TplValue::Const(Value::str("c")));
        assert!(!candidate_conflicts(&db, &[pin], vg, &Value::str("c")));
    }
}
