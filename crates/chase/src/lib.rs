#![warn(missing_docs)]

//! # condep-chase
//!
//! The extended chase of Section 5.1 of the paper.
//!
//! Classical chasing with INDs can run forever; the paper bounds it by
//! drawing the unknown fields of newly created tuples from **predefined
//! finite variable pools** `var[A]` (size `N`, default 2 as in the
//! experiments) and capping relation sizes at `T` tuples. The chase then
//! operates on *database templates* — databases whose cells are
//! constants or pool variables ([`template::TemplateDb`]) — with two
//! operations:
//!
//! * `IND(ψ)` ([`ops::ind_step`]): a tuple matching `tp[Xp]` without a
//!   target witness forces a new target tuple (`Y` copied, `Yp` set to
//!   the pattern constants, the rest drawn from the pools);
//! * `FD(φ)` ([`ops::fd_step`]): tuples agreeing on `X` and matching
//!   `tp[X]` must agree on `A` (and match a constant `tp[A]`); variables
//!   are substituted away, and two distinct constants make the chase
//!   **undefined** — the failure signal the consistency algorithms use.
//!
//! The *instantiated chase* `chaseI` ([`engine::chase`] with
//! [`config::ChaseConfig::instantiate_finite`]) additionally replaces
//! finite-domain variables by domain constants (via a random
//! [`valuation`] or eagerly at tuple-creation time), which is what makes
//! the heuristics of Section 5.2 sensitive to finite domains.

pub mod config;
pub mod engine;
pub mod ops;
pub mod template;
pub mod validator;
pub mod valuation;

pub use config::ChaseConfig;
pub use engine::{chase, ChaseOutcome, UndefinedReason};
pub use template::{TemplateDb, TplTuple, TplValue, VarRef};
pub use validator::ChaseValidator;
