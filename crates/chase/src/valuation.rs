//! Valuations of finite-domain variables (Section 5.2).
//!
//! "Let `V` be the set of all variables associated with attributes that
//! have finite domains. A valuation `ρ_V` w.r.t. `V` is a mapping from
//! `V` to constants in the respective domains of the variables." The set
//! of all valuations is exponential; `RandomChecking` samples up to `K`
//! of them.

use crate::template::{TemplateDb, TplValue, VarRef};
use condep_model::{Schema, Value};
use rand::Rng;
use std::collections::HashMap;

/// A valuation `ρ`: finite-domain variables to domain constants.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Valuation {
    assignments: HashMap<VarRef, Value>,
}

impl Valuation {
    /// The empty valuation (used when `V = ∅`, per the paper).
    pub fn empty() -> Self {
        Valuation::default()
    }

    /// Builds a valuation from explicit pairs.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (VarRef, Value)>,
    {
        Valuation {
            assignments: pairs.into_iter().collect(),
        }
    }

    /// The assigned value of `v`, if any.
    pub fn get(&self, v: VarRef) -> Option<&Value> {
        self.assignments.get(&v)
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Is the valuation empty?
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Applies `ρ` to the template (`ρ(D)` in the paper): every assigned
    /// variable is substituted by its constant. Variables with infinite
    /// domains are untouched.
    pub fn apply(&self, db: &mut TemplateDb) {
        for (v, c) in &self.assignments {
            db.substitute(*v, &TplValue::Const(c.clone()));
        }
    }
}

/// The domain values available to a finite-domain variable.
fn domain_of(schema: &Schema, v: VarRef) -> Option<Vec<Value>> {
    schema
        .relation(v.rel)
        .ok()?
        .attribute(v.attr)
        .ok()?
        .domain()
        .values()
        .map(<[Value]>::to_vec)
}

/// Samples a uniform random valuation of the given finite-domain
/// variables — one draw from `V_finattr(R)`.
pub fn random_valuation<R: Rng>(schema: &Schema, vars: &[VarRef], rng: &mut R) -> Valuation {
    let pairs = vars.iter().filter_map(|v| {
        let dom = domain_of(schema, *v)?;
        let k = rng.gen_range(0..dom.len());
        Some((*v, dom[k].clone()))
    });
    Valuation::from_pairs(pairs)
}

/// The number of valuations in `V_finattr(R)` (`∏ |dom|`), saturating —
/// the quantity `K` guards against.
pub fn valuation_space_size(schema: &Schema, vars: &[VarRef]) -> u64 {
    let mut size: u64 = 1;
    for v in vars {
        let n = domain_of(schema, *v).map(|d| d.len() as u64).unwrap_or(1);
        size = size.saturating_mul(n);
    }
    size
}

/// Enumerates all valuations (odometer order) — used when the space is
/// small enough to explore exhaustively, and by tests as ground truth.
pub fn all_valuations(schema: &Schema, vars: &[VarRef]) -> Vec<Valuation> {
    let doms: Vec<Vec<Value>> = vars
        .iter()
        .map(|v| domain_of(schema, *v).unwrap_or_default())
        .collect();
    if doms.iter().any(Vec::is_empty) && !vars.is_empty() {
        return vec![];
    }
    let mut out = Vec::new();
    let mut counters = vec![0usize; vars.len()];
    'outer: loop {
        out.push(Valuation::from_pairs(
            vars.iter()
                .enumerate()
                .map(|(i, v)| (*v, doms[i][counters[i]].clone())),
        ));
        let mut i = 0;
        loop {
            if i == counters.len() {
                break 'outer;
            }
            counters[i] += 1;
            if counters[i] < doms[i].len() {
                break;
            }
            counters[i] = 0;
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::seed_tuple;
    use crate::template::TplTuple;
    use condep_core::fixtures::example_5_1_schema;
    use condep_model::{AttrId, RelId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn vh() -> VarRef {
        VarRef {
            rel: RelId(1),
            attr: AttrId(1),
            idx: 0,
        }
    }

    #[test]
    fn empty_variable_set_has_one_empty_valuation() {
        // "If V = ∅, then we assume that V_finattr(R) consists of a
        // single empty mapping."
        let schema = example_5_1_schema(true);
        let vals = all_valuations(&schema, &[]);
        assert_eq!(vals, vec![Valuation::empty()]);
        assert_eq!(valuation_space_size(&schema, &[]), 1);
    }

    #[test]
    fn all_valuations_enumerate_the_product() {
        let schema = example_5_1_schema(true); // dom(H) = {0, 1}
        let vals = all_valuations(&schema, &[vh()]);
        assert_eq!(vals.len(), 2);
        assert_eq!(valuation_space_size(&schema, &[vh()]), 2);
        let assigned: Vec<&Value> = vals.iter().map(|v| v.get(vh()).unwrap()).collect();
        assert!(assigned.contains(&&Value::str("0")));
        assert!(assigned.contains(&&Value::str("1")));
    }

    #[test]
    fn random_valuation_draws_from_the_domain() {
        let schema = example_5_1_schema(true);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let v = random_valuation(&schema, &[vh()], &mut rng);
            let val = v.get(vh()).unwrap();
            assert!(val == &Value::str("0") || val == &Value::str("1"));
        }
    }

    #[test]
    fn apply_substitutes_in_the_template() {
        let schema = example_5_1_schema(true);
        let mut db = TemplateDb::empty(schema.clone());
        let r2 = schema.rel_id("r2").unwrap();
        seed_tuple(&mut db, r2);
        let rho = Valuation::from_pairs([(vh(), Value::str("1"))]);
        rho.apply(&mut db);
        let t: &TplTuple = &db.relation(r2)[0];
        assert_eq!(t.get(AttrId(1)), &crate::ops::constant("1"));
        // The infinite-domain G variable is untouched.
        assert!(t.get(AttrId(0)).is_var());
        assert!(db.finite_variables().is_empty());
    }
}
