//! The chase engine: chasing sequences to termination.
//!
//! A chasing sequence applies `FD(φ)`/`IND(ψ)` operations until no
//! operation changes the template (the chase is *defined*, and the
//! result is `chase(D, Σ)`), or an `FD(φ)` hits two distinct constants /
//! the tuple cap is exceeded (the chase is *undefined*).
//!
//! The engine always drives CFDs to a local fixpoint before attempting
//! the next IND step — this implements the "improvement" of Section 5.2
//! (procedure `CFD_Checking` interleaved with the IND chase), and is
//! also the natural strategy: FD repairs only merge values, so doing
//! them eagerly keeps the template small.

use crate::config::ChaseConfig;
use crate::ops::{fd_step, ind_step, OpFailure};
use crate::template::{TemplateDb, TplValue, VarRef};
use crate::validator::ChaseValidator;
use condep_cfd::NormalCfd;
use condep_core::NormalCind;
use condep_model::{PValue, Value};
use rand::Rng;

/// Why a chase ended undefined.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum UndefinedReason {
    /// An `FD(φ)` application was undefined (two distinct constants).
    FdConflict {
        /// Rendered conflicting constants.
        left: String,
        /// Rendered conflicting constants.
        right: String,
    },
    /// A relation exceeded the tuple cap `T`.
    TupleCapExceeded,
    /// The engineering step budget was exhausted.
    StepBudgetExhausted,
}

/// Result of a chase run.
#[derive(Clone, Debug)]
pub enum ChaseOutcome {
    /// The chase terminated at a fixpoint; the result is `chase(D, Σ)`.
    Defined(TemplateDb),
    /// The chase is undefined.
    Undefined(UndefinedReason),
}

impl ChaseOutcome {
    /// Is the chase defined?
    pub fn is_defined(&self) -> bool {
        matches!(self, ChaseOutcome::Defined(_))
    }

    /// The resulting template, if defined.
    pub fn template(&self) -> Option<&TemplateDb> {
        match self {
            ChaseOutcome::Defined(db) => Some(db),
            ChaseOutcome::Undefined(_) => None,
        }
    }
}

impl From<OpFailure> for UndefinedReason {
    fn from(f: OpFailure) -> Self {
        match f {
            OpFailure::FdConflict { left, right } => UndefinedReason::FdConflict { left, right },
            OpFailure::TupleCapExceeded => UndefinedReason::TupleCapExceeded,
        }
    }
}

/// Drives the CFDs of `Σ` to a fixpoint on `db`. Returns the number of
/// repair steps, or the failure that made the chase undefined.
pub fn chase_cfds(
    db: &mut TemplateDb,
    cfds: &[NormalCfd],
    cfg: &ChaseConfig,
) -> Result<usize, UndefinedReason> {
    let mut steps = 0usize;
    loop {
        let mut changed = false;
        for cfd in cfds {
            while fd_step(db, cfd).map_err(UndefinedReason::from)? {
                steps += 1;
                changed = true;
                if steps > cfg.max_steps {
                    return Err(UndefinedReason::StepBudgetExhausted);
                }
            }
        }
        if !changed {
            return Ok(steps);
        }
    }
}

/// Borrow-based overlay: views `cell` with `var := cand` substituted,
/// without cloning any cell.
fn overlaid<'a>(cell: &'a TplValue, var: VarRef, cand: &'a TplValue) -> &'a TplValue {
    match cell {
        TplValue::Var(w) if *w == var => cand,
        other => other,
    }
}

/// Would substituting `candidate` for `var` immediately violate a CFD?
/// Checks both the single-tuple reading (a matched premise forcing a
/// different constant) and the pair reading against the other tuples of
/// each relation the variable occurs in (`IND(ψ)` copies variables
/// across relations, so carriers are not confined to `var.rel`).
/// Agreement involving a variable is never a conflict — `FD(φ)` would
/// repair it by substitution. Deeper cross-tuple cascades are left to
/// the following CFD fixpoint.
///
/// This is the **reference** quadratic rescan: the engine itself routes
/// candidate checks through the incremental
/// [`crate::validator::ChaseValidator`], and the differential tests
/// assert the two agree decision-for-decision.
pub fn candidate_conflicts(
    db: &TemplateDb,
    cfds: &[NormalCfd],
    var: VarRef,
    candidate: &Value,
) -> bool {
    let cand = TplValue::Const(candidate.clone());
    for rel_idx in 0..db.schema().len() {
        let rel = condep_model::RelId(rel_idx as u32);
        let rel_cfds: Vec<&NormalCfd> = cfds.iter().filter(|c| c.rel() == rel).collect();
        if rel_cfds.is_empty() {
            continue;
        }
        let tuples = db.relation(rel);
        for (i, t) in tuples.iter().enumerate() {
            if !t.cells().iter().any(|c| c == &TplValue::Var(var)) {
                continue;
            }
            for cfd in &rel_cfds {
                // Single-tuple reading.
                if let PValue::Const(forced) = cfd.rhs_pat() {
                    let matched = cfd
                        .lhs()
                        .iter()
                        .zip(cfd.lhs_pat().cells())
                        .all(|(a, cell)| match cell {
                            PValue::Any => true,
                            PValue::Const(c) => matches!(
                                overlaid(t.get(*a), var, &cand),
                                TplValue::Const(v) if v == c
                            ),
                        });
                    if matched {
                        if let TplValue::Const(existing) = overlaid(t.get(cfd.rhs()), var, &cand) {
                            if existing != forced {
                                return true;
                            }
                        }
                    }
                }
                // Pair reading against every other tuple.
                for (j, t2) in tuples.iter().enumerate() {
                    if j == i {
                        continue;
                    }
                    let premise = cfd
                        .lhs()
                        .iter()
                        .zip(cfd.lhs_pat().cells())
                        .all(|(a, cell)| {
                            let v1 = overlaid(t.get(*a), var, &cand);
                            let v2 = overlaid(t2.get(*a), var, &cand);
                            if v1 != v2 {
                                return false;
                            }
                            match cell {
                                PValue::Any => true,
                                PValue::Const(c) => {
                                    matches!(v1, TplValue::Const(v) if v == c)
                                }
                            }
                        });
                    if !premise {
                        continue;
                    }
                    if let (TplValue::Const(c1), TplValue::Const(c2)) = (
                        overlaid(t.get(cfd.rhs()), var, &cand),
                        overlaid(t2.get(cfd.rhs()), var, &cand),
                    ) {
                        if c1 != c2 {
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

/// Instantiates every remaining finite-domain variable — procedure
/// `CFD_Checking`'s "instantiating variables in terms of constants in
/// the pattern tuples when possible": candidates are tried in the order
///
/// 1. constants appearing as RHS-pattern values on this attribute (these
///    are the values the CFDs would force anyway, so picking them keeps
///    later premises consistent),
/// 2. the rest of the domain (randomly rotated),
///
/// skipping any candidate that immediately fires a conflicting premise.
/// Falls back to a random value when every candidate conflicts (the
/// subsequent CFD fixpoint then reports the chase undefined, which is
/// the correct signal). CIND `Yp` constants targeting the attribute are
/// hints too: future forced tuples will carry them, and agreeing early
/// avoids pair conflicts.
///
/// Candidate acceptance/rejection goes through one persistent
/// [`ChaseValidator`] (built once per pass): each trial overlays the
/// substitution as deltas, probes only the touched key groups, and
/// retracts on rejection — no template rescan per candidate.
fn instantiate_finite_vars<R: Rng>(
    db: &mut TemplateDb,
    cfds: &[NormalCfd],
    cinds: &[NormalCind],
    rng: &mut R,
) {
    if db.finite_variables().is_empty() {
        return;
    }
    let mut checker = ChaseValidator::new(db, cfds);
    loop {
        let vars = db.finite_variables();
        let Some(var) = vars.first().copied() else {
            return;
        };
        let dom: Vec<Value> = db
            .schema()
            .relation(var.rel)
            .ok()
            .and_then(|rs| rs.attribute(var.attr).ok().map(|a| a.domain().clone()))
            .and_then(|d| d.values().map(<[Value]>::to_vec))
            .unwrap_or_default();
        if dom.is_empty() {
            return; // defensive: finite vars always have domains
        }
        // Pattern-tuple hints: RHS constants targeting this attribute,
        // from CFD conclusions and CIND Yp patterns alike.
        let hints: Vec<&Value> = cfds
            .iter()
            .filter(|c| c.rel() == var.rel && c.rhs() == var.attr)
            .filter_map(|c| c.rhs_pat().as_const())
            .chain(
                cinds
                    .iter()
                    .filter(|c| c.rhs_rel() == var.rel)
                    .flat_map(|c| c.yp().iter())
                    .filter(|(a, _)| *a == var.attr)
                    .map(|(_, v)| v),
            )
            .filter(|v| dom.contains(v))
            .collect();
        let start = rng.gen_range(0..dom.len());
        let mut candidates = hints
            .into_iter()
            .chain((0..dom.len()).map(|i| &dom[(start + i) % dom.len()]));
        // `try_instantiate` commits the winning candidate into the
        // checker; the fallback is forced in unconditionally.
        let pick = match candidates.find(|cand| checker.try_instantiate(var, cand)) {
            Some(v) => v.clone(),
            None => {
                let v = dom[start].clone();
                checker.force_instantiate(var, &v);
                v
            }
        };
        db.substitute(var, &TplValue::Const(pick));
    }
}

/// Runs the full chase of `db` with `Σ = cfds ∪ cinds` to termination.
///
/// This implements the **improved** instantiated chase of Section 5.2
/// ("This is the algorithm we have implemented"): new tuples are created
/// with pool variables everywhere, the CFD fixpoint then pins whatever
/// the patterns force, and only the *remaining* finite-domain variables
/// are instantiated — constraint-aware, preferring values that violate
/// no pattern (followed by another CFD fixpoint, since fresh constants
/// can fire new premises). Instantiating eagerly at tuple-creation time
/// — the naive reading — loses accuracy badly: a random pick races the
/// value the CFDs would have forced.
pub fn chase<R: Rng>(
    mut db: TemplateDb,
    cfds: &[NormalCfd],
    cinds: &[NormalCind],
    cfg: &ChaseConfig,
    rng: &mut R,
) -> ChaseOutcome {
    let mut steps = 0usize;
    // IND steps always create pool variables; instantiation of finite
    // fields is deferred until after the CFD fixpoint.
    let ind_cfg = ChaseConfig {
        instantiate_finite: false,
        ..*cfg
    };
    // Initial CFD fixpoint + instantiation (covers the seed tuple).
    match chase_cfds(&mut db, cfds, cfg) {
        Ok(s) => steps += s,
        Err(r) => return ChaseOutcome::Undefined(r),
    }
    if cfg.instantiate_finite {
        instantiate_finite_vars(&mut db, cfds, cinds, rng);
        match chase_cfds(&mut db, cfds, cfg) {
            Ok(s) => steps += s,
            Err(r) => return ChaseOutcome::Undefined(r),
        }
    }
    loop {
        let mut changed = false;
        for cind in cinds {
            match ind_step(&mut db, cind, &ind_cfg, rng) {
                Ok(false) => {}
                Ok(true) => {
                    steps += 1;
                    changed = true;
                    // Interleaved CFD fixpoint (procedure CFD_Checking).
                    match chase_cfds(&mut db, cfds, cfg) {
                        Ok(s) => steps += s,
                        Err(r) => return ChaseOutcome::Undefined(r),
                    }
                    // Constraint-aware instantiation of the finite
                    // variables the fixpoint left open, then
                    // re-propagate.
                    if cfg.instantiate_finite {
                        instantiate_finite_vars(&mut db, cfds, cinds, rng);
                        match chase_cfds(&mut db, cfds, cfg) {
                            Ok(s) => steps += s,
                            Err(r) => return ChaseOutcome::Undefined(r),
                        }
                    }
                }
                Err(f) => return ChaseOutcome::Undefined(f.into()),
            }
            if steps > cfg.max_steps {
                return ChaseOutcome::Undefined(UndefinedReason::StepBudgetExhausted);
            }
        }
        if !changed {
            return ChaseOutcome::Defined(db);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{constant, seed_tuple};
    use crate::valuation::{all_valuations, Valuation};
    use condep_core::fixtures::{example_5_1_cinds, example_5_1_schema};
    use condep_model::{prow, AttrId, PValue, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn example_5_1_cfds(schema: &condep_model::Schema) -> Vec<NormalCfd> {
        vec![
            // φ1 = (R1: E → F, (_ || _))
            NormalCfd::parse(schema, "r1", &["e"], prow![_], "f", PValue::Any).unwrap(),
            // φ2 = (R2: H → G, (_ || c))
            NormalCfd::parse(schema, "r2", &["h"], prow![_], "g", PValue::constant("c")).unwrap(),
        ]
    }

    #[test]
    fn example_5_1_chase_is_defined_and_matches_the_paper() {
        // Paper: starting from D = {(vE1, vE2)} in R1, the chase adds
        // (vE1, vH1) to R2, then FD(φ2) makes vE1 = c, ending with
        //   R1: (c, vF1)    R2: (c, vH1).
        let schema = example_5_1_schema(false);
        let cfds = example_5_1_cfds(&schema);
        let cinds = example_5_1_cinds(&schema);
        let mut db = TemplateDb::empty(schema.clone());
        let r1 = schema.rel_id("r1").unwrap();
        let r2 = schema.rel_id("r2").unwrap();
        seed_tuple(&mut db, r1);
        let outcome = chase(db, &cfds, &cinds, &ChaseConfig::plain(), &mut rng());
        let result = outcome.template().expect("chase must be defined");
        assert_eq!(result.relation(r1).len(), 1);
        assert_eq!(result.relation(r2).len(), 1);
        // E and G both became the constant c.
        assert_eq!(result.relation(r1)[0].get(AttrId(0)), &constant("c"));
        assert_eq!(result.relation(r2)[0].get(AttrId(0)), &constant("c"));
        // F and H remain variables.
        assert!(result.relation(r1)[0].get(AttrId(1)).is_var());
        assert!(result.relation(r2)[0].get(AttrId(1)).is_var());
        // The defined chase certifies consistency: instantiate fresh and
        // check all of Σ in one batched sweep.
        let consts: Vec<Value> = vec![Value::str("a"), Value::str("b"), Value::str("c")];
        let concrete = result.instantiate_fresh(&consts).unwrap();
        let sigma = condep_validate::Validator::new(cfds.clone(), cinds.clone());
        assert!(sigma.satisfies(&concrete));
    }

    #[test]
    fn example_5_3_instantiated_chase_with_valuation_rho1() {
        // dom(H) = {0, 1}; seed R2 with (vG1, vH1); ρ1 maps vH1 to 0.
        // Example 5.3: the instantiated chase is defined for ρ1 and ends
        // with R1 ⊇ {(c, a)}, R2 ⊇ {(c, 0)} (database D4). The lazy
        // instantiation draws the H field of chase-created tuples at
        // random, so individual runs may legitimately be undefined —
        // exactly why RandomChecking retries; some seed must reproduce
        // the paper's outcome.
        let schema = example_5_1_schema(true);
        let cfds = example_5_1_cfds(&schema);
        let cinds = example_5_1_cinds(&schema);
        let r1 = schema.rel_id("r1").unwrap();
        let r2 = schema.rel_id("r2").unwrap();
        let mut seed_db = TemplateDb::empty(schema.clone());
        seed_tuple(&mut seed_db, r2);
        let finite_vars = seed_db.finite_variables();
        assert_eq!(finite_vars.len(), 1);
        let rho1 = Valuation::from_pairs([(finite_vars[0], Value::str("0"))]);
        rho1.apply(&mut seed_db);

        let defined = (0..20u64).find_map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            match chase(
                seed_db.clone(),
                &cfds,
                &cinds,
                &ChaseConfig::default(),
                &mut rng,
            ) {
                ChaseOutcome::Defined(t) => Some(t),
                ChaseOutcome::Undefined(_) => None,
            }
        });
        let result = defined.expect("some run reproduces Example 5.3's D4");
        // The D4 tuples are present: R2 ∋ (c, 0), R1 ∋ (c, a).
        assert!(result
            .relation(r2)
            .iter()
            .any(|t| t.get(AttrId(0)) == &constant("c") && t.get(AttrId(1)) == &constant("0")));
        assert!(result
            .relation(r1)
            .iter()
            .any(|t| t.get(AttrId(0)) == &constant("c") && t.get(AttrId(1)) == &constant("a")));
        // And the defined result certifies consistency — one batched
        // sweep over Σ instead of per-constraint rescans.
        let consts: Vec<Value> = ["a", "b", "c", "d", "0", "1"]
            .iter()
            .map(Value::str)
            .collect();
        let concrete = result.instantiate_fresh(&consts).unwrap();
        let sigma = condep_validate::Validator::new(cfds.clone(), cinds.clone());
        assert!(sigma.satisfies(&concrete));
    }

    #[test]
    fn conflicting_cfds_make_the_chase_undefined() {
        // Two unconditional constant CFDs on the same attribute clash.
        let schema = example_5_1_schema(false);
        let c1 = NormalCfd::parse(&schema, "r1", &[], prow![], "f", PValue::constant("x")).unwrap();
        let c2 = NormalCfd::parse(&schema, "r1", &[], prow![], "f", PValue::constant("y")).unwrap();
        let mut db = TemplateDb::empty(schema.clone());
        seed_tuple(&mut db, schema.rel_id("r1").unwrap());
        let outcome = chase(db, &[c1, c2], &[], &ChaseConfig::default(), &mut rng());
        assert!(matches!(
            outcome,
            ChaseOutcome::Undefined(UndefinedReason::FdConflict { .. })
        ));
    }

    #[test]
    fn tuple_cap_makes_the_chase_undefined() {
        let schema = example_5_1_schema(false);
        let cinds = example_5_1_cinds(&schema);
        let mut db = TemplateDb::empty(schema.clone());
        seed_tuple(&mut db, schema.rel_id("r1").unwrap());
        let cfg = ChaseConfig {
            tuple_cap: 0,
            ..ChaseConfig::plain()
        };
        let outcome = chase(db, &[], &cinds, &cfg, &mut rng());
        assert!(matches!(
            outcome,
            ChaseOutcome::Undefined(UndefinedReason::TupleCapExceeded)
        ));
    }

    #[test]
    fn chase_terminates_on_cyclic_inds() {
        // R1[E] ⊆ R2[G] and R2[G] ⊆ R1[E]: bounded pools keep the chase
        // finite (the termination claim of Section 5.1).
        let schema = example_5_1_schema(false);
        let forward = NormalCind::parse(&schema, "r1", &["e"], &[], "r2", &["g"], &[]).unwrap();
        let backward = NormalCind::parse(&schema, "r2", &["g"], &[], "r1", &["e"], &[]).unwrap();
        let mut db = TemplateDb::empty(schema.clone());
        seed_tuple(&mut db, schema.rel_id("r1").unwrap());
        let outcome = chase(
            db,
            &[],
            &[forward, backward],
            &ChaseConfig::plain(),
            &mut rng(),
        );
        assert!(outcome.is_defined());
    }

    #[test]
    fn all_valuations_eventually_find_the_defined_chase() {
        // Exhaustive analogue of RandomChecking's sampling: with
        // dom(H) = {0, 1}, at least one valuation yields a defined chase.
        let schema = example_5_1_schema(true);
        let cfds = example_5_1_cfds(&schema);
        let cinds = example_5_1_cinds(&schema);
        let mut seed_db = TemplateDb::empty(schema.clone());
        seed_tuple(&mut seed_db, schema.rel_id("r2").unwrap());
        let vars = seed_db.finite_variables();
        let defined = all_valuations(&schema, &vars).into_iter().any(|rho| {
            let mut db = seed_db.clone();
            rho.apply(&mut db);
            chase(db, &cfds, &cinds, &ChaseConfig::default(), &mut rng()).is_defined()
        });
        assert!(defined);
    }
}
