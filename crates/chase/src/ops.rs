//! The chase operations `IND(ψ)` and `FD(φ)` of Section 5.1.

use crate::config::ChaseConfig;
use crate::template::{TemplateDb, TplTuple, TplValue, VarRef};
use condep_cfd::NormalCfd;
use condep_core::NormalCind;
use condep_model::{AttrId, PValue, Value};
use rand::Rng;

/// Why a chase operation rendered the chase undefined.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OpFailure {
    /// `FD(φ)` tried to equate two distinct constants.
    FdConflict {
        /// Rendered left constant.
        left: String,
        /// Rendered right constant.
        right: String,
    },
    /// The tuple cap `T` was exceeded (Section 5.2's simplification (b)).
    TupleCapExceeded,
}

/// Does the template tuple match `tp[X]` of a CFD? Variables match only
/// wildcards.
fn matches_lhs(t: &TplTuple, cfd: &NormalCfd) -> bool {
    cfd.lhs()
        .iter()
        .zip(cfd.lhs_pat().cells())
        .all(|(a, p)| match p {
            PValue::Any => true,
            PValue::Const(c) => t.get(*a) == &TplValue::Const(c.clone()),
        })
}

/// One application of `FD(φ)`: finds a violating pair (or single tuple)
/// and repairs it by substitution. Returns `Ok(true)` if the template
/// changed, `Ok(false)` at fixpoint, `Err` when undefined.
pub fn fd_step(db: &mut TemplateDb, cfd: &NormalCfd) -> Result<bool, OpFailure> {
    let rel = cfd.rel();
    let tuples = db.relation(rel);
    // Find one violation; apply; let the engine loop.
    for i in 0..tuples.len() {
        let t1 = &tuples[i];
        if !matches_lhs(t1, cfd) {
            continue;
        }
        let a = cfd.rhs();
        // Single-tuple reading: a constant RHS pattern must hold.
        if let PValue::Const(c) = cfd.rhs_pat() {
            match t1.get(a).clone() {
                TplValue::Const(b) if &b == c => {}
                TplValue::Const(b) => {
                    return Err(OpFailure::FdConflict {
                        left: b.to_string(),
                        right: c.to_string(),
                    });
                }
                TplValue::Var(v) => {
                    db.substitute(v, &TplValue::Const(c.clone()));
                    return Ok(true);
                }
            }
        }
        // Pair reading: agreement on A for tuples agreeing on X.
        #[allow(clippy::needless_range_loop)]
        for j in (i + 1)..tuples.len() {
            let t2 = &tuples[j];
            if !matches_lhs(t2, cfd) {
                continue;
            }
            if cfd.lhs().iter().any(|x| t1.get(*x) != t2.get(*x)) {
                continue;
            }
            let (va, vb) = (t1.get(a).clone(), t2.get(a).clone());
            if va == vb {
                continue;
            }
            // The paper's order: substitute the smaller side (variables
            // precede constants) by the larger.
            return match (va, vb) {
                (TplValue::Const(c1), TplValue::Const(c2)) => Err(OpFailure::FdConflict {
                    left: c1.to_string(),
                    right: c2.to_string(),
                }),
                (TplValue::Var(v), other) | (other, TplValue::Var(v)) => {
                    // `Var(v)` sorts below `other` whenever `other` is a
                    // constant; for two variables pick the smaller as the
                    // one to replace.
                    let (replace, with) = match &other {
                        TplValue::Var(w) if *w < v => (*w, TplValue::Var(v)),
                        _ => (v, other),
                    };
                    db.substitute(replace, &with);
                    Ok(true)
                }
            };
        }
    }
    Ok(false)
}

/// Picks the value for an unconstrained field of a new tuple: a random
/// pool variable, or (under `chaseI`) a random domain constant for
/// finite-domain attributes.
fn free_field<R: Rng>(
    db: &TemplateDb,
    rel: condep_model::RelId,
    attr: AttrId,
    cfg: &ChaseConfig,
    rng: &mut R,
) -> TplValue {
    if cfg.instantiate_finite {
        if let Ok(rs) = db.schema().relation(rel) {
            if let Ok(a) = rs.attribute(attr) {
                if let Some(values) = a.domain().values() {
                    let k = rng.gen_range(0..values.len());
                    return TplValue::Const(values[k].clone());
                }
            }
        }
    }
    let idx = rng.gen_range(0..cfg.pool_size);
    TplValue::Var(VarRef { rel, attr, idx })
}

/// The determined cells of the target tuple a CIND forces for one
/// triggered source tuple (the pattern-instantiation core of `IND(ψ)`):
/// each `Y` attribute copies the source's matching `X` cell (rule CIND2's
/// permutation semantics) and each `Yp` attribute takes its pattern
/// constant. `source_cell` reads the source tuple — template engines pass
/// template cells, repair engines pass concrete values.
pub fn forced_cells<F>(cind: &NormalCind, source_cell: F) -> Vec<(AttrId, TplValue)>
where
    F: Fn(AttrId) -> TplValue,
{
    let mut determined: Vec<(AttrId, TplValue)> = Vec::new();
    for (xa, ya) in cind.x().iter().zip(cind.y()) {
        determined.push((*ya, source_cell(*xa)));
    }
    for (a, v) in cind.yp() {
        determined.push((*a, TplValue::Const(v.clone())));
    }
    determined
}

/// The target tuple a CIND forces for a **concrete** source tuple, as a
/// template: the determined cells ([`forced_cells`]) become constants,
/// every other attribute a fresh variable. This is the chase machinery a
/// repair engine reuses for its insertion candidate — instantiate the
/// variables (finite domains from their value lists, infinite ones via
/// [`condep_model::Domain::fresh_value`]) to obtain the tuple to insert.
pub fn forced_target_template(
    schema: &condep_model::Schema,
    cind: &NormalCind,
    source: &condep_model::Tuple,
) -> TplTuple {
    let target_rel = cind.rhs_rel();
    let arity = schema.relation(target_rel).map(|r| r.arity()).unwrap_or(0);
    let determined = forced_cells(cind, |a| TplValue::Const(source[a].clone()));
    let mut cells: Vec<TplValue> = (0..arity)
        .map(|i| {
            TplValue::Var(VarRef {
                rel: target_rel,
                attr: AttrId(i as u32),
                idx: 0,
            })
        })
        .collect();
    for (a, v) in determined {
        cells[a.index()] = v;
    }
    TplTuple(cells)
}

/// One application of `IND(ψ)`: finds a triggered source tuple without a
/// target witness and adds the forced tuple. Returns `Ok(true)` if a
/// tuple was added, `Ok(false)` at fixpoint, `Err` when the tuple cap is
/// exceeded.
pub fn ind_step<R: Rng>(
    db: &mut TemplateDb,
    cind: &NormalCind,
    cfg: &ChaseConfig,
    rng: &mut R,
) -> Result<bool, OpFailure> {
    let source_rel = cind.lhs_rel();
    let target_rel = cind.rhs_rel();
    // Find a triggered tuple lacking a witness.
    let mut forced: Option<Vec<(AttrId, TplValue)>> = None;
    'search: for t1 in db.relation(source_rel) {
        if !t1.matches_consts(cind.xp()) {
            continue;
        }
        for t2 in db.relation(target_rel) {
            let copies_match = cind
                .x()
                .iter()
                .zip(cind.y())
                .all(|(xa, ya)| t1.get(*xa) == t2.get(*ya));
            if copies_match && t2.matches_consts(cind.yp()) {
                continue 'search; // witnessed
            }
        }
        forced = Some(forced_cells(cind, |a| t1.get(a).clone()));
        break;
    }
    let Some(determined) = forced else {
        return Ok(false);
    };
    if db.relation(target_rel).len() >= cfg.tuple_cap {
        return Err(OpFailure::TupleCapExceeded);
    }
    let arity = db
        .schema()
        .relation(target_rel)
        .map(|r| r.arity())
        .unwrap_or(0);
    let mut cells: Vec<Option<TplValue>> = vec![None; arity];
    for (a, v) in determined {
        cells[a.index()] = Some(v);
    }
    let cells: Vec<TplValue> = cells
        .into_iter()
        .enumerate()
        .map(|(i, c)| c.unwrap_or_else(|| free_field(db, target_rel, AttrId(i as u32), cfg, rng)))
        .collect();
    db.insert(target_rel, TplTuple(cells));
    Ok(true)
}

/// Seeds the chase: a single tuple of fresh pool variables in `rel`
/// (line 1 of Algorithm RandomChecking).
pub fn seed_tuple(db: &mut TemplateDb, rel: condep_model::RelId) {
    seed_tuple_with(db, rel, &[]);
}

/// Seeds the chase with a tuple whose listed fields are pinned to
/// constants (pool variables everywhere else) — used to build templates
/// that trigger a specific CIND, e.g. by the implication refuter.
pub fn seed_tuple_with(db: &mut TemplateDb, rel: condep_model::RelId, pinned: &[(AttrId, Value)]) {
    let arity = db.schema().relation(rel).map(|r| r.arity()).unwrap_or(0);
    let cells = (0..arity)
        .map(|i| {
            let attr = AttrId(i as u32);
            match pinned.iter().find(|(a, _)| *a == attr) {
                Some((_, v)) => TplValue::Const(v.clone()),
                None => TplValue::Var(VarRef { rel, attr, idx: 0 }),
            }
        })
        .collect();
    db.insert(rel, TplTuple(cells));
}

/// Convenience for tests: a ground template cell.
pub fn constant(v: impl Into<Value>) -> TplValue {
    TplValue::Const(v.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_core::fixtures::{example_5_1_cinds, example_5_1_schema};
    use condep_model::{prow, RelId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn ind_step_adds_the_forced_tuple() {
        // Example 5.1: seeding R1 with (vE1, vE2) and applying IND(ψ1)
        // adds a tuple (vE1, ·) to R2.
        let schema = example_5_1_schema(false);
        let cinds = example_5_1_cinds(&schema);
        let mut db = TemplateDb::empty(schema.clone());
        let r1 = schema.rel_id("r1").unwrap();
        let r2 = schema.rel_id("r2").unwrap();
        seed_tuple(&mut db, r1);
        let cfg = ChaseConfig::plain();
        let changed = ind_step(&mut db, &cinds[0], &cfg, &mut rng()).unwrap();
        assert!(changed);
        assert_eq!(db.relation(r2).len(), 1);
        // The G column copies R1's E variable.
        let e_cell = db.relation(r1)[0].get(AttrId(0)).clone();
        assert_eq!(db.relation(r2)[0].get(AttrId(0)), &e_cell);
        // Re-applying is a no-op: the witness now exists.
        assert!(!ind_step(&mut db, &cinds[0], &cfg, &mut rng()).unwrap());
    }

    #[test]
    fn ind_step_respects_the_tuple_cap() {
        let schema = example_5_1_schema(false);
        let cinds = example_5_1_cinds(&schema);
        let mut db = TemplateDb::empty(schema.clone());
        let r1 = schema.rel_id("r1").unwrap();
        seed_tuple(&mut db, r1);
        let cfg = ChaseConfig {
            tuple_cap: 0,
            ..ChaseConfig::plain()
        };
        assert_eq!(
            ind_step(&mut db, &cinds[0], &cfg, &mut rng()),
            Err(OpFailure::TupleCapExceeded)
        );
    }

    #[test]
    fn fd_step_substitutes_variable_with_constant() {
        // Example 5.1: FD(φ2) = (R2: H → G, (_ || c)) turns vG1 into c.
        let schema = example_5_1_schema(false);
        let mut db = TemplateDb::empty(schema.clone());
        let r2 = schema.rel_id("r2").unwrap();
        seed_tuple(&mut db, r2);
        let phi2 =
            NormalCfd::parse(&schema, "r2", &["h"], prow![_], "g", PValue::constant("c")).unwrap();
        assert!(fd_step(&mut db, &phi2).unwrap());
        assert_eq!(db.relation(r2)[0].get(AttrId(0)), &constant("c"));
        // Fixpoint afterwards.
        assert!(!fd_step(&mut db, &phi2).unwrap());
    }

    #[test]
    fn fd_step_conflicting_constants_is_undefined() {
        let schema = example_5_1_schema(false);
        let mut db = TemplateDb::empty(schema.clone());
        let r2 = schema.rel_id("r2").unwrap();
        db.insert(r2, TplTuple(vec![constant("wrong"), constant("k")]));
        let phi =
            NormalCfd::parse(&schema, "r2", &["h"], prow![_], "g", PValue::constant("c")).unwrap();
        assert!(matches!(
            fd_step(&mut db, &phi),
            Err(OpFailure::FdConflict { .. })
        ));
    }

    #[test]
    fn fd_step_merges_pairs_on_wildcard_rhs() {
        let schema = example_5_1_schema(false);
        let mut db = TemplateDb::empty(schema.clone());
        let r2 = schema.rel_id("r2").unwrap();
        let v0 = VarRef {
            rel: r2,
            attr: AttrId(0),
            idx: 0,
        };
        let v1 = VarRef {
            rel: r2,
            attr: AttrId(0),
            idx: 1,
        };
        db.insert(r2, TplTuple(vec![TplValue::Var(v0), constant("k")]));
        db.insert(r2, TplTuple(vec![TplValue::Var(v1), constant("k")]));
        // (R2: H → G, (_ || _)): same H forces same G.
        let fd = NormalCfd::parse(&schema, "r2", &["h"], prow![_], "g", PValue::Any).unwrap();
        assert!(fd_step(&mut db, &fd).unwrap());
        // The two tuples collapsed into one.
        assert_eq!(db.relation(r2).len(), 1);
        // Pair conflict with two constants is undefined (iterate to the
        // failing application: earlier variable merges may come first).
        db.insert(r2, TplTuple(vec![constant("a"), constant("k")]));
        db.insert(r2, TplTuple(vec![constant("b"), constant("k")]));
        let outcome = loop {
            match fd_step(&mut db, &fd) {
                Ok(true) => continue,
                other => break other,
            }
        };
        assert!(matches!(outcome, Err(OpFailure::FdConflict { .. })));
    }

    #[test]
    fn instantiated_chase_draws_finite_constants() {
        // With dom(H) = {0, 1} and chaseI, the fresh H field of the
        // forced R2 tuple is a constant from the domain, not a variable.
        let schema = example_5_1_schema(true);
        let cinds = example_5_1_cinds(&schema);
        let mut db = TemplateDb::empty(schema.clone());
        let r1 = schema.rel_id("r1").unwrap();
        let r2 = schema.rel_id("r2").unwrap();
        seed_tuple(&mut db, r1);
        let cfg = ChaseConfig::default(); // instantiate_finite = true
        ind_step(&mut db, &cinds[0], &cfg, &mut rng()).unwrap();
        let h_cell = db.relation(r2)[0].get(AttrId(1));
        match h_cell {
            TplValue::Const(v) => {
                assert!(v == &Value::str("0") || v == &Value::str("1"));
            }
            TplValue::Var(_) => panic!("chaseI must instantiate finite fields"),
        }
    }

    #[test]
    fn triggered_only_by_exact_constants() {
        // ψ2 triggers on H = 0; a variable H does not trigger (v ≭ a).
        let schema = example_5_1_schema(false);
        let cinds = example_5_1_cinds(&schema);
        let mut db = TemplateDb::empty(schema.clone());
        let r2 = schema.rel_id("r2").unwrap();
        seed_tuple(&mut db, r2);
        let cfg = ChaseConfig::plain();
        assert!(!ind_step(&mut db, &cinds[1], &cfg, &mut rng()).unwrap());
        // Substitute H := 0 — now it triggers.
        let vh = VarRef {
            rel: r2,
            attr: AttrId(1),
            idx: 0,
        };
        db.substitute(vh, &constant("0"));
        assert!(ind_step(&mut db, &cinds[1], &cfg, &mut rng()).unwrap());
        let r1 = schema.rel_id("r1").unwrap();
        assert_eq!(db.relation(r1).len(), 1);
        assert_eq!(db.relation(r1)[0].get(AttrId(1)), &constant("a"));
    }

    #[test]
    fn seed_tuple_uses_pool_index_zero() {
        let schema = example_5_1_schema(false);
        let mut db = TemplateDb::empty(schema.clone());
        seed_tuple(&mut db, RelId(0));
        let t = &db.relation(RelId(0))[0];
        for (i, cell) in t.cells().iter().enumerate() {
            assert_eq!(
                cell,
                &TplValue::Var(VarRef {
                    rel: RelId(0),
                    attr: AttrId(i as u32),
                    idx: 0
                })
            );
        }
    }
}
