//! Chase configuration — the knobs of Sections 5.1/5.2 and 6.

/// Parameters of the (instantiated) chase.
#[derive(Clone, Copy, Debug)]
pub struct ChaseConfig {
    /// `N` — the maximum size of each variable pool `var[A]`. The
    /// experiments found "N has a negligible impact on the accuracy" and
    /// fixed `N = 2` (Section 6).
    pub pool_size: u8,
    /// `T` — the maximum number of tuples per relation during the chase;
    /// exceeding it makes the chase undefined (Section 5.2's second
    /// simplification; 2K–4K in the experiments).
    pub tuple_cap: usize,
    /// The instantiated chase `chaseI`: draw finite-domain fields of
    /// newly created tuples from their domains instead of the pools
    /// (Section 5.2's first simplification).
    pub instantiate_finite: bool,
    /// Engineering safety net: overall step budget (the paper argues
    /// termination from the finite pools; the cap guards against
    /// pathological thrashing and is never hit in the experiments).
    pub max_steps: usize,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            pool_size: 2,
            tuple_cap: 2_000,
            instantiate_finite: true,
            max_steps: 1_000_000,
        }
    }
}

impl ChaseConfig {
    /// A configuration for plain (non-instantiated) chasing.
    pub fn plain() -> Self {
        ChaseConfig {
            instantiate_finite: false,
            ..ChaseConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = ChaseConfig::default();
        assert_eq!(c.pool_size, 2, "Section 6 sets N = 2");
        assert!(c.tuple_cap >= 2_000, "Section 6 uses T between 2K and 4K");
        assert!(c.instantiate_finite);
    }

    #[test]
    fn plain_disables_instantiation() {
        assert!(!ChaseConfig::plain().instantiate_finite);
    }
}
