//! Incremental (streaming) validation with deletions and retraction.
//!
//! A [`ValidatorStream`] owns a database plus the live group-by indexes
//! of a compiled [`Validator`] and maintains the **materialized
//! violation set** of the evolving database. Every mutation —
//! [`ValidatorStream::insert_tuple`], [`ValidatorStream::delete_tuple`],
//! [`ValidatorStream::update_tuple`] — returns a [`SigmaDelta`]: the
//! violations it *introduced* and the violations it *resolved*
//! (retraction), in time proportional to the constraint groups and key
//! groups the mutated tuple touches, never to the database.
//!
//! ## Invariant
//!
//! After every mutation, [`ValidatorStream::current_report`] equals
//! [`Validator::validate_sorted`] on the current database — the
//! equivalence oracle property-tested at the workspace root over random
//! insert/delete/update sequences.
//!
//! ## Delta semantics
//!
//! Deletion is swap-based ([`condep_model::Relation::remove`]): the last
//! tuple of the relation moves into the vacated position, reported as
//! [`SigmaDelta::moved`]. A consumer maintaining its own violation state
//! applies a delta as
//!
//! ```text
//! after = renumber(before − resolved, moved) + introduced
//! ```
//!
//! i.e. `resolved` is labeled with **pre-move** positions and
//! `introduced` with **post-move** positions. Wildcard-RHS pair
//! witnesses are group-structural (each conflicting tuple is witnessed
//! against the group's lowest position), so deleting or moving a group
//! member can relabel a group's pairs: those relabelings appear as
//! resolved+introduced pairs in the delta, keeping the net state exactly
//! equal to a fresh batch validation.
//!
//! ## Complexity contract
//!
//! * insert: `O(Σ groups on the relation + touched key-group sizes)`;
//! * delete: the same, plus `O(affected key-group sizes)` for pair
//!   recomputation in the deleted (and moved) tuple's groups;
//! * no full-relation scan, ever — the cost tracks the delta, not the
//!   database.

use crate::validator::{CfdGroup, CfdMember, SigmaReport, Validator};
use condep_cfd::{CfdDelta, CfdViolation};
use condep_core::{CindDelta, CindViolation};
use condep_model::fxhash::FxBuildHasher;
use condep_model::{
    AttrId, Database, Interner, ModelError, RelId, Relation, SymValue, Tuple, Value,
};
use condep_query::SymIndex;
use std::collections::HashSet;

/// One value-level database mutation, appliable through
/// [`ValidatorStream::apply`].
///
/// The value-level (rather than position-level) formulation is what a
/// repair engine wants: a planned fix stays valid across the swap
/// renumbering earlier fixes cause, and its inverse (see
/// [`Applied::revert`]) is again a `Mutation`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// Insert a tuple (a no-op when it is already present).
    Insert {
        /// The relation to insert into.
        rel: RelId,
        /// The arriving tuple.
        tuple: Tuple,
    },
    /// Delete a tuple by value (a no-op when it is absent).
    Delete {
        /// The relation to delete from.
        rel: RelId,
        /// The departing tuple.
        tuple: Tuple,
    },
    /// Replace `old` by `new` (a no-op when `old` is absent). When `new`
    /// already resides in the relation the update degenerates to a
    /// deletion of `old` — instances are sets, so the two tuples merge.
    Update {
        /// The relation to update in.
        rel: RelId,
        /// The tuple to replace.
        old: Tuple,
        /// Its replacement.
        new: Tuple,
    },
}

/// What one [`ValidatorStream::apply`] call did: the streamed deltas in
/// application order, plus the inverse mutation that
/// [`ValidatorStream::revert`] replays to restore the pre-mutation tuple
/// set — the retraction primitive repair engines build their
/// apply → inspect delta → keep-or-roll-back loop on. `revert` is `None`
/// exactly when the mutation was a no-op.
///
/// Reverting restores the database as a *set of tuples* (and therefore
/// the violation set up to position labels); dense positions may come
/// back permuted by the swap-based deletions involved.
#[derive(Clone, Debug)]
pub struct Applied {
    /// The streamed deltas, in application order.
    pub deltas: Vec<SigmaDelta>,
    /// The inverse mutation (`None` for a no-op).
    pub revert: Option<Mutation>,
}

impl Applied {
    /// Did the mutation change nothing at all?
    pub fn is_noop(&self) -> bool {
        self.revert.is_none()
    }

    /// Introduced-minus-resolved violation count across all deltas.
    pub fn net_change(&self) -> isize {
        self.deltas.iter().map(SigmaDelta::net_change).sum()
    }

    /// Total violations resolved across all deltas.
    pub fn resolved_count(&self) -> usize {
        self.deltas
            .iter()
            .map(|d| d.cfd.resolved.len() + d.cind.resolved.len())
            .sum()
    }

    /// Total violations introduced across all deltas.
    pub fn introduced_count(&self) -> usize {
        self.deltas
            .iter()
            .map(|d| d.cfd.introduced.len() + d.cind.introduced.len())
            .sum()
    }
}

/// A swap-based deletion moved the relation's last tuple: every
/// position-keyed view of `rel` must renumber `from` to `to`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MovedTuple {
    /// The relation the deletion happened in.
    pub rel: RelId,
    /// The moved tuple's old dense position (the previous `len() - 1`).
    pub from: usize,
    /// Its new dense position (the deleted tuple's old slot).
    pub to: usize,
}

/// Everything one mutation did to the violation set: introduced and
/// resolved violations per constraint kind, plus the position renumber a
/// swap-based deletion causes. See the module docs for the consumer
/// rule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SigmaDelta {
    /// The CFD half of the delta.
    pub cfd: CfdDelta,
    /// The CIND half of the delta.
    pub cind: CindDelta,
    /// Set when a swap-based deletion renumbered one tuple.
    pub moved: Option<MovedTuple>,
}

impl SigmaDelta {
    /// Did the mutation leave the violation set untouched — including
    /// its position labels? A delta with no introduced/resolved entries
    /// but a [`SigmaDelta::moved`] renumber is **not** quiet: a consumer
    /// skipping it would keep violations labeled with a position that no
    /// longer exists.
    pub fn is_quiet(&self) -> bool {
        self.cfd.is_quiet() && self.cind.is_quiet() && self.moved.is_none()
    }

    /// The introduced violations as a sorted report.
    pub fn introduced(&self) -> SigmaReport {
        let mut r = SigmaReport {
            cfd: self.cfd.introduced.clone(),
            cind: self.cind.introduced.clone(),
        };
        r.sort();
        r
    }

    /// The resolved violations as a sorted report.
    pub fn resolved(&self) -> SigmaReport {
        let mut r = SigmaReport {
            cfd: self.cfd.resolved.clone(),
            cind: self.cind.resolved.clone(),
        };
        r.sort();
        r
    }

    /// Introduced-minus-resolved violation count change.
    pub fn net_change(&self) -> isize {
        (self.cfd.introduced.len() + self.cind.introduced.len()) as isize
            - (self.cfd.resolved.len() + self.cind.resolved.len()) as isize
    }
}

/// A validator with materialized state for one evolving database.
#[derive(Clone, Debug)]
pub struct ValidatorStream {
    validator: Validator,
    db: Database,
    interner: Interner,
    /// One live index per CFD group (keyed by the group's sorted LHS).
    cfd_indexes: Vec<SymIndex>,
    /// One live filtered target index per CIND group (keyed by sorted Y).
    cind_targets: Vec<SymIndex>,
    /// Per CIND group, per member: the member's **triggered source
    /// tuples** keyed by `x_perm` — the reverse index that makes target
    /// deletions (orphaning) and target arrivals (resolution) delta-cost.
    cind_sources: Vec<Vec<SymIndex>>,
    /// The materialized violation set (== batch validation of `db`).
    live_cfd: HashSet<(usize, CfdViolation), FxBuildHasher>,
    live_cind: HashSet<(usize, CindViolation), FxBuildHasher>,
}

/// Batch `wildcard_pairs` over one live key group: sorts the positions
/// so the witness is the group's lowest position (the canonical batch
/// order), reading RHS values through the database.
fn group_pairs(rel_inst: &Relation, rhs: AttrId, mut positions: Vec<u32>) -> Vec<(usize, usize)> {
    positions.sort_unstable();
    crate::validator::wildcard_pairs_by(positions.iter().copied(), |p| {
        &rel_inst.get(p as usize).expect("indexed position valid")[rhs]
    })
}

/// Does a compiled member's LHS pattern match the tuple?
fn member_matches(g: &CfdGroup, m: &CfdMember, t: &Tuple) -> bool {
    g.attrs
        .iter()
        .zip(m.pattern.iter())
        .all(|(a, p)| p.as_ref().is_none_or(|p| p == &t[*a]))
}

/// Translates the projection of a tuple whose key cells are **already
/// interned** (every key projection is interned on insert; see
/// [`intern_key`]).
fn sym_key(interner: &Interner, t: &Tuple, attrs: &[AttrId], buf: &mut Vec<SymValue>) {
    buf.clear();
    buf.extend(attrs.iter().map(|a| {
        interner
            .sym_value(&t[*a])
            .expect("key projections of stream tuples are interned")
    }));
}

/// Translates a projection, interning new strings — the insert-side key
/// builder. Only key attributes are ever interned, so a long-lived
/// stream's interner grows with distinct **key** values, not with every
/// value that ever passes through.
fn intern_key(interner: &mut Interner, t: &Tuple, attrs: &[AttrId], buf: &mut Vec<SymValue>) {
    buf.clear();
    buf.extend(attrs.iter().map(|a| interner.intern_value(&t[*a])));
}

impl SigmaReport {
    /// Applies one streamed delta to a consumer-maintained report,
    /// implementing the documented consumer rule
    ///
    /// ```text
    /// after = renumber(before − resolved, moved) + introduced
    /// ```
    ///
    /// i.e. the resolved violations (labeled with pre-move positions) are
    /// removed first, the swap renumbering is applied to what survives,
    /// and the introduced violations (post-move positions) are added; the
    /// report is then re-sorted into the canonical order. Feeding every
    /// delta of a [`ValidatorStream`] through this keeps the report equal
    /// to [`ValidatorStream::current_report`] at all times.
    ///
    /// The `validator` argument resolves each violation's constraint
    /// index to its relation, so only positions of the renumbered
    /// relation are touched.
    pub fn apply_delta(&mut self, validator: &Validator, delta: &SigmaDelta) {
        if delta.is_quiet() {
            // The hot path for mutations on clean streams: nothing to
            // remove, renumber or add.
            return;
        }
        if !delta.cfd.resolved.is_empty() {
            let rm: HashSet<&(usize, CfdViolation), FxBuildHasher> =
                delta.cfd.resolved.iter().collect();
            self.cfd.retain(|v| !rm.contains(v));
        }
        if !delta.cind.resolved.is_empty() {
            let rm: HashSet<&(usize, CindViolation), FxBuildHasher> =
                delta.cind.resolved.iter().collect();
            self.cind.retain(|v| !rm.contains(v));
        }
        if let Some(mv) = &delta.moved {
            let renum = |p: &mut usize| {
                if *p == mv.from {
                    *p = mv.to;
                }
            };
            for (i, v) in self.cfd.iter_mut() {
                if validator.cfds()[*i].rel() != mv.rel {
                    continue;
                }
                match v {
                    CfdViolation::SingleTuple { tuple, .. } => renum(tuple),
                    CfdViolation::Pair { left, right } => {
                        renum(left);
                        renum(right);
                    }
                }
            }
            for (i, v) in self.cind.iter_mut() {
                if validator.cinds()[*i].lhs_rel() == mv.rel {
                    renum(&mut v.tuple);
                }
            }
        }
        self.cfd.extend(delta.cfd.introduced.iter().cloned());
        self.cind.extend(delta.cind.introduced.iter().cloned());
        // Removal alone preserves the canonical order; only a renumber
        // or an addition can break it.
        if delta.moved.is_some()
            || !delta.cfd.introduced.is_empty()
            || !delta.cind.introduced.is_empty()
        {
            self.sort();
        }
    }
}

/// What one [`ValidatorStream::compact`] call reclaimed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Emptied `SymIndex` key groups dropped across every live index
    /// tier (CFD group indexes, CIND target indexes, reverse CIND
    /// source indexes).
    pub key_groups_dropped: usize,
    /// Key groups still live after compaction, summed over the same
    /// tiers.
    pub key_groups_live: usize,
}

/// One affected `(group, key)` pair-recomputation scope of a deletion.
struct PairScope {
    group: usize,
    key: Vec<SymValue>,
    /// `(member slot, old pairs)` for each wildcard member matching the
    /// key, computed from the pre-deletion state.
    members: Vec<(usize, Vec<(usize, usize)>)>,
}

/// Collects the wildcard members matching `rep` together with their
/// current (pre-mutation) pair sets — the "before" side of a
/// witness-restructure scope. `None` when no member is affected.
fn stash_scope(
    g: &CfdGroup,
    group: usize,
    idx: &SymIndex,
    rel_inst: &Relation,
    key: &[SymValue],
    rep: &Tuple,
) -> Option<PairScope> {
    let mut members = Vec::new();
    for (ms, m) in g.members.iter().enumerate() {
        if m.rhs_const.is_some() || !member_matches(g, m, rep) {
            continue;
        }
        let old = group_pairs(rel_inst, m.rhs, idx.positions(key).collect());
        members.push((ms, old));
    }
    (!members.is_empty()).then(|| PairScope {
        group,
        key: key.to_vec(),
        members,
    })
}

impl ValidatorStream {
    /// Materializes the stream state over an initial database, returning
    /// the stream together with the initial violations — the batched
    /// [`Validator::validate_sorted`] report the live state starts from.
    pub fn new_validated(validator: Validator, db: Database) -> (Self, SigmaReport) {
        let report = validator.validate_sorted(&db);
        let stream = ValidatorStream::materialize(validator, db, report.clone());
        (stream, report)
    }

    /// Materializes the stream over a database whose violation report is
    /// **already known** (from a prior batch run, monitor or stream):
    /// the live group indexes are still built, but the batch validation
    /// sweep [`ValidatorStream::new_validated`] performs is skipped.
    ///
    /// `report` must be exactly [`Validator::validate_sorted`] of `db`
    /// (debug-asserted) — seeding a stale report desynchronizes the
    /// live state permanently.
    pub fn with_report(validator: Validator, db: Database, report: SigmaReport) -> Self {
        debug_assert_eq!(
            report,
            validator.validate_sorted(&db),
            "seed report disagrees with the database"
        );
        ValidatorStream::materialize(validator, db, report)
    }

    /// Builds the live indexes and violation sets from a trusted report.
    fn materialize(validator: Validator, db: Database, report: SigmaReport) -> Self {
        let interner = Interner::from_database(&db);
        let cfd_indexes = validator
            .cfd_groups()
            .iter()
            .map(|g| {
                SymIndex::build_filtered_interned(db.relation(g.rel), &g.attrs, &interner, |_| true)
            })
            .collect();
        let cind_targets = validator
            .cind_groups()
            .iter()
            .map(|g| {
                SymIndex::build_filtered_interned(db.relation(g.rhs_rel), &g.y, &interner, |t| {
                    g.yp.iter().all(|(a, v)| &t[*a] == v)
                })
            })
            .collect();
        let cind_sources = validator
            .cind_groups()
            .iter()
            .map(|g| {
                g.members
                    .iter()
                    .map(|m| {
                        let cind = &validator.cinds()[m.idx];
                        SymIndex::build_filtered_interned(
                            db.relation(cind.lhs_rel()),
                            &m.x_perm,
                            &interner,
                            |t| cind.triggers(t),
                        )
                    })
                    .collect()
            })
            .collect();
        let live_cfd = report.cfd.into_iter().collect();
        let live_cind = report.cind.into_iter().collect();
        ValidatorStream {
            validator,
            db,
            interner,
            cfd_indexes,
            cind_targets,
            cind_sources,
            live_cfd,
            live_cind,
        }
    }

    /// Materializes the stream state over an initial database, discarding
    /// the initial violations.
    #[deprecated(
        note = "silently discards the seed database's violations; use `new_validated` and \
                consume the initial SigmaReport, or `with_report` when the report is \
                already known from a prior sweep"
    )]
    pub fn new(validator: Validator, db: Database) -> Self {
        ValidatorStream::new_validated(validator, db).0
    }

    /// Drops every **emptied** key group from the stream's live indexes
    /// (CFD group indexes, CIND target indexes and reverse CIND source
    /// indexes), returning what was reclaimed.
    ///
    /// Removals keep a group's slot forever, so a months-long monitor
    /// over high-key-churn data grows with the distinct keys ever seen
    /// rather than with the live data (the ROADMAP's known leak).
    /// Compaction is `O(keys + live positions)` over each index and
    /// preserves every live `(key, position)` pair, so the violation
    /// state and all delta semantics are untouched — call it whenever
    /// [`CompactionStats::key_groups_dropped`] is worth the rebuild
    /// (e.g. periodically, or when an index's distinct-key count far
    /// exceeds the relation's size).
    ///
    /// The interner is **not** compacted: dead interned strings are
    /// still retained (strings are shared across groups, so reclaiming
    /// them needs a sweep over every live key — a separate, rarer
    /// maintenance step).
    pub fn compact(&mut self) -> CompactionStats {
        let mut stats = CompactionStats::default();
        for idx in self
            .cfd_indexes
            .iter_mut()
            .chain(self.cind_targets.iter_mut())
            .chain(self.cind_sources.iter_mut().flatten())
        {
            stats.key_groups_dropped += idx.compact();
            stats.key_groups_live += idx.distinct_keys();
        }
        stats
    }

    /// The compiled suite.
    pub fn validator(&self) -> &Validator {
        &self.validator
    }

    /// The current database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Consumes the stream, returning the accumulated database.
    pub fn into_db(self) -> Database {
        self.db
    }

    /// The materialized violation set, sorted into the canonical report
    /// order — always equal to [`Validator::validate_sorted`] on
    /// [`ValidatorStream::db`], at delta cost instead of a sweep.
    pub fn current_report(&self) -> SigmaReport {
        let mut report = SigmaReport {
            cfd: self.live_cfd.iter().cloned().collect(),
            cind: self.live_cind.iter().cloned().collect(),
        };
        report.sort();
        report
    }

    /// Number of currently outstanding violations.
    pub fn violation_count(&self) -> usize {
        self.live_cfd.len() + self.live_cind.len()
    }

    /// Validates and inserts one tuple, returning the violations it
    /// introduces **and** the violations it resolves (an arriving CIND
    /// target tuple supplies the partner its orphaned source tuples were
    /// missing). An already-present tuple is a no-op: instances are sets.
    ///
    /// Semantics per constraint kind:
    ///
    /// * constant-RHS CFD — the tuple itself mismatches: one
    ///   `SingleTuple` violation;
    /// * wildcard-RHS CFD — the tuple disagrees on `A` with its key
    ///   group: one `Pair` witness against the group's first (lowest
    ///   position) resident tuple;
    /// * CIND (source role) — the tuple is triggered but finds no
    ///   partner in the live target index;
    /// * CIND (target role) — never *creates* a violation; if the tuple
    ///   carries a key no target held before, every orphaned source
    ///   tuple with that key is **resolved**.
    pub fn insert_tuple(&mut self, rel: RelId, t: Tuple) -> Result<SigmaDelta, ModelError> {
        let mut delta = SigmaDelta::default();
        if !self.db.insert(rel, t.clone())? {
            return Ok(delta);
        }
        let pos = self.db.relation(rel).len() - 1;
        let Self {
            validator,
            db,
            interner,
            cfd_indexes,
            cind_targets,
            cind_sources,
            live_cfd,
            live_cind,
        } = self;
        let mut key_buf: Vec<SymValue> = Vec::new();

        // Target-role updates first, so a self-referential CIND can be
        // satisfied by the arriving tuple itself (batch semantics allow
        // t2 = t1) — and so resolution sees the pre-arrival emptiness.
        for (gi, g) in validator.cind_groups().iter().enumerate() {
            if g.rhs_rel != rel || !g.yp.iter().all(|(a, v)| &t[*a] == v) {
                continue;
            }
            intern_key(interner, &t, &g.y, &mut key_buf);
            let was_absent = !cind_targets[gi].contains_key(&key_buf);
            cind_targets[gi].insert_key(pos as u32, &key_buf);
            if !was_absent {
                continue;
            }
            // First target with this key: every triggered source tuple
            // carrying it had a violation — all resolved now.
            for (m, sidx) in g.members.iter().zip(&cind_sources[gi]) {
                let cind = &validator.cinds()[m.idx];
                let source = db.relation(cind.lhs_rel());
                for src in sidx.positions(&key_buf) {
                    let t1 = source.get(src as usize).expect("indexed position valid");
                    let v = (
                        m.idx,
                        CindViolation {
                            tuple: src as usize,
                            key: t1.project(cind.x()),
                        },
                    );
                    let was_live = live_cind.remove(&v);
                    debug_assert!(was_live, "orphaned source must have been live");
                    delta.cind.resolved.push(v);
                }
            }
        }

        // CFD groups over this relation: check members, then join the
        // tuple's key group.
        for (g, idx) in validator.cfd_groups().iter().zip(cfd_indexes.iter_mut()) {
            if g.rel != rel {
                continue;
            }
            intern_key(interner, &t, &g.attrs, &mut key_buf);
            for m in &g.members {
                if !member_matches(g, m, &t) {
                    continue;
                }
                match &m.rhs_const {
                    Some(expected) => {
                        let found = &t[m.rhs];
                        if found != expected {
                            delta.cfd.introduced.push((
                                m.idx,
                                CfdViolation::SingleTuple {
                                    tuple: pos,
                                    found: found.clone(),
                                    expected: expected.clone(),
                                },
                            ));
                        }
                    }
                    None => {
                        // Exactly the batch `wildcard_pairs` delta: the
                        // arriving tuple has the highest position, so it
                        // adds one pair iff its RHS differs from the
                        // group's first (lowest position) tuple.
                        if let Some(first) = idx.min_pos(&key_buf) {
                            let resident = db
                                .relation(rel)
                                .get(first as usize)
                                .expect("indexed position valid");
                            if resident[m.rhs] != t[m.rhs] {
                                delta.cfd.introduced.push((
                                    m.idx,
                                    CfdViolation::Pair {
                                        left: first as usize,
                                        right: pos,
                                    },
                                ));
                            }
                        }
                    }
                }
            }
            idx.insert_key(pos as u32, &key_buf);
        }

        // CIND source role: the new tuple must find a partner, and joins
        // its members' source indexes.
        for (gi, g) in validator.cind_groups().iter().enumerate() {
            for (m, sidx) in g.members.iter().zip(cind_sources[gi].iter_mut()) {
                let cind = &validator.cinds()[m.idx];
                if cind.lhs_rel() != rel || !cind.triggers(&t) {
                    continue;
                }
                intern_key(interner, &t, &m.x_perm, &mut key_buf);
                sidx.insert_key(pos as u32, &key_buf);
                if !cind_targets[gi].contains_key(&key_buf) {
                    delta.cind.introduced.push((
                        m.idx,
                        CindViolation {
                            tuple: pos,
                            key: t.project(cind.x()),
                        },
                    ));
                }
            }
        }

        live_cfd.extend(delta.cfd.introduced.iter().cloned());
        live_cind.extend(delta.cind.introduced.iter().cloned());
        Ok(delta)
    }

    /// Deletes one tuple by value, returning the violations that
    /// disappear with it, the violations its absence introduces
    /// (orphaned CIND sources, relabeled pair witnesses), and the swap
    /// renumbering ([`SigmaDelta::moved`]). `None` when the tuple is not
    /// present.
    pub fn delete_tuple(&mut self, rel: RelId, t: &Tuple) -> Option<SigmaDelta> {
        let pos = self.db.relation(rel).position(t)?;
        let last = self.db.relation(rel).len() - 1;
        let moved: Option<Tuple> = (pos != last).then(|| {
            self.db
                .relation(rel)
                .get(last)
                .expect("last position valid")
                .clone()
        });
        let mut delta = SigmaDelta::default();
        let Self {
            validator,
            db,
            interner,
            cfd_indexes,
            cind_targets,
            cind_sources,
            live_cfd,
            live_cind,
        } = self;
        let mut key_buf: Vec<SymValue> = Vec::new();
        // Renumber for positions emitted *after* the swap.
        let renum = |p: u32| -> usize {
            if p as usize == last {
                pos
            } else {
                p as usize
            }
        };

        // ---- CFD groups: resolve the tuple's own singles, then settle
        // the affected key groups' pair witnesses.
        //
        // Pair fast path: a group's pairs all witness against its first
        // (lowest position) tuple, so deleting a *non-witness* tuple can
        // only remove its own pair, and a moved tuple that stays above
        // the witness only relabels its pair — both `O(1)` tuple reads
        // after one integer scan for the group minimum. Only when the
        // witness itself is deleted (or the moved tuple becomes the new
        // witness) does the group's pair set restructure; those rare
        // scopes are stashed for a full before/after recomputation.
        let mut scopes: Vec<PairScope> = Vec::new();
        for (gi, (g, idx)) in validator
            .cfd_groups()
            .iter()
            .zip(cfd_indexes.iter_mut())
            .enumerate()
        {
            if g.rel != rel {
                continue;
            }
            sym_key(interner, t, &g.attrs, &mut key_buf);
            let key_t = key_buf.clone();
            for m in &g.members {
                if !member_matches(g, m, t) {
                    continue;
                }
                if let Some(expected) = &m.rhs_const {
                    let found = &t[m.rhs];
                    if found != expected {
                        let v = (
                            m.idx,
                            CfdViolation::SingleTuple {
                                tuple: pos,
                                found: found.clone(),
                                expected: expected.clone(),
                            },
                        );
                        let was_live = live_cfd.remove(&v);
                        debug_assert!(was_live, "deleted single must have been live");
                        delta.cfd.resolved.push(v);
                    }
                }
            }
            let key_m: Option<Vec<SymValue>> = moved.as_ref().map(|mt| {
                sym_key(interner, mt, &g.attrs, &mut key_buf);
                key_buf.clone()
            });
            let same_key = key_m.as_deref() == Some(key_t.as_slice());

            // The deleted tuple's key group.
            let fmin = idx.min_pos(&key_t).expect("deleted tuple is in its group");
            if fmin as usize != pos {
                // `pos` was not the witness (fmin < pos survives, and a
                // same-key moved tuple renumbers *above* fmin, since
                // pos > fmin). Resolve the deleted tuple's own pair and
                // relabel the moved tuple's, per matching member.
                let first = db.relation(rel).get(fmin as usize).expect("in range");
                for m in &g.members {
                    if m.rhs_const.is_some() || !member_matches(g, m, t) {
                        continue;
                    }
                    if first[m.rhs] != t[m.rhs] {
                        let v = (
                            m.idx,
                            CfdViolation::Pair {
                                left: fmin as usize,
                                right: pos,
                            },
                        );
                        let was_live = live_cfd.remove(&v);
                        debug_assert!(was_live, "deleted pair must have been live");
                        delta.cfd.resolved.push(v);
                    }
                    if same_key {
                        // The moved tuple's pair relabels with it; the
                        // consumer's renumber step covers this, so it is
                        // not a delta entry.
                        let old = (
                            m.idx,
                            CfdViolation::Pair {
                                left: fmin as usize,
                                right: last,
                            },
                        );
                        if live_cfd.remove(&old) {
                            live_cfd.insert((
                                m.idx,
                                CfdViolation::Pair {
                                    left: fmin as usize,
                                    right: pos,
                                },
                            ));
                        }
                    }
                }
            } else {
                // The witness itself goes: the group's pairs
                // restructure. Stash the old pairs for recomputation.
                scopes.extend(stash_scope(g, gi, idx, db.relation(rel), &key_t, t));
            }

            // The moved tuple's key group, when it is a different one.
            if let (Some(mt), Some(km)) = (&moved, &key_m) {
                if !same_key {
                    let fmin_m = idx.min_pos(km).expect("moved tuple is in its group");
                    if (fmin_m as usize) < pos {
                        // Witness unchanged: the moved tuple's pair (if
                        // any) just renumbers `last` → `pos` — covered by
                        // the consumer's renumber step, no delta entry.
                        for m in &g.members {
                            if m.rhs_const.is_some() || !member_matches(g, m, mt) {
                                continue;
                            }
                            let old = (
                                m.idx,
                                CfdViolation::Pair {
                                    left: fmin_m as usize,
                                    right: last,
                                },
                            );
                            if live_cfd.remove(&old) {
                                live_cfd.insert((
                                    m.idx,
                                    CfdViolation::Pair {
                                        left: fmin_m as usize,
                                        right: pos,
                                    },
                                ));
                            }
                        }
                    } else {
                        // The moved tuple lands *below* the group's old
                        // witness and becomes the new one: restructure.
                        scopes.extend(stash_scope(g, gi, idx, db.relation(rel), km, mt));
                    }
                }
            }

            idx.remove_key(pos as u32, &key_t);
            if let (Some(_), Some(km)) = (&moved, &key_m) {
                idx.replace_pos(last as u32, pos as u32, km);
            }
        }

        // ---- CIND source role of the deleted tuple (before its target
        // role, so a self-partnered tuple is not counted as orphaned).
        for (gi, g) in validator.cind_groups().iter().enumerate() {
            for (m, sidx) in g.members.iter().zip(cind_sources[gi].iter_mut()) {
                let cind = &validator.cinds()[m.idx];
                if cind.lhs_rel() != rel || !cind.triggers(t) {
                    continue;
                }
                sym_key(interner, t, &m.x_perm, &mut key_buf);
                sidx.remove_key(pos as u32, &key_buf);
                if !cind_targets[gi].contains_key(&key_buf) {
                    let v = (
                        m.idx,
                        CindViolation {
                            tuple: pos,
                            key: t.project(cind.x()),
                        },
                    );
                    let was_live = live_cind.remove(&v);
                    debug_assert!(was_live, "deleted orphan must have been live");
                    delta.cind.resolved.push(v);
                }
            }
        }

        // ---- CIND target role of the deleted tuple: removing the last
        // partner with a key orphans every triggered source carrying it.
        for (gi, g) in validator.cind_groups().iter().enumerate() {
            if g.rhs_rel != rel || !g.yp.iter().all(|(a, v)| &t[*a] == v) {
                continue;
            }
            sym_key(interner, t, &g.y, &mut key_buf);
            cind_targets[gi].remove_key(pos as u32, &key_buf);
            if cind_targets[gi].contains_key(&key_buf) {
                continue;
            }
            for (m, sidx) in g.members.iter().zip(&cind_sources[gi]) {
                let cind = &validator.cinds()[m.idx];
                let source = db.relation(cind.lhs_rel());
                // The swap renumbering only concerns the deleted tuple's
                // relation — source positions elsewhere are stable.
                let same_rel = cind.lhs_rel() == rel;
                for src in sidx.positions(&key_buf) {
                    let t1 = source.get(src as usize).expect("indexed position valid");
                    let v = (
                        m.idx,
                        CindViolation {
                            tuple: if same_rel { renum(src) } else { src as usize },
                            key: t1.project(cind.x()),
                        },
                    );
                    live_cind.insert(v.clone());
                    delta.cind.introduced.push(v);
                }
            }
        }

        // ---- Renumber the moved tuple's per-tuple violations and its
        // index entries in the CIND tiers (CFD tiers were renumbered
        // above; pair relabeling happens in the recomputation below).
        if let Some(mt) = &moved {
            for g in validator.cfd_groups() {
                if g.rel != rel {
                    continue;
                }
                for m in &g.members {
                    if !member_matches(g, m, mt) {
                        continue;
                    }
                    if let Some(expected) = &m.rhs_const {
                        let found = &mt[m.rhs];
                        if found != expected {
                            let old = (
                                m.idx,
                                CfdViolation::SingleTuple {
                                    tuple: last,
                                    found: found.clone(),
                                    expected: expected.clone(),
                                },
                            );
                            if live_cfd.remove(&old) {
                                live_cfd.insert((
                                    m.idx,
                                    CfdViolation::SingleTuple {
                                        tuple: pos,
                                        found: found.clone(),
                                        expected: expected.clone(),
                                    },
                                ));
                            }
                        }
                    }
                }
            }
            for (gi, g) in validator.cind_groups().iter().enumerate() {
                for (m, sidx) in g.members.iter().zip(cind_sources[gi].iter_mut()) {
                    let cind = &validator.cinds()[m.idx];
                    if cind.lhs_rel() != rel || !cind.triggers(mt) {
                        continue;
                    }
                    sym_key(interner, mt, &m.x_perm, &mut key_buf);
                    sidx.replace_pos(last as u32, pos as u32, &key_buf);
                    let old = (
                        m.idx,
                        CindViolation {
                            tuple: last,
                            key: mt.project(cind.x()),
                        },
                    );
                    if live_cind.remove(&old) {
                        live_cind.insert((
                            m.idx,
                            CindViolation {
                                tuple: pos,
                                key: mt.project(cind.x()),
                            },
                        ));
                    }
                }
                if g.rhs_rel == rel && g.yp.iter().all(|(a, v)| &mt[*a] == v) {
                    sym_key(interner, mt, &g.y, &mut key_buf);
                    cind_targets[gi].replace_pos(last as u32, pos as u32, &key_buf);
                }
            }
        }

        // ---- Remove from the database (the swap happens here).
        let removed = db.remove(rel, t).expect("position was just resolved");
        debug_assert_eq!(removed.pos, pos);
        debug_assert_eq!(removed.moved_from, moved.as_ref().map(|_| last));

        // ---- Recompute the affected key groups' pairs against the
        // final state and swap them into the live set; only genuine
        // differences surface in the delta.
        for scope in scopes {
            let g = &validator.cfd_groups()[scope.group];
            let idx = &cfd_indexes[scope.group];
            for (ms, old) in scope.members {
                let m = &g.members[ms];
                let new = group_pairs(db.relation(rel), m.rhs, idx.positions(&scope.key).collect());
                let old_set: HashSet<(usize, usize), FxBuildHasher> = old.iter().copied().collect();
                let new_set: HashSet<(usize, usize), FxBuildHasher> = new.iter().copied().collect();
                for &(left, right) in &old {
                    live_cfd.remove(&(m.idx, CfdViolation::Pair { left, right }));
                    if !new_set.contains(&(left, right)) {
                        delta
                            .cfd
                            .resolved
                            .push((m.idx, CfdViolation::Pair { left, right }));
                    }
                }
                for &(left, right) in &new {
                    live_cfd.insert((m.idx, CfdViolation::Pair { left, right }));
                    if !old_set.contains(&(left, right)) {
                        delta
                            .cfd
                            .introduced
                            .push((m.idx, CfdViolation::Pair { left, right }));
                    }
                }
            }
        }

        delta.moved = moved.map(|_| MovedTuple {
            rel,
            from: last,
            to: pos,
        });
        Some(delta)
    }

    /// Replaces `old` by `new` in relation `rel`: a delete followed by an
    /// insert, returned as the two deltas in application order (see the
    /// module docs for how each applies). `Ok(None)` when `old` is not
    /// present; the replacement is type-checked **before** the delete, so
    /// an error leaves the stream untouched.
    pub fn update_tuple(
        &mut self,
        rel: RelId,
        old: &Tuple,
        new: Tuple,
    ) -> Result<Option<(SigmaDelta, SigmaDelta)>, ModelError> {
        self.db.check_tuple(rel, &new)?;
        if old == &new {
            // No-op replacement: skip the delete/insert churn (and its
            // mutually cancelling deltas) entirely.
            return Ok(self
                .db
                .relation(rel)
                .contains(old)
                .then(|| (SigmaDelta::default(), SigmaDelta::default())));
        }
        let Some(deleted) = self.delete_tuple(rel, old) else {
            return Ok(None);
        };
        let inserted = self.insert_tuple(rel, new)?;
        Ok(Some((deleted, inserted)))
    }

    /// Applies one value-level [`Mutation`], returning the streamed
    /// deltas **and** the inverse mutation ([`Applied::revert`]) that
    /// restores the pre-mutation tuple set. No-ops (inserting a resident
    /// tuple, deleting or updating an absent one, `old == new`) return an
    /// empty [`Applied`] with `revert: None`.
    ///
    /// An update whose `new` tuple already resides in the relation
    /// degenerates to a deletion of `old` (set semantics merge the two);
    /// its revert is the re-insertion of `old`, **not** a deletion of the
    /// pre-existing `new`.
    pub fn apply(&mut self, m: Mutation) -> Result<Applied, ModelError> {
        const NOOP: Applied = Applied {
            deltas: Vec::new(),
            revert: None,
        };
        match m {
            Mutation::Insert { rel, tuple } => {
                if self.db.relation(rel).contains(&tuple) {
                    return Ok(NOOP);
                }
                let delta = self.insert_tuple(rel, tuple.clone())?;
                Ok(Applied {
                    deltas: vec![delta],
                    revert: Some(Mutation::Delete { rel, tuple }),
                })
            }
            Mutation::Delete { rel, tuple } => match self.delete_tuple(rel, &tuple) {
                None => Ok(NOOP),
                Some(delta) => Ok(Applied {
                    deltas: vec![delta],
                    revert: Some(Mutation::Insert { rel, tuple }),
                }),
            },
            Mutation::Update { rel, old, new } => {
                self.db.check_tuple(rel, &new)?;
                if old == new || !self.db.relation(rel).contains(&old) {
                    return Ok(NOOP);
                }
                if self.db.relation(rel).contains(&new) {
                    // Set semantics: the edit collapses `old` into the
                    // resident `new` — a pure deletion, reverted by
                    // re-inserting `old` (the resident tuple predates the
                    // mutation and must survive the revert).
                    let delta = self.delete_tuple(rel, &old).expect("presence just checked");
                    return Ok(Applied {
                        deltas: vec![delta],
                        revert: Some(Mutation::Insert { rel, tuple: old }),
                    });
                }
                let (d1, d2) = self
                    .update_tuple(rel, &old, new.clone())?
                    .expect("presence just checked");
                Ok(Applied {
                    deltas: vec![d1, d2],
                    revert: Some(Mutation::Update {
                        rel,
                        old: new,
                        new: old,
                    }),
                })
            }
        }
    }

    /// Replays the inverse mutation of an [`Applied`] — the retraction
    /// half of the apply → inspect delta → keep-or-roll-back loop. The
    /// returned deltas mirror the original's (resolved and introduced
    /// swap roles, modulo position relabeling) and must still be consumed
    /// by any delta-maintained state.
    pub fn revert(&mut self, revert: Mutation) -> Result<Applied, ModelError> {
        let applied = self.apply(revert)?;
        debug_assert!(
            !applied.is_noop(),
            "reverting an applied mutation cannot be a no-op"
        );
        Ok(applied)
    }

    /// The **violation class** of compiled CFD `cfd_idx` around tuple `t`:
    /// the dense positions (ascending) of every resident tuple that
    /// matches the CFD's LHS pattern and agrees with `t` on the LHS
    /// attributes — the equivalence class over which a wildcard-RHS
    /// conflict must be settled, read from the live group index at
    /// key-group cost. Empty when `t` does not match the pattern (or
    /// carries a key no resident tuple holds).
    pub fn cfd_violation_class(&self, cfd_idx: usize, t: &Tuple) -> Vec<usize> {
        let (gi, mi) = self.validator.cfd_slot(cfd_idx);
        let g = &self.validator.cfd_groups()[gi];
        let m = &g.members[mi];
        if !member_matches(g, m, t) {
            return Vec::new();
        }
        let mut key = Vec::with_capacity(g.attrs.len());
        for a in &g.attrs {
            match self.interner.sym_value(&t[*a]) {
                Some(s) => key.push(s),
                None => return Vec::new(),
            }
        }
        let rel_inst = self.db.relation(g.rel);
        let mut out: Vec<usize> = self.cfd_indexes[gi]
            .positions(&key)
            .filter(|&p| {
                let resident = rel_inst.get(p as usize).expect("indexed position valid");
                member_matches(g, m, resident)
            })
            .map(|p| p as usize)
            .collect();
        out.sort_unstable();
        out
    }

    /// Does `t` (a tuple currently in the stream's database) participate
    /// in a CFD conflict whose witnessing cells all satisfy `is_rigid`?
    ///
    /// This is the group-probe primitive the chase's candidate checking
    /// builds on: `is_rigid` distinguishes genuine constants from encoded
    /// chase variables, so a disagreement involving a variable (which an
    /// `FD(φ)` step would repair by substitution) is not a conflict,
    /// while two rigid constants disagreeing is. Costs
    /// `O(groups on the relation × the tuple's key-group sizes)` — never
    /// a relation scan. Ordinary consumers can pass `|_| true` to ask
    /// "is this tuple involved in any CFD violation right now".
    pub fn cfd_conflicts<F>(&self, rel: RelId, t: &Tuple, is_rigid: F) -> bool
    where
        F: Fn(&Value) -> bool,
    {
        let rel_inst = self.db.relation(rel);
        let Some(my_pos) = rel_inst.position(t) else {
            return false;
        };
        let mut key_buf: Vec<SymValue> = Vec::new();
        let mut group_buf: Vec<u32> = Vec::new();
        for (g, idx) in self.validator.cfd_groups().iter().zip(&self.cfd_indexes) {
            if g.rel != rel {
                continue;
            }
            sym_key(&self.interner, t, &g.attrs, &mut key_buf);
            group_buf.clear();
            group_buf.extend(idx.positions(&key_buf));
            for m in &g.members {
                if !member_matches(g, m, t) {
                    continue;
                }
                let mine = &t[m.rhs];
                // Single-tuple reading: a matched premise forcing a
                // different (rigid) constant.
                if let Some(expected) = &m.rhs_const {
                    if mine != expected && is_rigid(mine) {
                        return true;
                    }
                }
                // Pair reading: agreement on X forcing agreement on A,
                // checked against the tuple's own key group only.
                if !is_rigid(mine) {
                    continue;
                }
                for &p in &group_buf {
                    if p as usize == my_pos {
                        continue;
                    }
                    let other = &rel_inst.get(p as usize).expect("indexed position valid")[m.rhs];
                    if other != mine && is_rigid(other) {
                        return true;
                    }
                }
            }
        }
        false
    }
}
