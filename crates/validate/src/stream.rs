//! Incremental (streaming) validation with deletions and retraction.
//!
//! A [`ValidatorStream`] owns a database plus the live group-by indexes
//! of a compiled [`Validator`] and maintains the **materialized
//! violation set** of the evolving database. Every mutation —
//! [`ValidatorStream::insert_tuple`], [`ValidatorStream::delete_tuple`],
//! [`ValidatorStream::update_tuple`] — returns a [`SigmaDelta`]: the
//! violations it *introduced* and the violations it *resolved*
//! (retraction), in time proportional to the constraint groups and key
//! groups the mutated tuple touches, never to the database.
//!
//! ## Invariant
//!
//! After every mutation, [`ValidatorStream::current_report`] equals
//! [`Validator::validate_sorted`] on the current database — the
//! equivalence oracle property-tested at the workspace root over random
//! insert/delete/update sequences.
//!
//! ## Delta semantics
//!
//! Deletion is swap-based ([`condep_model::Relation::remove`]): the last
//! tuple of the relation moves into the vacated position, reported as
//! [`SigmaDelta::moved`]. A consumer maintaining its own violation state
//! applies a delta as
//!
//! ```text
//! after = renumber(before − resolved, moved) + introduced
//! ```
//!
//! i.e. `resolved` is labeled with **pre-move** positions and
//! `introduced` with **post-move** positions. Wildcard-RHS pair
//! witnesses are group-structural (each conflicting tuple is witnessed
//! against the group's lowest position), so deleting or moving a group
//! member can relabel a group's pairs: those relabelings appear as
//! resolved+introduced pairs in the delta, keeping the net state exactly
//! equal to a fresh batch validation.
//!
//! ## Complexity contract
//!
//! * insert: `O(Σ groups on the relation + touched key-group sizes)`;
//! * delete: the same, plus `O(affected key-group sizes)` for pair
//!   recomputation in the deleted (and moved) tuple's groups;
//! * no full-relation scan, ever — the cost tracks the delta, not the
//!   database.
//!
//! ## Hot path
//!
//! Per-mutation cost is dominated by hashing, so the engine is built to
//! hash as little as possible:
//!
//! * **Σ cover first** — compilation runs the violation-exact
//!   [`crate::SigmaCover`] pass, so subsumable tableau rows and
//!   duplicate CINDs never become hot-path members at all; violations
//!   still report against the caller's original Σ indices via the
//!   provenance fan-out.
//! * **resident row cache** — every resident tuple's key-union cells
//!   (group keys **and** CFD member RHS attributes) are interned once at
//!   insert and cached row-major per relation, mirrored through the same
//!   swap-remove discipline as the relation. Deletes read their rows
//!   from the cache: no string is hashed through the interner anywhere
//!   on the delete path.
//! * **at most one probe per (mutation, group)** — on insert,
//!   [`condep_query::SymIndex`] slot handles (`ensure_slot`) resolve
//!   the tuple's key group once; on delete, the index's per-position
//!   slot record (`slot_of_pos`) recovers the deleted *and* moved
//!   tuples' groups with **zero** hash probes. Either way the witness
//!   read (`min_at`), membership scans (`positions_at`) and the final
//!   insert/remove/relabel (`insert_at`/`remove_at`/`replace_at`) are
//!   all `O(1)` against the handle, shared across every member asking
//!   about that key.
//! * **symbol compares everywhere** — member-pattern matching and
//!   pair-witness RHS agreement are word compares between cached
//!   symbols ([`SymValue`]), never tuple-value compares; the database
//!   tuple is only touched to build violation payloads on emission.
//!
//! ## Long-lived streams
//!
//! Three pieces make the stream safe to keep open for the life of a
//! monitored database:
//!
//! * **stable tuple ids** — every resident tuple carries a
//!   [`condep_model::TupleId`] ([`ValidatorStream::tuple_id_at`] /
//!   [`ValidatorStream::position_of`]), allocated once and maintained
//!   through every swap, so consumers can address violations and fixes
//!   without replaying [`MovedTuple`] renumbering (each delta's
//!   [`IdDelta`] reports what was born, retired and moved);
//! * **batched mutations** — [`ValidatorStream::apply_deltas`]
//!   symbolizes a whole batch through one interner pass and translates
//!   keys per `(relation, LHS set)` group from pre-built rows,
//!   amortizing the dominant per-mutation delta cost;
//! * **full compaction** — [`ValidatorStream::compact`] drops emptied
//!   key groups and rebuilds the interner over live symbols only (the
//!   dead-strings leak is closed; see [`CompactionStats`] for what was
//!   reclaimed), all without disturbing live keys, violations or held
//!   ids.

use crate::telemetry::{MutKind, StreamTelemetry};
use crate::validator::{CfdGroup, CfdMember, SigmaReport, Validator};
use condep_cfd::{CfdDelta, CfdViolation, NormalCfd};
use condep_core::{CindDelta, CindViolation, NormalCind};
use condep_model::fxhash::FxBuildHasher;
use condep_model::{
    AttrId, Database, Interner, ModelError, RelId, Relation, Sym, SymValue, Tuple, TupleId,
    TupleIdMap, Value,
};
use condep_query::SymIndex;
use condep_telemetry::{SpanTimer, Stopwatch};
use std::collections::{BTreeSet, HashSet};

/// One value-level database mutation, appliable through
/// [`ValidatorStream::apply`].
///
/// The value-level (rather than position-level) formulation is what a
/// repair engine wants: a planned fix stays valid across the swap
/// renumbering earlier fixes cause, and its inverse (see
/// [`Applied::revert`]) is again a `Mutation`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// Insert a tuple (a no-op when it is already present).
    Insert {
        /// The relation to insert into.
        rel: RelId,
        /// The arriving tuple.
        tuple: Tuple,
    },
    /// Delete a tuple by value (a no-op when it is absent).
    Delete {
        /// The relation to delete from.
        rel: RelId,
        /// The departing tuple.
        tuple: Tuple,
    },
    /// Replace `old` by `new` (a no-op when `old` is absent). When `new`
    /// already resides in the relation the update degenerates to a
    /// deletion of `old` — instances are sets, so the two tuples merge.
    Update {
        /// The relation to update in.
        rel: RelId,
        /// The tuple to replace.
        old: Tuple,
        /// Its replacement.
        new: Tuple,
    },
}

/// What one [`ValidatorStream::apply`] call did: the streamed deltas in
/// application order, plus the inverse mutation that
/// [`ValidatorStream::revert`] replays to restore the pre-mutation tuple
/// set — the retraction primitive repair engines build their
/// apply → inspect delta → keep-or-roll-back loop on. `revert` is `None`
/// exactly when the mutation was a no-op.
///
/// Reverting restores the database as a *set of tuples* (and therefore
/// the violation set up to position labels); dense positions may come
/// back permuted by the swap-based deletions involved.
#[derive(Clone, Debug)]
pub struct Applied {
    /// The streamed deltas, in application order.
    pub deltas: Vec<SigmaDelta>,
    /// The inverse mutation (`None` for a no-op).
    pub revert: Option<Mutation>,
}

impl Applied {
    /// Did the mutation change nothing at all?
    pub fn is_noop(&self) -> bool {
        self.revert.is_none()
    }

    /// Introduced-minus-resolved violation count across all deltas.
    pub fn net_change(&self) -> isize {
        self.deltas.iter().map(SigmaDelta::net_change).sum()
    }

    /// Total violations resolved across all deltas.
    pub fn resolved_count(&self) -> usize {
        self.deltas
            .iter()
            .map(|d| d.cfd.resolved.len() + d.cind.resolved.len())
            .sum()
    }

    /// Total violations introduced across all deltas.
    pub fn introduced_count(&self) -> usize {
        self.deltas
            .iter()
            .map(|d| d.cfd.introduced.len() + d.cind.introduced.len())
            .sum()
    }
}

/// A swap-based deletion moved the relation's last tuple: every
/// position-keyed view of `rel` must renumber `from` to `to`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MovedTuple {
    /// The relation the deletion happened in.
    pub rel: RelId,
    /// The moved tuple's old dense position (the previous `len() - 1`).
    pub from: usize,
    /// Its new dense position (the deleted tuple's old slot).
    pub to: usize,
}

/// The stable-id bookkeeping of one mutation: which [`TupleId`]s were
/// born, retired and renumbered.
///
/// This is what lets a consumer skip the [`MovedTuple`] renumber
/// entirely: key your state by `TupleId` instead of dense position.
/// Translate **introduced** violation positions through
/// [`ValidatorStream::tuple_id_at`] right after consuming the delta
/// (they are post-move labels, so the current map applies); match
/// **resolved** entries by id — the pre-move position of the deleted
/// tuple is `retired`, the pre-move position [`MovedTuple::from`] is
/// `moved`, and every other position still carries its current id.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IdDelta {
    /// Id allocated for the inserted tuple.
    pub born: Option<TupleId>,
    /// Id retired by the deletion (the tuple that left).
    pub retired: Option<TupleId>,
    /// The moved tuple's id when the deletion swapped one
    /// ([`SigmaDelta::moved`]) — the id itself is stable, only its
    /// dense position changed.
    pub moved: Option<TupleId>,
}

/// Everything one mutation did to the violation set: introduced and
/// resolved violations per constraint kind, plus the position renumber a
/// swap-based deletion causes. See the module docs for the consumer
/// rule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SigmaDelta {
    /// The CFD half of the delta.
    pub cfd: CfdDelta,
    /// The CIND half of the delta.
    pub cind: CindDelta,
    /// Set when a swap-based deletion renumbered one tuple.
    pub moved: Option<MovedTuple>,
    /// Stable-id bookkeeping (does not affect [`SigmaDelta::is_quiet`]:
    /// a clean insert still allocates an id).
    pub ids: IdDelta,
}

impl SigmaDelta {
    /// Did the mutation leave the violation set untouched — including
    /// its position labels? A delta with no introduced/resolved entries
    /// but a [`SigmaDelta::moved`] renumber is **not** quiet: a consumer
    /// skipping it would keep violations labeled with a position that no
    /// longer exists.
    pub fn is_quiet(&self) -> bool {
        self.cfd.is_quiet() && self.cind.is_quiet() && self.moved.is_none()
    }

    /// The introduced violations as a sorted report.
    pub fn introduced(&self) -> SigmaReport {
        let mut r = SigmaReport {
            cfd: self.cfd.introduced.clone(),
            cind: self.cind.introduced.clone(),
        };
        r.sort();
        r
    }

    /// The resolved violations as a sorted report.
    pub fn resolved(&self) -> SigmaReport {
        let mut r = SigmaReport {
            cfd: self.cfd.resolved.clone(),
            cind: self.cind.resolved.clone(),
        };
        r.sort();
        r
    }

    /// Introduced-minus-resolved violation count change.
    pub fn net_change(&self) -> isize {
        (self.cfd.introduced.len() + self.cind.introduced.len()) as isize
            - (self.cfd.resolved.len() + self.cind.resolved.len()) as isize
    }
}

/// A CFD member's LHS pattern translated to interned symbols, aligned
/// with the group's sorted attribute list (`None` cell = wildcard). A
/// member whose pattern carries a string the interner has never seen is
/// stored as the outer `None`: no interned tuple can match it (yet).
type MemberSyms = Option<Box<[Option<SymValue>]>>;

/// A validator with materialized state for one evolving database.
#[derive(Clone, Debug)]
pub struct ValidatorStream {
    validator: Validator,
    db: Database,
    interner: Interner,
    /// One live index per CFD group (keyed by the group's sorted LHS).
    cfd_indexes: Vec<SymIndex>,
    /// One live filtered target index per CIND group (keyed by sorted Y).
    cind_targets: Vec<SymIndex>,
    /// Per CIND group, per member: the member's **triggered source
    /// tuples** keyed by `x_perm` — the reverse index that makes target
    /// deletions (orphaning) and target arrivals (resolution) delta-cost.
    cind_sources: Vec<Vec<SymIndex>>,
    /// The materialized violation set (== batch validation of `db`).
    live_cfd: HashSet<(usize, CfdViolation), FxBuildHasher>,
    live_cind: HashSet<(usize, CindViolation), FxBuildHasher>,
    /// Per relation: the id ⇄ position maps behind [`TupleId`] handles,
    /// seeded with the dense-seeding convention (`TupleId(p)` = seed
    /// position `p`) and maintained through every swap.
    ids: Vec<TupleIdMap>,
    /// Per relation: the sorted union of every group key attribute and
    /// every CFD member RHS attribute — the cells one batched
    /// symbolization pass covers.
    sym_attrs: Vec<Vec<AttrId>>,
    /// Per relation: every **resident** tuple's key-union cells, row
    /// major with stride `sym_attrs[rel].len()` and mirrored through
    /// the same swap-remove discipline as the relation itself — the
    /// delete path reads its rows here instead of re-hashing strings
    /// through the interner.
    sym_rows: Vec<Vec<SymValue>>,
    /// Per CFD group: each key attribute's slot in its relation's
    /// symbolized row.
    cfd_group_slots: Vec<Vec<u32>>,
    /// Per CFD group, per member: the member's RHS attribute's slot in
    /// its relation's symbolized row — pair-witness agreement is a
    /// symbol compare between cached rows, never a tuple-value compare.
    cfd_rhs_slots: Vec<Vec<u32>>,
    /// Per CIND group: the `Y` attributes' slots in the target
    /// relation's row.
    cind_y_slots: Vec<Vec<u32>>,
    /// Per CIND group, per member: the `x_perm` attributes' slots in the
    /// source relation's row.
    cind_x_slots: Vec<Vec<Vec<u32>>>,
    /// Per CFD group, per member: the LHS pattern in interned-symbol
    /// form — the batch path's word-compare fast path for member
    /// matching.
    member_syms: Vec<Vec<MemberSyms>>,
    /// `interner.len()` when `member_syms` was last refreshed.
    member_syms_gen: usize,
    /// How many members are still untranslated (unknown constants).
    member_syms_pending: usize,
    /// The stream's instrument panel: latency histograms, hot-path
    /// counters and the bounded activity journal. Private per stream;
    /// cloning a stream starts fresh telemetry (see
    /// [`StreamTelemetry`]'s `Clone`).
    telemetry: StreamTelemetry,
}

/// Copies a group key out of a pre-symbolized row.
fn key_from_slots(row: &[SymValue], slots: &[u32], buf: &mut Vec<SymValue>) {
    buf.clear();
    buf.extend(slots.iter().map(|&s| row[s as usize]));
}

/// Sym-space member matching: the pattern cells against the tuple's
/// already-built group key (member patterns only constrain the group's
/// key attributes, so the key projection is all that matters).
fn member_matches_sym(pat: &MemberSyms, key: &[SymValue]) -> bool {
    match pat {
        None => false,
        Some(cells) => cells
            .iter()
            .zip(key)
            .all(|(p, k)| p.is_none_or(|p| p == *k)),
    }
}

/// Translates one member's LHS pattern into symbols; `None` when a
/// pattern constant is a string the interner has never seen.
fn translate_member(interner: &Interner, m: &CfdMember) -> MemberSyms {
    m.pattern
        .iter()
        .map(|cell| match cell {
            None => Some(None),
            Some(v) => interner.sym_value(v).map(Some),
        })
        .collect::<Option<Vec<_>>>()
        .map(Vec::into_boxed_slice)
}

/// Batch `wildcard_pairs` over one live key group: sorts the positions
/// so the witness is the group's lowest position (the canonical batch
/// order), reading RHS values through the database.
fn group_pairs(rel_inst: &Relation, rhs: AttrId, mut positions: Vec<u32>) -> Vec<(usize, usize)> {
    positions.sort_unstable();
    crate::validator::wildcard_pairs_by(positions.iter().copied(), |p| {
        &rel_inst.get(p as usize).expect("indexed position valid")[rhs]
    })
}

/// Does an LHS pattern (aligned with `attrs`) match the tuple?
fn pattern_matches(attrs: &[AttrId], pat: &[Option<Value>], t: &Tuple) -> bool {
    attrs
        .iter()
        .zip(pat.iter())
        .all(|(a, p)| p.as_ref().is_none_or(|p| p == &t[*a]))
}

/// Does a compiled member's probe (most general) pattern match the
/// tuple?
fn member_matches(g: &CfdGroup, m: &CfdMember, t: &Tuple) -> bool {
    pattern_matches(&g.attrs, &m.pattern, t)
}

/// Collects into `buf` the original-Σ CFD indices a matched member's
/// violations fan out to, for the key group `t` belongs to. The
/// representative (`covers[0]`) always applies — its pattern is the
/// probe that just matched; a merged cover applies iff its own (more
/// specific) pattern also matches. Patterns only constrain the group's
/// key attributes, so any tuple carrying the key decides applicability
/// for the whole key group.
fn applicable_covers(g: &CfdGroup, m: &CfdMember, t: &Tuple, buf: &mut Vec<usize>) {
    buf.clear();
    buf.push(m.covers[0].idx);
    for c in &m.covers[1..] {
        if pattern_matches(&g.attrs, &c.pattern, t) {
            buf.push(c.idx);
        }
    }
}

/// Translates the projection of a tuple whose key cells are **already
/// interned** (every key projection is interned on insert; see
/// [`intern_key`]).
fn sym_key(interner: &Interner, t: &Tuple, attrs: &[AttrId], buf: &mut Vec<SymValue>) {
    buf.clear();
    buf.extend(attrs.iter().map(|a| {
        interner
            .sym_value(&t[*a])
            .expect("key projections of stream tuples are interned")
    }));
}

impl SigmaReport {
    /// Applies one streamed delta to a consumer-maintained report,
    /// implementing the documented consumer rule
    ///
    /// ```text
    /// after = renumber(before − resolved, moved) + introduced
    /// ```
    ///
    /// i.e. the resolved violations (labeled with pre-move positions) are
    /// removed first, the swap renumbering is applied to what survives,
    /// and the introduced violations (post-move positions) are added; the
    /// report is then re-sorted into the canonical order. Feeding every
    /// delta of a [`ValidatorStream`] through this keeps the report equal
    /// to [`ValidatorStream::current_report`] at all times.
    ///
    /// The `validator` argument resolves each violation's constraint
    /// index to its relation, so only positions of the renumbered
    /// relation are touched.
    pub fn apply_delta(&mut self, validator: &Validator, delta: &SigmaDelta) {
        if delta.is_quiet() {
            // The hot path for mutations on clean streams: nothing to
            // remove, renumber or add.
            return;
        }
        if !delta.cfd.resolved.is_empty() {
            let rm: HashSet<&(usize, CfdViolation), FxBuildHasher> =
                delta.cfd.resolved.iter().collect();
            self.cfd.retain(|v| !rm.contains(v));
        }
        if !delta.cind.resolved.is_empty() {
            let rm: HashSet<&(usize, CindViolation), FxBuildHasher> =
                delta.cind.resolved.iter().collect();
            self.cind.retain(|v| !rm.contains(v));
        }
        if let Some(mv) = &delta.moved {
            let renum = |p: &mut usize| {
                if *p == mv.from {
                    *p = mv.to;
                }
            };
            for (i, v) in self.cfd.iter_mut() {
                if validator.cfds()[*i].rel() != mv.rel {
                    continue;
                }
                match v {
                    CfdViolation::SingleTuple { tuple, .. } => renum(tuple),
                    CfdViolation::Pair { left, right } => {
                        renum(left);
                        renum(right);
                    }
                }
            }
            for (i, v) in self.cind.iter_mut() {
                if validator.cinds()[*i].lhs_rel() == mv.rel {
                    renum(&mut v.tuple);
                }
            }
        }
        self.cfd.extend(delta.cfd.introduced.iter().cloned());
        self.cind.extend(delta.cind.introduced.iter().cloned());
        // Removal alone preserves the canonical order; only a renumber
        // or an addition can break it.
        if delta.moved.is_some()
            || !delta.cfd.introduced.is_empty()
            || !delta.cind.introduced.is_empty()
        {
            self.sort();
        }
    }
}

/// What one [`ValidatorStream::compact`] call reclaimed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Emptied `SymIndex` key groups dropped across every live index
    /// tier (CFD group indexes, CIND target indexes, reverse CIND
    /// source indexes).
    pub key_groups_dropped: usize,
    /// Key groups still live after compaction, summed over the same
    /// tiers.
    pub key_groups_live: usize,
    /// Distinct interned strings before the interner rebuild.
    pub interned_strings_before: usize,
    /// Distinct interned strings after — exactly the strings still
    /// reachable from some live index key.
    pub interned_strings_after: usize,
    /// String payload bytes held before the rebuild.
    pub interned_bytes_before: usize,
    /// String payload bytes still held after.
    pub interned_bytes_after: usize,
}

impl CompactionStats {
    /// Interned strings the rebuild dropped.
    pub fn interned_strings_dropped(&self) -> usize {
        self.interned_strings_before - self.interned_strings_after
    }

    /// String payload bytes the rebuild reclaimed.
    pub fn interned_bytes_reclaimed(&self) -> usize {
        self.interned_bytes_before - self.interned_bytes_after
    }
}

impl condep_telemetry::Export for CompactionStats {
    fn export(&self, prefix: &str, out: &mut condep_telemetry::MetricsSnapshot) {
        let k = |name| condep_telemetry::key(prefix, name);
        out.counter(k("key_groups_dropped"), self.key_groups_dropped as u64);
        out.counter(k("key_groups_live"), self.key_groups_live as u64);
        out.counter(
            k("interned_strings_before"),
            self.interned_strings_before as u64,
        );
        out.counter(
            k("interned_strings_after"),
            self.interned_strings_after as u64,
        );
        out.counter(
            k("interned_bytes_before"),
            self.interned_bytes_before as u64,
        );
        out.counter(k("interned_bytes_after"), self.interned_bytes_after as u64);
        out.counter(
            k("interned_bytes_reclaimed"),
            self.interned_bytes_reclaimed() as u64,
        );
    }
}

/// One scoped member of a [`PairScope`]: `(member slot, applicable
/// original-Σ indices, old pairs)`, computed from the pre-deletion
/// state. The cover fan-out is stashed alongside because applicability
/// is a key-group property and the scoped tuple may be gone by
/// recomputation time.
type ScopedMember = (usize, Vec<usize>, Vec<(usize, usize)>);

/// One affected `(group, key)` pair-recomputation scope of a deletion.
/// The key group is held as its [`SymIndex`] slot handle — stable across
/// the removals between stash and recomputation.
struct PairScope {
    group: usize,
    slot: u32,
    /// The wildcard members matching the key, with their old pairs.
    members: Vec<ScopedMember>,
}

/// Collects the wildcard members matching the scoped tuple (through
/// `matches`, which sees each member's slot) together with their current
/// (pre-mutation) pair sets — the "before" side of a witness-restructure
/// scope. `None` when no member is affected.
fn stash_scope(
    g: &CfdGroup,
    group: usize,
    idx: &SymIndex,
    slot: u32,
    rel_inst: &Relation,
    scoped: &Tuple,
    matches: impl Fn(usize, &CfdMember) -> bool,
) -> Option<PairScope> {
    let mut members = Vec::new();
    let mut cov_buf: Vec<usize> = Vec::new();
    for (ms, m) in g.members.iter().enumerate() {
        if m.rhs_const.is_some() || !matches(ms, m) {
            continue;
        }
        applicable_covers(g, m, scoped, &mut cov_buf);
        let old = group_pairs(rel_inst, m.rhs, idx.positions_at(slot).collect());
        members.push((ms, cov_buf.clone(), old));
    }
    (!members.is_empty()).then_some(PairScope {
        group,
        slot,
        members,
    })
}

impl ValidatorStream {
    /// Materializes the stream state over an initial database, returning
    /// the stream together with the initial violations — the batched
    /// [`Validator::validate_sorted`] report the live state starts from.
    pub fn new_validated(validator: Validator, db: Database) -> (Self, SigmaReport) {
        let report = validator.validate_sorted(&db);
        let stream = ValidatorStream::materialize(validator, db, report.clone());
        (stream, report)
    }

    /// Materializes the stream over a database whose violation report is
    /// **already known** (from a prior batch run, monitor or stream):
    /// the live group indexes are still built, but the batch validation
    /// sweep [`ValidatorStream::new_validated`] performs is skipped.
    ///
    /// `report` must be exactly [`Validator::validate_sorted`] of `db`
    /// (debug-asserted) — seeding a stale report desynchronizes the
    /// live state permanently.
    pub fn with_report(validator: Validator, db: Database, report: SigmaReport) -> Self {
        debug_assert_eq!(
            report,
            validator.validate_sorted(&db),
            "seed report disagrees with the database"
        );
        ValidatorStream::materialize(validator, db, report)
    }

    /// Builds the live indexes and violation sets from a trusted report.
    fn materialize(validator: Validator, db: Database, report: SigmaReport) -> Self {
        let build_clock = Stopwatch::start();
        let interner = Interner::from_database(&db);
        let cfd_indexes = validator
            .cfd_groups()
            .iter()
            .map(|g| {
                SymIndex::build_filtered_interned(db.relation(g.rel), &g.attrs, &interner, |_| true)
            })
            .collect();
        let cind_targets = validator
            .cind_groups()
            .iter()
            .map(|g| {
                SymIndex::build_filtered_interned(db.relation(g.rhs_rel), &g.y, &interner, |t| {
                    g.yp.iter().all(|(a, v)| &t[*a] == v)
                })
            })
            .collect();
        let cind_sources: Vec<Vec<SymIndex>> = validator
            .cind_groups()
            .iter()
            .map(|g| {
                g.members
                    .iter()
                    .map(|m| {
                        let cind = &validator.cinds()[m.idx];
                        SymIndex::build_filtered_interned(
                            db.relation(cind.lhs_rel()),
                            &m.x_perm,
                            &interner,
                            |t| cind.triggers(t),
                        )
                    })
                    .collect()
            })
            .collect();
        let live_cfd = report.cfd.into_iter().collect();
        let live_cind = report.cind.into_iter().collect();

        // Dense-seeding convention: the tuple at seed position `p` gets
        // `TupleId(p)` — what lets external ground truth (e.g. the gen
        // dirt injector) hand out ids any stream over the same database
        // resolves.
        let ids = db
            .iter()
            .map(|(_, inst)| TupleIdMap::identity(inst.len()))
            .collect();

        // The one-pass symbolization layout: per relation, the union of
        // every group's key attributes, plus each group's slots into it.
        let sym_attrs = Self::layout_of(&validator, db.schema().len());
        let (cfd_group_slots, cfd_rhs_slots, cind_y_slots, cind_x_slots) =
            Self::slot_tables(&validator, &sym_attrs);

        // Seed the resident row cache: `Interner::from_database` has
        // interned every value of `db`, so this is pure lookups.
        let sym_rows: Vec<Vec<SymValue>> = db
            .iter()
            .map(|(r, inst)| {
                let attrs = &sym_attrs[r.index()];
                let mut rows = Vec::with_capacity(inst.len() * attrs.len());
                for t in inst.iter() {
                    rows.extend(attrs.iter().map(|a| {
                        interner
                            .sym_value(&t[*a])
                            .expect("seed interner covers the database")
                    }));
                }
                rows
            })
            .collect();

        let mut stream = ValidatorStream {
            validator,
            db,
            interner,
            cfd_indexes,
            cind_targets,
            cind_sources,
            live_cfd,
            live_cind,
            ids,
            sym_attrs,
            sym_rows,
            cfd_group_slots,
            cfd_rhs_slots,
            cind_y_slots,
            cind_x_slots,
            member_syms: Vec::new(),
            member_syms_gen: 0,
            member_syms_pending: 0,
            telemetry: StreamTelemetry::new(),
        };
        stream.rebuild_member_syms();
        stream
            .telemetry
            .materialize_us
            .record_us(build_clock.elapsed_us());
        stream
    }

    /// The stream's instrument panel: latency distributions, hot-path
    /// counters and the recent-activity journal.
    pub fn telemetry(&self) -> &StreamTelemetry {
        &self.telemetry
    }

    /// Rebounds the telemetry journal to keep the newest `capacity`
    /// events (min 1; default 256) — a long-running monitor can retain
    /// a full event tail instead of the last 256. Shrinking evicts the
    /// oldest retained events; totals and sequence numbers survive.
    pub fn set_journal_capacity(&mut self, capacity: usize) {
        self.telemetry.set_journal_capacity(capacity);
    }

    /// Turns recording on or off at runtime, **resetting** all recorded
    /// state either way (counters to zero, journal emptied). With
    /// recording off every instrumentation site costs one branch; the
    /// compile-time equivalent is building without the `telemetry`
    /// feature.
    pub fn set_telemetry_enabled(&mut self, enabled: bool) {
        self.telemetry = if enabled {
            StreamTelemetry::new()
        } else {
            StreamTelemetry::disabled()
        };
    }

    /// The per-relation symbolization layout of a compiled suite: the
    /// sorted union of every group's key attributes, member RHS cells
    /// and CIND source/target columns.
    fn layout_of(validator: &Validator, n_rels: usize) -> Vec<Vec<AttrId>> {
        let mut sets: Vec<BTreeSet<AttrId>> = (0..n_rels).map(|_| BTreeSet::new()).collect();
        for g in validator.cfd_groups() {
            sets[g.rel.index()].extend(g.attrs.iter().copied());
            // Member RHS cells ride along in the row so pair-witness
            // checks are symbol compares, not tuple-value compares.
            sets[g.rel.index()].extend(g.members.iter().map(|m| m.rhs));
        }
        for g in validator.cind_groups() {
            sets[g.rhs_rel.index()].extend(g.y.iter().copied());
            for m in &g.members {
                let cind = &validator.cinds()[m.idx];
                sets[cind.lhs_rel().index()].extend(m.x_perm.iter().copied());
            }
        }
        sets.into_iter().map(|s| s.into_iter().collect()).collect()
    }

    /// Each group's slots into its relation's symbolized-row layout.
    #[allow(clippy::type_complexity)]
    fn slot_tables(
        validator: &Validator,
        sym_attrs: &[Vec<AttrId>],
    ) -> (
        Vec<Vec<u32>>,
        Vec<Vec<u32>>,
        Vec<Vec<u32>>,
        Vec<Vec<Vec<u32>>>,
    ) {
        let slot_of = |rel: RelId, a: AttrId| -> u32 {
            sym_attrs[rel.index()]
                .iter()
                .position(|x| *x == a)
                .expect("every group key attribute is in its relation's layout") as u32
        };
        let cfd_group_slots = validator
            .cfd_groups()
            .iter()
            .map(|g| g.attrs.iter().map(|a| slot_of(g.rel, *a)).collect())
            .collect();
        let cfd_rhs_slots = validator
            .cfd_groups()
            .iter()
            .map(|g| g.members.iter().map(|m| slot_of(g.rel, m.rhs)).collect())
            .collect();
        let cind_y_slots = validator
            .cind_groups()
            .iter()
            .map(|g| g.y.iter().map(|a| slot_of(g.rhs_rel, *a)).collect())
            .collect();
        let cind_x_slots = validator
            .cind_groups()
            .iter()
            .map(|g| {
                g.members
                    .iter()
                    .map(|m| {
                        let cind = &validator.cinds()[m.idx];
                        m.x_perm
                            .iter()
                            .map(|a| slot_of(cind.lhs_rel(), *a))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        (cfd_group_slots, cfd_rhs_slots, cind_y_slots, cind_x_slots)
    }

    /// Splices newly-promoted dependencies into the **live** suite,
    /// without re-materializing: held [`TupleId`]s, existing violations
    /// and all per-group state stay untouched. Only the affected groups
    /// recompile (see [`Validator::add_dependencies`]), only the
    /// relations whose symbolization layout grew re-cache their rows,
    /// and only the new members' indexes are built. Returns the new
    /// constraints' violations against the current database — sorted,
    /// indexed by their final Σ indices, and already folded into
    /// [`ValidatorStream::current_report`] (consumers mirroring the
    /// report via [`SigmaReport::apply_delta`] should splice them in as
    /// introduced violations).
    pub fn add_dependencies(
        &mut self,
        cfds: Vec<NormalCfd>,
        cinds: Vec<NormalCind>,
    ) -> SigmaReport {
        if cfds.is_empty() && cinds.is_empty() {
            return SigmaReport::default();
        }
        let (n_cfds, n_cinds) = (cfds.len(), cinds.len());
        // The initial sweep for the newcomers, compiled exactly as the
        // spliced members are (uncovered singletons) so the violations
        // transfer index-shifted but otherwise verbatim.
        let sub = Validator::new_uncovered(cfds.clone(), cinds.clone());
        let old_cfd_groups = self.validator.cfd_groups().len();
        let old_cind_members: Vec<usize> = self
            .validator
            .cind_groups()
            .iter()
            .map(|g| g.members.len())
            .collect();
        let (cfd_range, cind_range) = self.validator.add_dependencies(cfds, cinds);

        // Grow the symbolization layout, re-caching the rows of every
        // relation whose layout changed. Interning the newly covered
        // cells must happen before any index build below — filtered
        // index construction expects key cells to be interned already.
        let new_sym_attrs = Self::layout_of(&self.validator, self.db.schema().len());
        {
            let Self {
                db,
                interner,
                sym_rows,
                sym_attrs,
                ..
            } = self;
            for (rel, inst) in db.iter() {
                let r = rel.index();
                if new_sym_attrs[r] == sym_attrs[r] {
                    continue;
                }
                let attrs = &new_sym_attrs[r];
                let mut rows = Vec::with_capacity(inst.len() * attrs.len());
                for t in inst.iter() {
                    rows.extend(attrs.iter().map(|a| interner.intern_value(&t[*a])));
                }
                sym_rows[r] = rows;
            }
        }
        self.sym_attrs = new_sym_attrs;
        let (a, b, c, d) = Self::slot_tables(&self.validator, &self.sym_attrs);
        self.cfd_group_slots = a;
        self.cfd_rhs_slots = b;
        self.cind_y_slots = c;
        self.cind_x_slots = d;
        self.rebuild_member_syms();

        // Live indexes for the spliced groups and members.
        {
            let Self {
                validator,
                db,
                interner,
                cfd_indexes,
                cind_targets,
                cind_sources,
                ..
            } = self;
            for g in &validator.cfd_groups()[old_cfd_groups..] {
                cfd_indexes.push(SymIndex::build_filtered_interned(
                    db.relation(g.rel),
                    &g.attrs,
                    interner,
                    |_| true,
                ));
            }
            for (gi, g) in validator.cind_groups().iter().enumerate() {
                if gi >= cind_targets.len() {
                    cind_targets.push(SymIndex::build_filtered_interned(
                        db.relation(g.rhs_rel),
                        &g.y,
                        interner,
                        |t| g.yp.iter().all(|(a, v)| &t[*a] == v),
                    ));
                    cind_sources.push(Vec::new());
                }
                let start = old_cind_members.get(gi).copied().unwrap_or(0);
                for m in &g.members[start..] {
                    let cind = &validator.cinds()[m.idx];
                    cind_sources[gi].push(SymIndex::build_filtered_interned(
                        db.relation(cind.lhs_rel()),
                        &m.x_perm,
                        interner,
                        |t| cind.triggers(t),
                    ));
                }
            }
        }

        let mut report = sub.validate_sorted(&self.db);
        for (i, _) in report.cfd.iter_mut() {
            *i += cfd_range.start;
        }
        for (i, _) in report.cind.iter_mut() {
            *i += cind_range.start;
        }
        self.live_cfd.extend(report.cfd.iter().cloned());
        self.live_cind.extend(report.cind.iter().cloned());
        self.telemetry
            .record_promote(n_cfds, n_cinds, report.cfd.len() + report.cind.len());
        report
    }

    /// Retires dependencies from the live suite (see
    /// [`Validator::retire_dependencies`]): their violations leave the
    /// live state and are returned — sorted, as the resolutions a
    /// report mirror should apply. Indices stay allocated; later
    /// [`ValidatorStream::add_dependencies`] calls append fresh ones.
    pub fn retire_dependencies(&mut self, cfd_idxs: &[usize], cind_idxs: &[usize]) -> SigmaReport {
        let log = self.validator.retire_dependencies(cfd_idxs, cind_idxs);
        if log.is_empty() {
            return SigmaReport::default();
        }
        // Replay the member removals in order so the per-member source
        // indexes stay aligned with the recompiled groups.
        for &(gi, mi) in &log.cind_members_removed {
            self.cind_sources[gi].remove(mi);
        }
        // The symbolization layout stays a (possibly proper) superset of
        // what the surviving groups need — keeping it avoids re-caching
        // any rows, and the slot tables still resolve every attribute.
        let (a, b, c, d) = Self::slot_tables(&self.validator, &self.sym_attrs);
        self.cfd_group_slots = a;
        self.cfd_rhs_slots = b;
        self.cind_y_slots = c;
        self.cind_x_slots = d;
        self.rebuild_member_syms();

        let mut resolved = SigmaReport::default();
        let retired: HashSet<usize> = log.cfds.iter().copied().collect();
        self.live_cfd.retain(|v| {
            if retired.contains(&v.0) {
                resolved.cfd.push(v.clone());
                false
            } else {
                true
            }
        });
        let retired: HashSet<usize> = log.cinds.iter().copied().collect();
        self.live_cind.retain(|v| {
            if retired.contains(&v.0) {
                resolved.cind.push(v.clone());
                false
            } else {
                true
            }
        });
        resolved.sort();
        self.telemetry.record_retire(
            log.cfds.len(),
            log.cinds.len(),
            resolved.cfd.len() + resolved.cind.len(),
        );
        resolved
    }

    /// Re-translates every member pattern against the current interner
    /// (after a seed build or an interner compaction).
    fn rebuild_member_syms(&mut self) {
        let Self {
            validator,
            interner,
            member_syms,
            member_syms_gen,
            member_syms_pending,
            ..
        } = self;
        *member_syms = validator
            .cfd_groups()
            .iter()
            .map(|g| {
                g.members
                    .iter()
                    .map(|m| translate_member(interner, m))
                    .collect()
            })
            .collect();
        *member_syms_pending = member_syms.iter().flatten().filter(|s| s.is_none()).count();
        *member_syms_gen = interner.len();
    }

    /// Retries the still-untranslated member patterns when the interner
    /// has grown since the last refresh (already-translated patterns
    /// stay valid — symbols are stable between compactions).
    fn refresh_member_syms(&mut self) {
        let Self {
            validator,
            interner,
            member_syms,
            member_syms_gen,
            member_syms_pending,
            ..
        } = self;
        if *member_syms_pending > 0 && interner.len() != *member_syms_gen {
            let mut pending = 0;
            for (g, syms) in validator.cfd_groups().iter().zip(member_syms.iter_mut()) {
                for (m, slot) in g.members.iter().zip(syms.iter_mut()) {
                    if slot.is_none() {
                        *slot = translate_member(interner, m);
                        if slot.is_none() {
                            pending += 1;
                        }
                    }
                }
            }
            *member_syms_pending = pending;
        }
        *member_syms_gen = interner.len();
    }

    /// Compacts the stream's long-lived state: drops every **emptied**
    /// key group from the live indexes (CFD group indexes, CIND target
    /// indexes and reverse CIND source indexes), rebuilds the
    /// [`Interner`] over the strings still reachable from live keys
    /// (remapping every stored key to the new numbering), and releases
    /// the excess capacity churn left in the [`TupleId`] maps (live ids
    /// are the only id storage). Returns what was reclaimed.
    ///
    /// Removals keep a group's slot — and its key's interned strings —
    /// forever, so a months-long monitor over high-key-churn data would
    /// otherwise grow with the distinct keys ever seen rather than with
    /// the live data (the ROADMAP's known leaks, both closed here).
    /// Compaction is `O(keys + live positions)` over each index plus
    /// `O(live strings)` for the interner rebuild, and preserves every
    /// live `(key, position)` pair **and every live [`TupleId`]**, so
    /// the violation state, all delta semantics and held id handles are
    /// untouched — call it whenever the reclaimable share is worth the
    /// rebuild (e.g. periodically, or when an index's distinct-key count
    /// far exceeds the relation's size).
    pub fn compact(&mut self) -> CompactionStats {
        let span = SpanTimer::start(&self.telemetry.compact_us);
        let mut stats = CompactionStats {
            interned_strings_before: self.interner.len(),
            interned_bytes_before: self.interner.str_bytes(),
            ..CompactionStats::default()
        };
        for idx in self
            .cfd_indexes
            .iter_mut()
            .chain(self.cind_targets.iter_mut())
            .chain(self.cind_sources.iter_mut().flatten())
        {
            stats.key_groups_dropped += idx.compact();
            stats.key_groups_live += idx.distinct_keys();
        }
        // Interner rebuild over live symbols only: every string still
        // reachable from some live index key or resident cached row is
        // re-interned (first-seen order across the tiers, so the result
        // is deterministic), everything else is dropped, and every
        // stored key and cached cell is remapped to the new numbering.
        let mut fresh = Interner::new();
        let mut remap: Vec<Option<Sym>> = vec![None; self.interner.len()];
        for idx in self
            .cfd_indexes
            .iter()
            .chain(self.cind_targets.iter())
            .chain(self.cind_sources.iter().flatten())
        {
            for (key, _) in idx.groups() {
                for cell in key {
                    if let SymValue::Str(sym) = cell {
                        let slot = &mut remap[sym.0 as usize];
                        if slot.is_none() {
                            *slot = Some(fresh.intern(self.interner.resolve_arc(*sym)));
                        }
                    }
                }
            }
        }
        // The resident row cache is the other liveness root: a cell a
        // tuple only carries through a CIND role it does not play is in
        // no index key, but the delete path will still read it. Re-root
        // and rewrite the cached rows in the same pass — retention is
        // still bounded by the live data.
        for rows in &mut self.sym_rows {
            for cell in rows.iter_mut() {
                if let SymValue::Str(sym) = cell {
                    let slot = &mut remap[sym.0 as usize];
                    if slot.is_none() {
                        *slot = Some(fresh.intern(self.interner.resolve_arc(*sym)));
                    }
                    *cell = SymValue::Str(slot.expect("just interned"));
                }
            }
        }
        let translate = |sv: SymValue| match sv {
            SymValue::Str(sym) => {
                SymValue::Str(remap[sym.0 as usize].expect("live key symbols are remapped"))
            }
            inline => inline,
        };
        for idx in self
            .cfd_indexes
            .iter_mut()
            .chain(self.cind_targets.iter_mut())
            .chain(self.cind_sources.iter_mut().flatten())
        {
            idx.remap_keys(translate);
        }
        self.interner = fresh;
        // The cached pattern translations used the old numbering.
        self.rebuild_member_syms();
        // Id maps only store live ids; just release churn's excess
        // capacity.
        for ids in &mut self.ids {
            ids.shrink();
        }
        stats.interned_strings_after = self.interner.len();
        stats.interned_bytes_after = self.interner.str_bytes();
        span.stop();
        self.telemetry.record_compaction(&stats);
        stats
    }

    /// The stable id of the tuple currently at dense position `pos` of
    /// `rel` — translate **post-mutation** violation positions through
    /// this to address them without replaying swap renumbers.
    pub fn tuple_id_at(&self, rel: RelId, pos: usize) -> Option<TupleId> {
        self.ids[rel.index()].id_at(pos)
    }

    /// The current dense position behind a stable id; `None` once the
    /// tuple is gone (deleted, or rewritten by an update).
    pub fn position_of(&self, rel: RelId, id: TupleId) -> Option<usize> {
        self.ids[rel.index()].pos_of(id)
    }

    /// The tuple behind a stable id, read through the live id ⇄ position
    /// map.
    pub fn tuple_by_id(&self, rel: RelId, id: TupleId) -> Option<&Tuple> {
        self.position_of(rel, id)
            .and_then(|p| self.db.relation(rel).get(p))
    }

    /// The compiled suite.
    pub fn validator(&self) -> &Validator {
        &self.validator
    }

    /// The current database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Consumes the stream, returning the accumulated database.
    pub fn into_db(self) -> Database {
        self.db
    }

    /// The materialized violation set, sorted into the canonical report
    /// order — always equal to [`Validator::validate_sorted`] on
    /// [`ValidatorStream::db`], at delta cost instead of a sweep.
    pub fn current_report(&self) -> SigmaReport {
        let mut report = SigmaReport {
            cfd: self.live_cfd.iter().cloned().collect(),
            cind: self.live_cind.iter().cloned().collect(),
        };
        report.sort();
        report
    }

    /// Number of currently outstanding violations.
    pub fn violation_count(&self) -> usize {
        self.live_cfd.len() + self.live_cind.len()
    }

    /// Validates and inserts one tuple, returning the violations it
    /// introduces **and** the violations it resolves (an arriving CIND
    /// target tuple supplies the partner its orphaned source tuples were
    /// missing). An already-present tuple is a no-op: instances are sets.
    ///
    /// Semantics per constraint kind:
    ///
    /// * constant-RHS CFD — the tuple itself mismatches: one
    ///   `SingleTuple` violation;
    /// * wildcard-RHS CFD — the tuple disagrees on `A` with its key
    ///   group: one `Pair` witness against the group's first (lowest
    ///   position) resident tuple;
    /// * CIND (source role) — the tuple is triggered but finds no
    ///   partner in the live target index;
    /// * CIND (target role) — never *creates* a violation; if the tuple
    ///   carries a key no target held before, every orphaned source
    ///   tuple with that key is **resolved**.
    pub fn insert_tuple(&mut self, rel: RelId, t: Tuple) -> Result<SigmaDelta, ModelError> {
        let span = SpanTimer::start(&self.telemetry.mutation_us);
        let groups0 = self.telemetry.probes_total();
        self.db.check_tuple(rel, &t)?;
        let row = self.sym_row_intern(rel, &t);
        // Interning may have made a pending member pattern translatable;
        // matching below is sym-space, so refresh first (O(1) when
        // nothing is pending).
        self.refresh_member_syms();
        let delta = self.insert_inner(rel, t, &row)?;
        span.stop();
        // A resident tuple allocates no id: that is the no-op signal.
        let effective = delta.ids.born.is_some();
        self.telemetry
            .record_single(MutKind::Insert, effective.then_some(&delta), groups0);
        Ok(delta)
    }

    /// The insert engine. `row` is the tuple's pre-symbolized key-cell
    /// row ([`ValidatorStream::sym_row_intern`]): group keys are `Copy`
    /// slot reads and member matching is a word compare against the
    /// cached pattern symbols — no string is hashed per group.
    fn insert_inner(
        &mut self,
        rel: RelId,
        t: Tuple,
        row: &[SymValue],
    ) -> Result<SigmaDelta, ModelError> {
        let mut delta = SigmaDelta::default();
        if !self.db.insert(rel, t.clone())? {
            return Ok(delta);
        }
        let pos = self.db.relation(rel).len() - 1;
        let Self {
            validator,
            db,
            cfd_indexes,
            cind_targets,
            cind_sources,
            live_cfd,
            live_cind,
            ids,
            sym_rows,
            cfd_group_slots,
            cfd_rhs_slots,
            cind_y_slots,
            cind_x_slots,
            member_syms,
            telemetry,
            ..
        } = self;
        delta.ids.born = Some(ids[rel.index()].alloc(pos));
        debug_assert_eq!(sym_rows[rel.index()].len(), pos * row.len());
        sym_rows[rel.index()].extend_from_slice(row);
        let mut key_buf: Vec<SymValue> = Vec::new();
        let mut cov_buf: Vec<usize> = Vec::new();
        // Hot-loop accounting stays in a local; one flush at the end.
        let mut hash_probes = 0u64;

        // Target-role updates first, so a self-referential CIND can be
        // satisfied by the arriving tuple itself (batch semantics allow
        // t2 = t1) — and so resolution sees the pre-arrival emptiness.
        for (gi, g) in validator.cind_groups().iter().enumerate() {
            if g.rhs_rel != rel || !g.yp.iter().all(|(a, v)| &t[*a] == v) {
                continue;
            }
            key_from_slots(row, &cind_y_slots[gi], &mut key_buf);
            // One hash probe for the whole target-role step: the slot
            // handle answers emptiness and takes the insert.
            hash_probes += 1;
            let slot = cind_targets[gi].ensure_slot(&key_buf);
            let was_absent = !cind_targets[gi].occupied_at(slot);
            cind_targets[gi].insert_at(slot, pos as u32);
            if !was_absent {
                continue;
            }
            // First target with this key: every triggered source tuple
            // carrying it had a violation — all resolved now.
            for (m, sidx) in g.members.iter().zip(&cind_sources[gi]) {
                let cind = &validator.cinds()[m.idx];
                let source = db.relation(cind.lhs_rel());
                for src in sidx.positions(&key_buf) {
                    let t1 = source.get(src as usize).expect("indexed position valid");
                    let payload = t1.project(cind.x());
                    for &cidx in &m.covers {
                        let v = (
                            cidx,
                            CindViolation {
                                tuple: src as usize,
                                key: payload.clone(),
                            },
                        );
                        let was_live = live_cind.remove(&v);
                        debug_assert!(was_live, "orphaned source must have been live");
                        delta.cind.resolved.push(v);
                    }
                }
            }
        }

        // CFD groups over this relation: check members, then join the
        // tuple's key group.
        for (gi, (g, idx)) in validator
            .cfd_groups()
            .iter()
            .zip(cfd_indexes.iter_mut())
            .enumerate()
        {
            if g.rel != rel {
                continue;
            }
            key_from_slots(row, &cfd_group_slots[gi], &mut key_buf);
            // One hash probe per (mutation, group): the slot handle makes
            // every witness read and the final insert O(1), shared
            // across all wildcard members asking about this key.
            hash_probes += 1;
            let slot = idx.ensure_slot(&key_buf);
            for (mi, m) in g.members.iter().enumerate() {
                if !member_matches_sym(&member_syms[gi][mi], &key_buf) {
                    continue;
                }
                match &m.rhs_const {
                    Some(expected) => {
                        let found = &t[m.rhs];
                        if found != expected {
                            applicable_covers(g, m, &t, &mut cov_buf);
                            for &cidx in &cov_buf {
                                delta.cfd.introduced.push((
                                    cidx,
                                    CfdViolation::SingleTuple {
                                        tuple: pos,
                                        found: found.clone(),
                                        expected: expected.clone(),
                                    },
                                ));
                            }
                        }
                    }
                    None => {
                        // Exactly the batch `wildcard_pairs` delta: the
                        // arriving tuple has the highest position, so it
                        // adds one pair iff its RHS differs from the
                        // group's first (lowest position) tuple.
                        let first = idx.min_at(slot);
                        if let Some(first) = first {
                            let rslot = cfd_rhs_slots[gi][mi] as usize;
                            let srows = &sym_rows[rel.index()];
                            if srows[first as usize * row.len() + rslot] != row[rslot] {
                                applicable_covers(g, m, &t, &mut cov_buf);
                                for &cidx in &cov_buf {
                                    delta.cfd.introduced.push((
                                        cidx,
                                        CfdViolation::Pair {
                                            left: first as usize,
                                            right: pos,
                                        },
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            idx.insert_at(slot, pos as u32);
        }

        // CIND source role: the new tuple must find a partner, and joins
        // its members' source indexes.
        for (gi, g) in validator.cind_groups().iter().enumerate() {
            for (mi, (m, sidx)) in g
                .members
                .iter()
                .zip(cind_sources[gi].iter_mut())
                .enumerate()
            {
                let cind = &validator.cinds()[m.idx];
                if cind.lhs_rel() != rel || !cind.triggers(&t) {
                    continue;
                }
                key_from_slots(row, &cind_x_slots[gi][mi], &mut key_buf);
                hash_probes += 2;
                sidx.insert_key(pos as u32, &key_buf);
                if !cind_targets[gi].contains_key(&key_buf) {
                    let payload = t.project(cind.x());
                    for &cidx in &m.covers {
                        delta.cind.introduced.push((
                            cidx,
                            CindViolation {
                                tuple: pos,
                                key: payload.clone(),
                            },
                        ));
                    }
                }
            }
        }

        live_cfd.extend(delta.cfd.introduced.iter().cloned());
        live_cind.extend(delta.cind.introduced.iter().cloned());
        telemetry.hash_probes.add(hash_probes);
        Ok(delta)
    }

    /// Deletes one tuple by value, returning the violations that
    /// disappear with it, the violations its absence introduces
    /// (orphaned CIND sources, relabeled pair witnesses), and the swap
    /// renumbering ([`SigmaDelta::moved`]). `None` when the tuple is not
    /// present.
    pub fn delete_tuple(&mut self, rel: RelId, t: &Tuple) -> Option<SigmaDelta> {
        let span = SpanTimer::start(&self.telemetry.mutation_us);
        let groups0 = self.telemetry.probes_total();
        let delta = self.delete_inner(rel, t);
        span.stop();
        self.telemetry
            .record_single(MutKind::Delete, delta.as_ref(), groups0);
        delta
    }

    /// The delete engine. The tuple's (and the moved tuple's)
    /// pre-symbolized key-cell rows come straight out of the resident
    /// row cache — no string is hashed through the interner anywhere on
    /// the delete path.
    fn delete_inner(&mut self, rel: RelId, t: &Tuple) -> Option<SigmaDelta> {
        let pos = self.db.relation(rel).position(t)?;
        let last = self.db.relation(rel).len() - 1;
        let moved: Option<Tuple> = (pos != last).then(|| {
            self.db
                .relation(rel)
                .get(last)
                .expect("last position valid")
                .clone()
        });
        let mut delta = SigmaDelta::default();
        let Self {
            validator,
            db,
            cfd_indexes,
            cind_targets,
            cind_sources,
            live_cfd,
            live_cind,
            ids,
            sym_attrs,
            sym_rows,
            cfd_group_slots,
            cfd_rhs_slots,
            cind_y_slots,
            cind_x_slots,
            member_syms,
            telemetry,
            ..
        } = self;
        // Hot-loop accounting stays in locals; one flush at the end.
        let mut hash_probes = 0u64;
        let mut slot_probes = 0u64;
        let mut pair_fast = 0u64;
        let mut pair_recompute = 0u64;
        // The deleted and moved tuples' cached rows, copied out so the
        // cache itself can be mutated at the end of the deletion.
        let stride = sym_attrs[rel.index()].len();
        let srows = &sym_rows[rel.index()];
        let row: Vec<SymValue> = srows[pos * stride..(pos + 1) * stride].to_vec();
        let row_m: Option<Vec<SymValue>> = moved
            .as_ref()
            .map(|_| srows[last * stride..(last + 1) * stride].to_vec());
        let row: &[SymValue] = &row;
        let mut key_buf: Vec<SymValue> = Vec::new();
        let mut cov_buf: Vec<usize> = Vec::new();
        // Renumber for positions emitted *after* the swap.
        let renum = |p: u32| -> usize {
            if p as usize == last {
                pos
            } else {
                p as usize
            }
        };

        // ---- CFD groups: resolve the tuple's own singles, then settle
        // the affected key groups' pair witnesses.
        //
        // Pair fast path: a group's pairs all witness against its first
        // (lowest position) tuple, so deleting a *non-witness* tuple can
        // only remove its own pair, and a moved tuple that stays above
        // the witness only relabels its pair — both `O(1)` tuple reads
        // after one integer scan for the group minimum. Only when the
        // witness itself is deleted (or the moved tuple becomes the new
        // witness) does the group's pair set restructure; those rare
        // scopes are stashed for a full before/after recomputation.
        let mut scopes: Vec<PairScope> = Vec::new();
        let mut key_t: Vec<SymValue> = Vec::new();
        let mut key_m_buf: Vec<SymValue> = Vec::new();
        for (gi, (g, idx)) in validator
            .cfd_groups()
            .iter()
            .zip(cfd_indexes.iter_mut())
            .enumerate()
        {
            if g.rel != rel {
                continue;
            }
            key_from_slots(row, &cfd_group_slots[gi], &mut key_t);
            // Zero hash probes per (mutation, group): the index's
            // per-position slot record recovers the deleted tuple's
            // group directly, and the handle serves the witness read,
            // the pair-scope scans and the final removal.
            slot_probes += 1;
            let slot_t = idx
                .slot_of_pos(pos as u32)
                .expect("deleted tuple is indexed in every group of its relation");
            // One member-match predicate per scoped tuple: a sym compare
            // against the cached pattern symbols. Matching only reads
            // the group-key projection, so the key stands in for the
            // tuple.
            let t_matches =
                |mi: usize, _m: &CfdMember| member_matches_sym(&member_syms[gi][mi], &key_t);
            for (mi, m) in g.members.iter().enumerate() {
                if !t_matches(mi, m) {
                    continue;
                }
                if let Some(expected) = &m.rhs_const {
                    let found = &t[m.rhs];
                    if found != expected {
                        applicable_covers(g, m, t, &mut cov_buf);
                        for &cidx in &cov_buf {
                            let v = (
                                cidx,
                                CfdViolation::SingleTuple {
                                    tuple: pos,
                                    found: found.clone(),
                                    expected: expected.clone(),
                                },
                            );
                            let was_live = live_cfd.remove(&v);
                            debug_assert!(was_live, "deleted single must have been live");
                            delta.cfd.resolved.push(v);
                        }
                    }
                }
            }
            let key_m: Option<&[SymValue]> = match &row_m {
                Some(row_m) => {
                    key_from_slots(row_m, &cfd_group_slots[gi], &mut key_m_buf);
                    Some(&key_m_buf)
                }
                None => None,
            };
            // The moved tuple's group likewise comes from the slot
            // record; distinct keys own distinct slots, so handle
            // equality is key equality.
            let slot_m: Option<u32> = row_m.as_ref().map(|_| {
                slot_probes += 1;
                idx.slot_of_pos(last as u32)
                    .expect("moved tuple is indexed in every group of its relation")
            });
            let same_key = slot_m == Some(slot_t);
            let m_matches = |mi: usize, _m: &CfdMember| match &key_m {
                Some(km) => member_matches_sym(&member_syms[gi][mi], km),
                None => false,
            };

            // The deleted tuple's key group.
            let fmin = idx.min_at(slot_t).expect("deleted tuple is in its group");
            if fmin as usize != pos {
                pair_fast += 1;
                // `pos` was not the witness (fmin < pos survives, and a
                // same-key moved tuple renumbers *above* fmin, since
                // pos > fmin). Resolve the deleted tuple's own pair and
                // relabel the moved tuple's, per matching member.
                let srows = &sym_rows[rel.index()];
                let first_row = &srows[fmin as usize * stride..(fmin as usize + 1) * stride];
                for (mi, m) in g.members.iter().enumerate() {
                    if m.rhs_const.is_some() || !t_matches(mi, m) {
                        continue;
                    }
                    // The fan-out is computed at most once per member —
                    // lazily, since the common case (RHS agrees with the
                    // witness) emits nothing — and shared between the two
                    // branches: `same_key` means the moved tuple carries
                    // the same key, and applicability is a key-group
                    // property.
                    let mut fanned = false;
                    let mut fan_out = |buf: &mut Vec<usize>| {
                        if !fanned {
                            applicable_covers(g, m, t, buf);
                            fanned = true;
                        }
                    };
                    let rslot = cfd_rhs_slots[gi][mi] as usize;
                    if first_row[rslot] != row[rslot] {
                        fan_out(&mut cov_buf);
                        for &cidx in &cov_buf {
                            let v = (
                                cidx,
                                CfdViolation::Pair {
                                    left: fmin as usize,
                                    right: pos,
                                },
                            );
                            let was_live = live_cfd.remove(&v);
                            debug_assert!(was_live, "deleted pair must have been live");
                            delta.cfd.resolved.push(v);
                        }
                    }
                    if same_key {
                        // The moved tuple's pair relabels with it; the
                        // consumer's renumber step covers this, so it is
                        // not a delta entry. A pair exists exactly when
                        // the moved tuple disagrees with the witness, so
                        // the live set is only touched when there is one.
                        let rm = row_m.as_deref().expect("same_key implies a move");
                        if first_row[rslot] != rm[rslot] {
                            fan_out(&mut cov_buf);
                            for &cidx in &cov_buf {
                                let was_live = live_cfd.remove(&(
                                    cidx,
                                    CfdViolation::Pair {
                                        left: fmin as usize,
                                        right: last,
                                    },
                                ));
                                debug_assert!(was_live, "relabeled pair must have been live");
                                live_cfd.insert((
                                    cidx,
                                    CfdViolation::Pair {
                                        left: fmin as usize,
                                        right: pos,
                                    },
                                ));
                            }
                        }
                    }
                }
            } else if idx.positions_at(slot_t).nth(1).is_some() {
                // The witness itself goes: the group's pairs
                // restructure. Stash the old pairs for recomputation.
                // (A singleton group has no pairs on either side of the
                // deletion — nothing to stash.)
                pair_recompute += 1;
                scopes.extend(stash_scope(
                    g,
                    gi,
                    idx,
                    slot_t,
                    db.relation(rel),
                    t,
                    t_matches,
                ));
            }

            // The moved tuple's key group, when it is a different one.
            if let (Some(mt), Some(sm)) = (&moved, slot_m) {
                if !same_key {
                    let fmin_m = idx.min_at(sm).expect("moved tuple is in its group");
                    if (fmin_m as usize) < pos {
                        // Witness unchanged: the moved tuple's pair (if
                        // any) just renumbers `last` → `pos` — covered by
                        // the consumer's renumber step, no delta entry.
                        // As above, a pair exists exactly when the moved
                        // tuple disagrees with its witness.
                        let srows = &sym_rows[rel.index()];
                        let first_m_row =
                            &srows[fmin_m as usize * stride..(fmin_m as usize + 1) * stride];
                        let rm = row_m.as_deref().expect("moved tuple has a cached row");
                        for (mi, m) in g.members.iter().enumerate() {
                            let rslot = cfd_rhs_slots[gi][mi] as usize;
                            if m.rhs_const.is_some()
                                || first_m_row[rslot] == rm[rslot]
                                || !m_matches(mi, m)
                            {
                                continue;
                            }
                            applicable_covers(g, m, mt, &mut cov_buf);
                            for &cidx in &cov_buf {
                                let was_live = live_cfd.remove(&(
                                    cidx,
                                    CfdViolation::Pair {
                                        left: fmin_m as usize,
                                        right: last,
                                    },
                                ));
                                debug_assert!(was_live, "relabeled pair must have been live");
                                live_cfd.insert((
                                    cidx,
                                    CfdViolation::Pair {
                                        left: fmin_m as usize,
                                        right: pos,
                                    },
                                ));
                            }
                        }
                    } else if idx.positions_at(sm).nth(1).is_some() {
                        // The moved tuple lands *below* the group's old
                        // witness and becomes the new one: restructure
                        // (skipped for a singleton group — no pairs).
                        pair_recompute += 1;
                        scopes.extend(stash_scope(g, gi, idx, sm, db.relation(rel), mt, m_matches));
                    }
                }
            }

            idx.remove_at(slot_t, pos as u32);
            if let Some(sm) = slot_m {
                idx.replace_at(sm, last as u32, pos as u32);
            }
        }

        // ---- CIND source role of the deleted tuple (before its target
        // role, so a self-partnered tuple is not counted as orphaned).
        for (gi, g) in validator.cind_groups().iter().enumerate() {
            for (mi, (m, sidx)) in g
                .members
                .iter()
                .zip(cind_sources[gi].iter_mut())
                .enumerate()
            {
                let cind = &validator.cinds()[m.idx];
                if cind.lhs_rel() != rel || !cind.triggers(t) {
                    continue;
                }
                key_from_slots(row, &cind_x_slots[gi][mi], &mut key_buf);
                slot_probes += 1;
                hash_probes += 1;
                let slot = sidx
                    .slot_of_pos(pos as u32)
                    .expect("triggered source is indexed");
                sidx.remove_at(slot, pos as u32);
                if !cind_targets[gi].contains_key(&key_buf) {
                    let payload = t.project(cind.x());
                    for &cidx in &m.covers {
                        let v = (
                            cidx,
                            CindViolation {
                                tuple: pos,
                                key: payload.clone(),
                            },
                        );
                        let was_live = live_cind.remove(&v);
                        debug_assert!(was_live, "deleted orphan must have been live");
                        delta.cind.resolved.push(v);
                    }
                }
            }
        }

        // ---- CIND target role of the deleted tuple: removing the last
        // partner with a key orphans every triggered source carrying it.
        for (gi, g) in validator.cind_groups().iter().enumerate() {
            if g.rhs_rel != rel || !g.yp.iter().all(|(a, v)| &t[*a] == v) {
                continue;
            }
            // Probe-free: the slot record serves the removal and the
            // became-empty check; the key is only materialized on the
            // rare orphaning path below.
            slot_probes += 1;
            let slot = cind_targets[gi]
                .slot_of_pos(pos as u32)
                .expect("deleted target is indexed");
            cind_targets[gi].remove_at(slot, pos as u32);
            if cind_targets[gi].occupied_at(slot) {
                continue;
            }
            key_from_slots(row, &cind_y_slots[gi], &mut key_buf);
            for (m, sidx) in g.members.iter().zip(&cind_sources[gi]) {
                let cind = &validator.cinds()[m.idx];
                let source = db.relation(cind.lhs_rel());
                // The swap renumbering only concerns the deleted tuple's
                // relation — source positions elsewhere are stable.
                let same_rel = cind.lhs_rel() == rel;
                for src in sidx.positions(&key_buf) {
                    let t1 = source.get(src as usize).expect("indexed position valid");
                    let tuple = if same_rel { renum(src) } else { src as usize };
                    let payload = t1.project(cind.x());
                    for &cidx in &m.covers {
                        let v = (
                            cidx,
                            CindViolation {
                                tuple,
                                key: payload.clone(),
                            },
                        );
                        live_cind.insert(v.clone());
                        delta.cind.introduced.push(v);
                    }
                }
            }
        }

        // ---- Renumber the moved tuple's per-tuple violations and its
        // index entries in the CIND tiers (CFD tiers were renumbered
        // above; pair relabeling happens in the recomputation below).
        if let Some(mt) = &moved {
            let row_m = row_m.as_deref().expect("moved tuple has a cached row");
            for (gi, g) in validator.cfd_groups().iter().enumerate() {
                if g.rel != rel {
                    continue;
                }
                key_from_slots(row_m, &cfd_group_slots[gi], &mut key_buf);
                for (mi, m) in g.members.iter().enumerate() {
                    if !member_matches_sym(&member_syms[gi][mi], &key_buf) {
                        continue;
                    }
                    if let Some(expected) = &m.rhs_const {
                        let found = &mt[m.rhs];
                        if found != expected {
                            applicable_covers(g, m, mt, &mut cov_buf);
                            for &cidx in &cov_buf {
                                let old = (
                                    cidx,
                                    CfdViolation::SingleTuple {
                                        tuple: last,
                                        found: found.clone(),
                                        expected: expected.clone(),
                                    },
                                );
                                if live_cfd.remove(&old) {
                                    live_cfd.insert((
                                        cidx,
                                        CfdViolation::SingleTuple {
                                            tuple: pos,
                                            found: found.clone(),
                                            expected: expected.clone(),
                                        },
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            for (gi, g) in validator.cind_groups().iter().enumerate() {
                for (m, sidx) in g.members.iter().zip(cind_sources[gi].iter_mut()) {
                    let cind = &validator.cinds()[m.idx];
                    if cind.lhs_rel() != rel || !cind.triggers(mt) {
                        continue;
                    }
                    slot_probes += 1;
                    let slot = sidx
                        .slot_of_pos(last as u32)
                        .expect("triggered source is indexed");
                    sidx.replace_at(slot, last as u32, pos as u32);
                    let payload = mt.project(cind.x());
                    for &cidx in &m.covers {
                        let old = (
                            cidx,
                            CindViolation {
                                tuple: last,
                                key: payload.clone(),
                            },
                        );
                        if live_cind.remove(&old) {
                            live_cind.insert((
                                cidx,
                                CindViolation {
                                    tuple: pos,
                                    key: payload.clone(),
                                },
                            ));
                        }
                    }
                }
                // `slot_of_pos` hits exactly when the moved tuple passed
                // the Yp filter at insert — no pattern re-scan needed.
                if g.rhs_rel == rel {
                    slot_probes += 1;
                    if let Some(slot) = cind_targets[gi].slot_of_pos(last as u32) {
                        cind_targets[gi].replace_at(slot, last as u32, pos as u32);
                    }
                }
            }
        }

        // ---- Remove from the database (the swap happens here); the id
        // map mirrors it.
        let removed = db.remove_at(rel, pos).expect("position was just resolved");
        debug_assert_eq!(removed.pos, pos);
        debug_assert_eq!(removed.moved_from, moved.as_ref().map(|_| last));
        // Mirror the swap into the resident row cache (`pos == last`
        // degenerates to a plain truncation).
        let srows = &mut sym_rows[rel.index()];
        for i in 0..stride {
            srows[pos * stride + i] = srows[last * stride + i];
        }
        srows.truncate(last * stride);
        let (retired, moved_id) = ids[rel.index()].remove_swap(pos);
        delta.ids.retired = Some(retired);
        delta.ids.moved = moved_id;

        // ---- Recompute the affected key groups' pairs against the
        // final state and swap them into the live set; only genuine
        // differences surface in the delta.
        for scope in scopes {
            let g = &validator.cfd_groups()[scope.group];
            let idx = &cfd_indexes[scope.group];
            for (ms, covers, old) in scope.members {
                let m = &g.members[ms];
                let new = group_pairs(
                    db.relation(rel),
                    m.rhs,
                    idx.positions_at(scope.slot).collect(),
                );
                let old_set: HashSet<(usize, usize), FxBuildHasher> = old.iter().copied().collect();
                let new_set: HashSet<(usize, usize), FxBuildHasher> = new.iter().copied().collect();
                for &(left, right) in &old {
                    for &cidx in &covers {
                        live_cfd.remove(&(cidx, CfdViolation::Pair { left, right }));
                        if !new_set.contains(&(left, right)) {
                            delta
                                .cfd
                                .resolved
                                .push((cidx, CfdViolation::Pair { left, right }));
                        }
                    }
                }
                for &(left, right) in &new {
                    for &cidx in &covers {
                        live_cfd.insert((cidx, CfdViolation::Pair { left, right }));
                        if !old_set.contains(&(left, right)) {
                            delta
                                .cfd
                                .introduced
                                .push((cidx, CfdViolation::Pair { left, right }));
                        }
                    }
                }
            }
        }

        delta.moved = moved.map(|_| MovedTuple {
            rel,
            from: last,
            to: pos,
        });
        telemetry.hash_probes.add(hash_probes);
        telemetry.slot_probes.add(slot_probes);
        telemetry.pair_fast.add(pair_fast);
        telemetry.pair_recompute.add(pair_recompute);
        Some(delta)
    }

    /// Replaces `old` by `new` in relation `rel`: a delete followed by an
    /// insert, returned as the two deltas in application order (see the
    /// module docs for how each applies). `Ok(None)` when `old` is not
    /// present; the replacement is type-checked **before** the delete, so
    /// an error leaves the stream untouched.
    pub fn update_tuple(
        &mut self,
        rel: RelId,
        old: &Tuple,
        new: Tuple,
    ) -> Result<Option<(SigmaDelta, SigmaDelta)>, ModelError> {
        self.db.check_tuple(rel, &new)?;
        if old == &new {
            // No-op replacement: skip the delete/insert churn (and its
            // mutually cancelling deltas) entirely.
            return Ok(self
                .db
                .relation(rel)
                .contains(old)
                .then(|| (SigmaDelta::default(), SigmaDelta::default())));
        }
        let Some(deleted) = self.delete_tuple(rel, old) else {
            return Ok(None);
        };
        let inserted = self.insert_tuple(rel, new)?;
        Ok(Some((deleted, inserted)))
    }

    /// Applies one value-level [`Mutation`], returning the streamed
    /// deltas **and** the inverse mutation ([`Applied::revert`]) that
    /// restores the pre-mutation tuple set. No-ops (inserting a resident
    /// tuple, deleting or updating an absent one, `old == new`) return an
    /// empty [`Applied`] with `revert: None`.
    ///
    /// An update whose `new` tuple already resides in the relation
    /// degenerates to a deletion of `old` (set semantics merge the two);
    /// its revert is the re-insertion of `old`, **not** a deletion of the
    /// pre-existing `new`.
    pub fn apply(&mut self, m: Mutation) -> Result<Applied, ModelError> {
        const NOOP: Applied = Applied {
            deltas: Vec::new(),
            revert: None,
        };
        match m {
            Mutation::Insert { rel, tuple } => {
                if self.db.relation(rel).contains(&tuple) {
                    return Ok(NOOP);
                }
                let delta = self.insert_tuple(rel, tuple.clone())?;
                Ok(Applied {
                    deltas: vec![delta],
                    revert: Some(Mutation::Delete { rel, tuple }),
                })
            }
            Mutation::Delete { rel, tuple } => match self.delete_tuple(rel, &tuple) {
                None => Ok(NOOP),
                Some(delta) => Ok(Applied {
                    deltas: vec![delta],
                    revert: Some(Mutation::Insert { rel, tuple }),
                }),
            },
            Mutation::Update { rel, old, new } => {
                self.db.check_tuple(rel, &new)?;
                if old == new || !self.db.relation(rel).contains(&old) {
                    return Ok(NOOP);
                }
                if self.db.relation(rel).contains(&new) {
                    // Set semantics: the edit collapses `old` into the
                    // resident `new` — a pure deletion, reverted by
                    // re-inserting `old` (the resident tuple predates the
                    // mutation and must survive the revert).
                    let delta = self.delete_tuple(rel, &old).expect("presence just checked");
                    return Ok(Applied {
                        deltas: vec![delta],
                        revert: Some(Mutation::Insert { rel, tuple: old }),
                    });
                }
                let (d1, d2) = self
                    .update_tuple(rel, &old, new.clone())?
                    .expect("presence just checked");
                Ok(Applied {
                    deltas: vec![d1, d2],
                    revert: Some(Mutation::Update {
                        rel,
                        old: new,
                        new: old,
                    }),
                })
            }
        }
    }

    /// Replays the inverse mutation of an [`Applied`] — the retraction
    /// half of the apply → inspect delta → keep-or-roll-back loop. The
    /// returned deltas mirror the original's (resolved and introduced
    /// swap roles, modulo position relabeling) and must still be consumed
    /// by any delta-maintained state.
    pub fn revert(&mut self, revert: Mutation) -> Result<Applied, ModelError> {
        let applied = self.apply(revert)?;
        debug_assert!(
            !applied.is_noop(),
            "reverting an applied mutation cannot be a no-op"
        );
        Ok(applied)
    }

    /// Symbolizes a tuple's key-attribute cells in one pass, interning
    /// new strings — the insert-side row builder of the batch path.
    fn sym_row_intern(&mut self, rel: RelId, t: &Tuple) -> Vec<SymValue> {
        let Self {
            interner,
            sym_attrs,
            ..
        } = self;
        sym_attrs[rel.index()]
            .iter()
            .map(|a| interner.intern_value(&t[*a]))
            .collect()
    }

    /// Applies a whole batch of value-level [`Mutation`]s, returning the
    /// streamed deltas **in application order** — exactly the
    /// concatenation of what per-mutation [`ValidatorStream::apply`]
    /// calls would return (an update contributes its delete and insert
    /// deltas, a merge-degenerate update one delete delta, a no-op
    /// nothing), so `current_report()` still equals a fresh batch sweep
    /// after every batch.
    ///
    /// What makes it cheaper than the mutation-at-a-time loop:
    ///
    /// * **one interner pass** — every arriving tuple's key cells are
    ///   symbolized once up front (and the cached member-pattern symbol
    ///   translations refreshed once), instead of once per constraint
    ///   group per mutation;
    /// * **grouped key translation** — per `(relation, LHS set)` group,
    ///   keys are `Copy` slot reads out of the pre-built row and member
    ///   matching is a word compare, with no string hashed anywhere in
    ///   the per-group work;
    /// * **at most one probe per touched key group** — the group's pair
    ///   witness is looked up once and shared across all its wildcard
    ///   members (deletes resolve their groups probe-free through the
    ///   index's per-position slot records).
    ///
    /// The whole batch is type-checked first: an ill-typed mutation
    /// returns the error with **nothing** applied (unlike a sequential
    /// `apply` loop, which would stop half-way).
    pub fn apply_deltas(&mut self, muts: &[Mutation]) -> Result<Vec<SigmaDelta>, ModelError> {
        let span = SpanTimer::start(&self.telemetry.window_us);
        let groups0 = self.telemetry.probes_total();
        for m in muts {
            match m {
                Mutation::Insert { rel, tuple } => self.db.check_tuple(*rel, tuple)?,
                Mutation::Update { rel, new, .. } => self.db.check_tuple(*rel, new)?,
                Mutation::Delete { .. } => {}
            }
        }
        // Phase 1: the one interner pass over every arriving tuple.
        let arriving: Vec<Option<Vec<SymValue>>> = muts
            .iter()
            .map(|m| match m {
                Mutation::Insert { rel, tuple }
                | Mutation::Update {
                    rel, new: tuple, ..
                } => Some(self.sym_row_intern(*rel, tuple)),
                Mutation::Delete { .. } => None,
            })
            .collect();
        self.refresh_member_syms();
        // Phase 2: apply in order through the row-fed engine. Presence
        // checks happen here, against the evolving database, so
        // intra-batch interactions (insert then delete, merging updates)
        // resolve exactly as they would sequentially.
        let mut out = Vec::with_capacity(muts.len());
        for (m, row) in muts.iter().zip(&arriving) {
            match m {
                Mutation::Insert { rel, tuple } => {
                    // No pre-membership probe: `insert_inner` detects the
                    // no-op itself (a resident tuple allocates no id).
                    let row = row.as_deref().expect("insert rows are pre-built");
                    let d = self.insert_inner(*rel, tuple.clone(), row)?;
                    if d.ids.born.is_some() {
                        out.push(d);
                    }
                }
                Mutation::Delete { rel, tuple } => {
                    if let Some(d) = self.delete_inner(*rel, tuple) {
                        out.push(d);
                    }
                }
                Mutation::Update { rel, old, new } => {
                    if old == new || !self.db.relation(*rel).contains(old) {
                        continue;
                    }
                    let merged = self.db.relation(*rel).contains(new);
                    out.push(self.delete_inner(*rel, old).expect("presence just checked"));
                    if !merged {
                        let row = row.as_deref().expect("update rows are pre-built");
                        out.push(self.insert_inner(*rel, new.clone(), row)?);
                    }
                }
            }
        }
        span.stop();
        self.telemetry.record_window(&out, groups0);
        Ok(out)
    }

    /// The **violation class** of compiled CFD `cfd_idx` around tuple `t`:
    /// the dense positions (ascending) of every resident tuple that
    /// matches the CFD's LHS pattern and agrees with `t` on the LHS
    /// attributes — the equivalence class over which a wildcard-RHS
    /// conflict must be settled, read from the live group index at
    /// key-group cost. Empty when `t` does not match the pattern (or
    /// carries a key no resident tuple holds).
    pub fn cfd_violation_class(&self, cfd_idx: usize, t: &Tuple) -> Vec<usize> {
        let (gi, mi, ci) = self.validator.cfd_slot(cfd_idx);
        if gi == usize::MAX {
            // The CFD was dropped as implied by a minimal-tier cover
            // compilation: the validator holds no live structure for it.
            return Vec::new();
        }
        let g = &self.validator.cfd_groups()[gi];
        let m = &g.members[mi];
        // Match against this original's own pattern, not the member's
        // probe: a merged cover can be strictly more specific.
        let pat = &m.covers[ci].pattern;
        if !pattern_matches(&g.attrs, pat, t) {
            return Vec::new();
        }
        let mut key = Vec::with_capacity(g.attrs.len());
        for a in &g.attrs {
            match self.interner.sym_value(&t[*a]) {
                Some(s) => key.push(s),
                None => return Vec::new(),
            }
        }
        let rel_inst = self.db.relation(g.rel);
        let mut out: Vec<usize> = self.cfd_indexes[gi]
            .positions(&key)
            .filter(|&p| {
                let resident = rel_inst.get(p as usize).expect("indexed position valid");
                pattern_matches(&g.attrs, pat, resident)
            })
            .map(|p| p as usize)
            .collect();
        out.sort_unstable();
        out
    }

    /// Does `t` (a tuple currently in the stream's database) participate
    /// in a CFD conflict whose witnessing cells all satisfy `is_rigid`?
    ///
    /// This is the group-probe primitive the chase's candidate checking
    /// builds on: `is_rigid` distinguishes genuine constants from encoded
    /// chase variables, so a disagreement involving a variable (which an
    /// `FD(φ)` step would repair by substitution) is not a conflict,
    /// while two rigid constants disagreeing is. Costs
    /// `O(groups on the relation × the tuple's key-group sizes)` — never
    /// a relation scan. Ordinary consumers can pass `|_| true` to ask
    /// "is this tuple involved in any CFD violation right now".
    pub fn cfd_conflicts<F>(&self, rel: RelId, t: &Tuple, is_rigid: F) -> bool
    where
        F: Fn(&Value) -> bool,
    {
        let rel_inst = self.db.relation(rel);
        let Some(my_pos) = rel_inst.position(t) else {
            return false;
        };
        let mut key_buf: Vec<SymValue> = Vec::new();
        let mut group_buf: Vec<u32> = Vec::new();
        for (g, idx) in self.validator.cfd_groups().iter().zip(&self.cfd_indexes) {
            if g.rel != rel {
                continue;
            }
            sym_key(&self.interner, t, &g.attrs, &mut key_buf);
            group_buf.clear();
            group_buf.extend(idx.positions(&key_buf));
            for m in &g.members {
                if !member_matches(g, m, t) {
                    continue;
                }
                let mine = &t[m.rhs];
                // Single-tuple reading: a matched premise forcing a
                // different (rigid) constant.
                if let Some(expected) = &m.rhs_const {
                    if mine != expected && is_rigid(mine) {
                        return true;
                    }
                }
                // Pair reading: agreement on X forcing agreement on A,
                // checked against the tuple's own key group only.
                if !is_rigid(mine) {
                    continue;
                }
                for &p in &group_buf {
                    if p as usize == my_pos {
                        continue;
                    }
                    let other = &rel_inst.get(p as usize).expect("indexed position valid")[m.rhs];
                    if other != mine && is_rigid(other) {
                        return true;
                    }
                }
            }
        }
        false
    }
}
