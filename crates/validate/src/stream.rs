//! Incremental (streaming) validation.
//!
//! A [`ValidatorStream`] owns a database plus the live group-by indexes
//! of a compiled [`Validator`]; [`ValidatorStream::insert_tuple`]
//! validates one arriving tuple against all of Σ in time proportional to
//! the constraint groups touching its relation — and returns **only the
//! violations the new tuple introduces**, which is the contract a
//! streaming data-quality monitor needs.

use crate::validator::{SigmaReport, Validator};
use condep_cfd::CfdViolation;
use condep_core::CindViolation;
use condep_model::{Database, Interner, ModelError, RelId, SymValue, Tuple};
use condep_query::SymIndex;

/// A validator with materialized state for one evolving database.
#[derive(Clone, Debug)]
pub struct ValidatorStream {
    validator: Validator,
    db: Database,
    interner: Interner,
    /// One live index per CFD group (keyed by the group's sorted LHS).
    cfd_indexes: Vec<SymIndex>,
    /// One live filtered target index per CIND group (keyed by sorted Y).
    cind_targets: Vec<SymIndex>,
}

impl ValidatorStream {
    /// Materializes the stream state over an initial database.
    ///
    /// The initial contents are **assumed valid** (or their violations
    /// already reported via [`Validator::validate`]); from here on,
    /// every insert reports just the delta.
    pub fn new(validator: Validator, db: Database) -> Self {
        let interner = Interner::from_database(&db);
        let cfd_indexes = validator
            .cfd_groups()
            .iter()
            .map(|g| {
                SymIndex::build_filtered_interned(db.relation(g.rel), &g.attrs, &interner, |_| true)
            })
            .collect();
        let cind_targets = validator
            .cind_groups()
            .iter()
            .map(|g| {
                SymIndex::build_filtered_interned(db.relation(g.rhs_rel), &g.y, &interner, |t| {
                    g.yp.iter().all(|(a, v)| &t[*a] == v)
                })
            })
            .collect();
        ValidatorStream {
            validator,
            db,
            interner,
            cfd_indexes,
            cind_targets,
        }
    }

    /// The compiled suite.
    pub fn validator(&self) -> &Validator {
        &self.validator
    }

    /// The current database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Consumes the stream, returning the accumulated database.
    pub fn into_db(self) -> Database {
        self.db
    }

    /// Validates and inserts one tuple, returning only the **new**
    /// violations it introduces (an already-present tuple is a no-op:
    /// instances are sets).
    ///
    /// Semantics per constraint kind:
    ///
    /// * constant-RHS CFD — the tuple itself mismatches: one
    ///   `SingleTuple` violation;
    /// * wildcard-RHS CFD — the tuple disagrees on `A` with its key
    ///   group: one `Pair` witness against the first conflicting
    ///   resident tuple;
    /// * CIND (source role) — the tuple is triggered but finds no
    ///   partner in the live target index;
    /// * CIND (target role) — never *creates* a violation; the index is
    ///   updated so future (and self-referential) probes see the tuple.
    pub fn insert_tuple(&mut self, rel: RelId, t: Tuple) -> Result<SigmaReport, ModelError> {
        let mut report = SigmaReport::default();
        if !self.db.insert(rel, t.clone())? {
            return Ok(report);
        }
        let pos = self.db.relation(rel).len() - 1;

        // Target-role updates first, so a self-referential CIND can be
        // satisfied by the arriving tuple itself (batch semantics allow
        // t2 = t1).
        for (g, idx) in self
            .validator
            .cind_groups()
            .iter()
            .zip(self.cind_targets.iter_mut())
        {
            if g.rhs_rel == rel && g.yp.iter().all(|(a, v)| &t[*a] == v) {
                idx.insert(pos as u32, &t, &g.y, &mut self.interner);
            }
        }

        // CFD groups over this relation: check members, then join the
        // tuple's key group.
        let mut key_buf: Vec<SymValue> = Vec::new();
        for (g, idx) in self
            .validator
            .cfd_groups()
            .iter()
            .zip(self.cfd_indexes.iter_mut())
        {
            if g.rel != rel {
                continue;
            }
            for m in &g.members {
                let matches = g
                    .attrs
                    .iter()
                    .zip(m.pattern.iter())
                    .all(|(a, p)| p.as_ref().is_none_or(|p| p == &t[*a]));
                if !matches {
                    continue;
                }
                match &m.rhs_const {
                    Some(expected) => {
                        let found = &t[m.rhs];
                        if found != expected {
                            report.cfd.push((
                                m.idx,
                                CfdViolation::SingleTuple {
                                    tuple: pos,
                                    found: found.clone(),
                                    expected: expected.clone(),
                                },
                            ));
                        }
                    }
                    None => {
                        key_buf.clear();
                        key_buf.extend(g.attrs.iter().map(|a| self.interner.intern_value(&t[*a])));
                        // Exactly the batch `wildcard_pairs` delta: the
                        // arriving tuple joins the end of its key group,
                        // so it adds one pair iff its RHS differs from
                        // the group's FIRST tuple. Comparing against any
                        // other resident would report pairs batch
                        // validation never produces.
                        if let Some(&first) = idx.probe(&key_buf).first() {
                            let resident = self
                                .db
                                .relation(rel)
                                .get(first as usize)
                                .expect("indexed position valid");
                            if resident[m.rhs] != t[m.rhs] {
                                report.cfd.push((
                                    m.idx,
                                    CfdViolation::Pair {
                                        left: first as usize,
                                        right: pos,
                                    },
                                ));
                            }
                        }
                    }
                }
            }
            idx.insert(pos as u32, &t, &g.attrs, &mut self.interner);
        }

        // CIND source role: the new tuple must find a partner.
        for (g, idx) in self
            .validator
            .cind_groups()
            .iter()
            .zip(self.cind_targets.iter())
        {
            for m in &g.members {
                let cind = &self.validator.cinds()[m.idx];
                if cind.lhs_rel() != rel || !cind.triggers(&t) {
                    continue;
                }
                // A key string the interner has never seen cannot occur
                // in the target index — that is already a missing
                // partner, not an error.
                key_buf.clear();
                let mut unknown = false;
                for a in &m.x_perm {
                    match self.interner.sym_value(&t[*a]) {
                        Some(sym) => key_buf.push(sym),
                        None => {
                            unknown = true;
                            break;
                        }
                    }
                }
                if unknown || !idx.contains_key(&key_buf) {
                    report.cind.push((
                        m.idx,
                        CindViolation {
                            tuple: pos,
                            key: t.project(cind.x()),
                        },
                    ));
                }
            }
        }

        Ok(report)
    }
}
