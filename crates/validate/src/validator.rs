//! The batched Σ-validator.

use crate::cover::{canonical_pattern, CoverRole, CoverStats, SigmaCover};
use condep_analyze::{AnalyzeConfig, SigmaAnalysis, SigmaLint, SigmaVerdict, UnsatSigma};
use condep_cfd::{CfdViolation, NormalCfd};
use condep_core::{CindViolation, NormalCind};
use condep_model::fxhash::FxBuildHasher;
use condep_model::{AttrId, Database, Interner, PValue, RelId, Schema, SymTables, SymValue, Value};
use condep_query::SymIndex;
use condep_telemetry::{Export, MetricsSnapshot, SpanKey, Stopwatch};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Static span keys: suite compilation happens in free constructors
/// with no registry in hand, so these record into the global registry
/// ([`condep_telemetry::global`]) through a once-resolved cached handle.
static COVER_SPAN: SpanKey = SpanKey::new("validator.cover_us");
static COMPILE_SPAN: SpanKey = SpanKey::new("validator.compile_us");

/// One original CFD carried by a compiled member: its index in the
/// caller's Σ plus its own LHS pattern (aligned with the group's sorted
/// attribute order). The member's probe pattern subsumes every cover's
/// pattern, so a cover's violations are exactly the member's violations
/// restricted to key-groups matching the cover's pattern — the filter
/// every emission site re-evaluates on the key in hand.
#[derive(Clone, Debug)]
pub(crate) struct CfdCover {
    /// Index into [`Validator::cfds`].
    pub(crate) idx: usize,
    /// This original's own LHS pattern cells (`None` = wildcard).
    pub(crate) pattern: Vec<Option<Value>>,
}

/// One compiled tableau row of the suite, re-expressed against its
/// group's canonical (sorted) LHS attribute order. After cover
/// compilation a member may carry several original CFDs ([`CfdCover`]);
/// `covers[0]` is always the representative whose pattern equals the
/// member's probe pattern.
#[derive(Clone, Debug)]
pub(crate) struct CfdMember {
    /// Probe pattern: the most general LHS pattern among `covers`
    /// (`None` = wildcard), aligned with the group's sorted attributes.
    pub(crate) pattern: Vec<Option<Value>>,
    /// The RHS attribute `A`.
    pub(crate) rhs: AttrId,
    /// The RHS pattern: `Some(c)` for a constant, `None` for `_`.
    pub(crate) rhs_const: Option<Value>,
    /// The original CFDs this member evaluates (representative first).
    pub(crate) covers: Vec<CfdCover>,
}

/// All CFDs sharing one `(relation, LHS attribute set)` — evaluable in a
/// single group-by pass over one shared index.
#[derive(Clone, Debug)]
pub(crate) struct CfdGroup {
    pub(crate) rel: RelId,
    /// Canonical (sorted) LHS attribute list; the shared index key.
    pub(crate) attrs: Vec<AttrId>,
    pub(crate) members: Vec<CfdMember>,
}

/// One CIND of the suite, re-expressed against its group's canonical
/// target key order.
#[derive(Clone, Debug)]
pub(crate) struct CindMember {
    /// Index into [`Validator::cinds`].
    pub(crate) idx: usize,
    /// Source attributes permuted in lock-step with the group's sorted
    /// `Y` (so `t1[x_perm]` probes the shared index directly).
    pub(crate) x_perm: Vec<AttrId>,
    /// Original CIND indices this member evaluates (self first; the
    /// rest are payload-identical duplicates merged by the cover pass —
    /// every violation fans out to all of them verbatim).
    pub(crate) covers: Vec<usize>,
}

/// All CINDs sharing one `(target relation, Y attribute set, Yp
/// pattern)` — they share a single filtered target index regardless of
/// which source relations probe it.
#[derive(Clone, Debug)]
pub(crate) struct CindGroup {
    pub(crate) rhs_rel: RelId,
    /// Canonical (sorted) target key attributes.
    pub(crate) y: Vec<AttrId>,
    /// The shared RHS pattern constants, sorted by attribute.
    pub(crate) yp: Vec<(AttrId, Value)>,
    pub(crate) members: Vec<CindMember>,
}

/// Everything the batched sweep found, tagged with constraint indices
/// (into [`Validator::cfds`] / [`Validator::cinds`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SigmaReport {
    /// CFD violations as `(cfd index, violation)`.
    pub cfd: Vec<(usize, CfdViolation)>,
    /// CIND violations as `(cind index, violation)`.
    pub cind: Vec<(usize, CindViolation)>,
}

impl SigmaReport {
    /// Total number of violations.
    pub fn len(&self) -> usize {
        self.cfd.len() + self.cind.len()
    }

    /// Whether the database was clean.
    pub fn is_empty(&self) -> bool {
        self.cfd.is_empty() && self.cind.is_empty()
    }

    /// Sorts violations into the canonical report order (by constraint,
    /// then by witness positions) — identical to running the per-CFD
    /// sorted detectors constraint by constraint.
    pub fn sort(&mut self) {
        self.cfd.sort_by_key(|(i, v)| (*i, v.sort_key()));
        self.cind.sort_by_key(|(i, v)| (*i, v.tuple));
    }
}

/// Structural bookkeeping of one [`Validator::retire_dependencies`]
/// call — everything a [`crate::ValidatorStream`] mirror needs to keep
/// its per-member side arrays aligned with the recompiled groups.
#[derive(Clone, Debug, Default)]
pub struct RetireLog {
    /// CFD indices actually retired by the call (deduplicated,
    /// ascending; already-retired indices are skipped).
    pub cfds: Vec<usize>,
    /// CIND indices actually retired (deduplicated, ascending).
    pub cinds: Vec<usize>,
    /// `(group slot, member slot)` of each CIND member removal, in the
    /// exact order performed — member slots shift with every removal,
    /// so mirrors must replay these in order.
    pub(crate) cind_members_removed: Vec<(usize, usize)>,
}

impl RetireLog {
    /// Did the call change anything?
    pub fn is_empty(&self) -> bool {
        self.cfds.is_empty() && self.cinds.is_empty()
    }
}

/// A compiled constraint suite: Σ grouped for batched evaluation.
///
/// Construction groups the CFDs by `(relation, LHS attribute set)` and
/// the CINDs by `(target relation, Y set, Yp pattern)`; validation then
/// builds **one** group-by index per group — instead of one per
/// constraint — and sweeps independent groups in parallel.
///
/// The suite is not frozen at compile time:
/// [`Validator::add_dependencies`] splices new constraints into their
/// `(relation, LHS)` / target groups and
/// [`Validator::retire_dependencies`] surgically removes constraints
/// from theirs — both recompile only the affected groups, never the
/// whole suite.
#[derive(Clone, Debug)]
pub struct Validator {
    cfds: Vec<NormalCfd>,
    cinds: Vec<NormalCind>,
    cfd_groups: Vec<CfdGroup>,
    cind_groups: Vec<CindGroup>,
    /// Per CFD index: its `(group slot, member slot, cover slot)` in
    /// `cfd_groups`. Dependencies dropped by a minimal-tier cover have
    /// no slot (all-`usize::MAX` sentinel), as do retired ones.
    cfd_slots: Vec<(usize, usize, usize)>,
    /// Per constraint: has it been retired? Retired constraints keep
    /// their index (violation indices stay stable) but no group member
    /// evaluates them any more.
    retired_cfds: Vec<bool>,
    retired_cinds: Vec<bool>,
    /// What the cover pass merged/dropped at compile time.
    cover_stats: CoverStats,
    /// How long compilation took and what it produced.
    compile_stats: CompileStats,
    /// Advisory Σ lints from the analyzer's cheap tier (key-group row
    /// conflicts), refreshed on every add/retire. Indexed in this
    /// suite's Σ numbering.
    lints: Vec<SigmaLint>,
}

/// Wall-clock and shape facts of one suite compilation.
///
/// The timings also land in the global registry under
/// `validator.cover_us` / `validator.compile_us` (histograms across
/// every compile in the process); this struct is the per-suite view.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Σ-cover pass time, µs. Zero when the caller supplied the cover
    /// ([`Validator::with_cover`] / [`Validator::new_uncovered`]).
    pub cover_us: u64,
    /// Group-compilation time, µs (grouping, canonicalization, slots).
    pub compile_us: u64,
    /// Compiled `(relation, LHS)` CFD groups.
    pub cfd_groups: usize,
    /// Compiled `(target relation, Y, Yp)` CIND groups.
    pub cind_groups: usize,
    /// Compiled CFD tableau-row members across all groups.
    pub cfd_members: usize,
    /// Compiled CIND members across all groups.
    pub cind_members: usize,
}

impl Export for CompileStats {
    fn export(&self, prefix: &str, out: &mut MetricsSnapshot) {
        let k = |name| condep_telemetry::key(prefix, name);
        out.counter(k("cover_us"), self.cover_us);
        out.counter(k("compile_us"), self.compile_us);
        out.counter(k("cfd_groups"), self.cfd_groups as u64);
        out.counter(k("cind_groups"), self.cind_groups as u64);
        out.counter(k("cfd_members"), self.cfd_members as u64);
        out.counter(k("cind_members"), self.cind_members as u64);
    }
}

/// Databases below this tuple count are validated on the calling thread;
/// spawning threads costs more than the sweep itself.
const PARALLEL_THRESHOLD: usize = 4096;

impl Validator {
    /// Compiles a suite from normal-form constraints, running the
    /// violation-exact Σ cover first: subsumable tableau rows and
    /// duplicate CINDs collapse into one compiled member each, and every
    /// emission site fans violations back out to the caller's original
    /// indices — reports are byte-identical to an uncovered compile.
    pub fn new(cfds: Vec<NormalCfd>, cinds: Vec<NormalCind>) -> Self {
        let clock = Stopwatch::start();
        let cover = SigmaCover::exact(&cfds, &cinds);
        let cover_us = clock.elapsed_us();
        COVER_SPAN.record_us(cover_us);
        let mut v = Validator::with_cover(cfds, cinds, &cover);
        v.compile_stats.cover_us = cover_us;
        v
    }

    /// Compiles the suite with **no** cover pass: one member per
    /// dependency, exactly as written. The reference compiler for
    /// cover-equivalence tests and benchmarks.
    pub fn new_uncovered(cfds: Vec<NormalCfd>, cinds: Vec<NormalCind>) -> Self {
        let cover = SigmaCover::identity(cfds.len(), cinds.len());
        Validator::with_cover(cfds, cinds, &cover)
    }

    /// Compiles the suite under a caller-supplied cover. Dependencies
    /// with [`CoverRole::Implied`] are dropped entirely (no violations
    /// will ever be reported for their indices) — only sound for
    /// satisfaction-style monitoring, which is why [`Validator::new`]
    /// sticks to the exact tier.
    pub fn with_cover(cfds: Vec<NormalCfd>, cinds: Vec<NormalCind>, cover: &SigmaCover) -> Self {
        let clock = Stopwatch::start();
        assert_eq!(cover.cfd.len(), cfds.len(), "cover/Σ length mismatch");
        assert_eq!(cover.cind.len(), cinds.len(), "cover/Σ length mismatch");
        let mut cfd_index: HashMap<(RelId, Vec<AttrId>), usize, FxBuildHasher> = HashMap::default();
        let mut cfd_groups: Vec<CfdGroup> = Vec::new();
        for (idx, cfd) in cfds.iter().enumerate() {
            let CoverRole::Keep { covered } = &cover.cfd[idx] else {
                continue;
            };
            // One shared canonicalization (sorted LHS, pattern permuted
            // in lock-step) with `cfd::satisfy::satisfies_all`.
            let (attrs, pattern) = canonical_pattern(cfd);
            let mut covers = Vec::with_capacity(1 + covered.len());
            covers.push(CfdCover {
                idx,
                pattern: pattern.clone(),
            });
            for &c in covered {
                let (c_attrs, c_pattern) = canonical_pattern(&cfds[c]);
                debug_assert_eq!(c_attrs, attrs, "cover merged across LHS sets");
                debug_assert!(
                    crate::cover::subsumes(&pattern, &c_pattern),
                    "representative pattern must subsume its covers"
                );
                covers.push(CfdCover {
                    idx: c,
                    pattern: c_pattern,
                });
            }
            let slot = *cfd_index
                .entry((cfd.rel(), attrs.clone()))
                .or_insert_with(|| {
                    cfd_groups.push(CfdGroup {
                        rel: cfd.rel(),
                        attrs,
                        members: Vec::new(),
                    });
                    cfd_groups.len() - 1
                });
            cfd_groups[slot].members.push(CfdMember {
                pattern,
                rhs: cfd.rhs(),
                rhs_const: match cfd.rhs_pat() {
                    PValue::Const(v) => Some(v.clone()),
                    PValue::Any => None,
                },
                covers,
            });
        }

        type CindGroupKey = (RelId, Vec<AttrId>, Vec<(AttrId, Value)>);
        let mut cind_index: HashMap<CindGroupKey, usize, FxBuildHasher> = HashMap::default();
        let mut cind_groups: Vec<CindGroup> = Vec::new();
        for (idx, cind) in cinds.iter().enumerate() {
            let CoverRole::Keep { covered } = &cover.cind[idx] else {
                continue;
            };
            // Canonicalize on the target side: sort Y, permuting X in
            // lock-step so probes align with the shared index.
            let mut cols: Vec<(AttrId, AttrId)> = cind
                .y()
                .iter()
                .copied()
                .zip(cind.x().iter().copied())
                .collect();
            cols.sort_by_key(|(y, _)| *y);
            let y: Vec<AttrId> = cols.iter().map(|(y, _)| *y).collect();
            let x_perm: Vec<AttrId> = cols.into_iter().map(|(_, x)| x).collect();
            let mut yp = cind.yp().to_vec();
            yp.sort_by_key(|&(a, _)| a);
            let slot = *cind_index
                .entry((cind.rhs_rel(), y.clone(), yp.clone()))
                .or_insert_with(|| {
                    cind_groups.push(CindGroup {
                        rhs_rel: cind.rhs_rel(),
                        y,
                        yp,
                        members: Vec::new(),
                    });
                    cind_groups.len() - 1
                });
            let mut covers = Vec::with_capacity(1 + covered.len());
            covers.push(idx);
            covers.extend(covered.iter().copied());
            cind_groups[slot].members.push(CindMember {
                idx,
                x_perm,
                covers,
            });
        }

        const NO_SLOT: (usize, usize, usize) = (usize::MAX, usize::MAX, usize::MAX);
        let mut cfd_slots = vec![NO_SLOT; cfds.len()];
        for (gi, g) in cfd_groups.iter().enumerate() {
            for (mi, m) in g.members.iter().enumerate() {
                for (ci, c) in m.covers.iter().enumerate() {
                    cfd_slots[c.idx] = (gi, mi, ci);
                }
            }
        }

        let retired_cfds = vec![false; cfds.len()];
        let retired_cinds = vec![false; cinds.len()];
        let compile_us = clock.elapsed_us();
        COMPILE_SPAN.record_us(compile_us);
        let compile_stats = CompileStats {
            cover_us: 0,
            compile_us,
            cfd_groups: cfd_groups.len(),
            cind_groups: cind_groups.len(),
            cfd_members: cfd_groups.iter().map(|g| g.members.len()).sum(),
            cind_members: cind_groups.iter().map(|g| g.members.len()).sum(),
        };
        // Cheap-tier static analysis: every construction surfaces
        // conflicting/redundant key-group rows without any solving.
        let lints = condep_analyze::row_lints(&cfds, &AnalyzeConfig::default());
        Validator {
            cfds,
            cinds,
            cfd_groups,
            cind_groups,
            cfd_slots,
            retired_cfds,
            retired_cinds,
            cover_stats: cover.stats,
            compile_stats,
            lints,
        }
    }

    /// Like [`Validator::new`], but runs the full static analyzer
    /// first and **refuses** an unsatisfiable Σ: validating or
    /// repairing against a Σ no nonempty database can satisfy is
    /// meaningless. The error carries a minimal unsat core in the
    /// caller's Σ numbering. `Unknown` verdicts (possible with CINDs)
    /// are admitted — the gate only rejects *proven* inconsistency.
    pub fn strict(
        schema: &Arc<Schema>,
        cfds: Vec<NormalCfd>,
        cinds: Vec<NormalCind>,
    ) -> Result<Validator, UnsatSigma> {
        let analysis = condep_analyze::analyze(schema, &cfds, &cinds, &AnalyzeConfig::default());
        if let SigmaVerdict::Unsat(core) = analysis.verdict {
            return Err(UnsatSigma { core: core.cfds });
        }
        Ok(Validator::new(cfds, cinds))
    }

    /// Appends new constraints to the suite, splicing each into its
    /// existing `(relation, LHS)` / target group (or opening a fresh
    /// group) as an uncovered singleton member — no other group is
    /// touched and no cover pass re-runs, so prior indices, slots and
    /// reports all stay valid. Returns the index ranges assigned to the
    /// new CFDs and CINDs.
    ///
    /// New members compile exactly as [`Validator::new_uncovered`]
    /// would compile them, so their violations are byte-identical to an
    /// uncovered compile of the grown suite.
    pub fn add_dependencies(
        &mut self,
        cfds: Vec<NormalCfd>,
        cinds: Vec<NormalCind>,
    ) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        let cfd_start = self.cfds.len();
        let cind_start = self.cinds.len();
        for cfd in cfds {
            let idx = self.cfds.len();
            let (attrs, pattern) = canonical_pattern(&cfd);
            let gi = self
                .cfd_groups
                .iter()
                .position(|g| g.rel == cfd.rel() && g.attrs == attrs)
                .unwrap_or_else(|| {
                    self.cfd_groups.push(CfdGroup {
                        rel: cfd.rel(),
                        attrs,
                        members: Vec::new(),
                    });
                    self.cfd_groups.len() - 1
                });
            let mi = self.cfd_groups[gi].members.len();
            self.cfd_groups[gi].members.push(CfdMember {
                pattern: pattern.clone(),
                rhs: cfd.rhs(),
                rhs_const: match cfd.rhs_pat() {
                    PValue::Const(v) => Some(v.clone()),
                    PValue::Any => None,
                },
                covers: vec![CfdCover { idx, pattern }],
            });
            self.cfd_slots.push((gi, mi, 0));
            self.retired_cfds.push(false);
            self.cfds.push(cfd);
        }
        for cind in cinds {
            let idx = self.cinds.len();
            let mut cols: Vec<(AttrId, AttrId)> = cind
                .y()
                .iter()
                .copied()
                .zip(cind.x().iter().copied())
                .collect();
            cols.sort_by_key(|(y, _)| *y);
            let y: Vec<AttrId> = cols.iter().map(|(y, _)| *y).collect();
            let x_perm: Vec<AttrId> = cols.into_iter().map(|(_, x)| x).collect();
            let mut yp = cind.yp().to_vec();
            yp.sort_by_key(|&(a, _)| a);
            let gi = self
                .cind_groups
                .iter()
                .position(|g| g.rhs_rel == cind.rhs_rel() && g.y == y && g.yp == yp)
                .unwrap_or_else(|| {
                    self.cind_groups.push(CindGroup {
                        rhs_rel: cind.rhs_rel(),
                        y,
                        yp,
                        members: Vec::new(),
                    });
                    self.cind_groups.len() - 1
                });
            self.cind_groups[gi].members.push(CindMember {
                idx,
                x_perm,
                covers: vec![idx],
            });
            self.retired_cinds.push(false);
            self.cinds.push(cind);
        }
        self.refresh_lints();
        (cfd_start..self.cfds.len(), cind_start..self.cinds.len())
    }

    /// Retires constraints in place: their indices stay allocated (so
    /// every historical report keeps meaning) but no member evaluates
    /// them any more, and future sweeps emit nothing for them. Only the
    /// groups that carried the retired constraints are recompiled.
    ///
    /// A retired CFD that was a cover **representative** is the delicate
    /// case: emission sites never re-check `covers[0]`'s pattern, so the
    /// surviving covers cannot simply inherit the old probe pattern —
    /// each one is re-seated as its own singleton member instead (its
    /// probe pattern becomes its own pattern, which is exactly the
    /// uncovered compile of that constraint). Out-of-range indices
    /// panic; already-retired indices are skipped.
    pub fn retire_dependencies(&mut self, cfd_idxs: &[usize], cind_idxs: &[usize]) -> RetireLog {
        let mut log = RetireLog::default();
        let mut cfd_idxs = cfd_idxs.to_vec();
        cfd_idxs.sort_unstable();
        cfd_idxs.dedup();
        for idx in cfd_idxs {
            assert!(idx < self.cfds.len(), "retired CFD index out of range");
            if self.retired_cfds[idx] {
                continue;
            }
            self.retired_cfds[idx] = true;
            log.cfds.push(idx);
            let (gi, mi, ci) = self.cfd_slots[idx];
            if gi == usize::MAX {
                // Cover-dropped at compile time: nothing is compiled for
                // this constraint, retiring it is pure bookkeeping.
                continue;
            }
            let group = &mut self.cfd_groups[gi];
            if ci > 0 {
                group.members[mi].covers.remove(ci);
            } else {
                let removed = group.members.remove(mi);
                for c in removed.covers.into_iter().skip(1) {
                    group.members.push(CfdMember {
                        pattern: c.pattern.clone(),
                        rhs: removed.rhs,
                        rhs_const: removed.rhs_const.clone(),
                        covers: vec![c],
                    });
                }
            }
            // Slots moved for every constraint sharing the group (and
            // for re-seated covers); recompute before the next lookup.
            self.recompute_cfd_slots();
        }
        let mut cind_idxs = cind_idxs.to_vec();
        cind_idxs.sort_unstable();
        cind_idxs.dedup();
        for idx in cind_idxs {
            assert!(idx < self.cinds.len(), "retired CIND index out of range");
            if self.retired_cinds[idx] {
                continue;
            }
            self.retired_cinds[idx] = true;
            log.cinds.push(idx);
            let mut found = None;
            'search: for (gi, g) in self.cind_groups.iter().enumerate() {
                for (mi, m) in g.members.iter().enumerate() {
                    if let Some(ci) = m.covers.iter().position(|&c| c == idx) {
                        found = Some((gi, mi, ci));
                        break 'search;
                    }
                }
            }
            let Some((gi, mi, ci)) = found else {
                // Cover-dropped at compile time.
                continue;
            };
            let remove_member = {
                let member = &mut self.cind_groups[gi].members[mi];
                member.covers.remove(ci);
                if member.covers.is_empty() {
                    true
                } else {
                    if ci == 0 {
                        // CIND covers are payload-identical duplicates:
                        // the next one takes over as member identity
                        // with unchanged trigger/probe behavior.
                        member.idx = member.covers[0];
                    }
                    false
                }
            };
            if remove_member {
                self.cind_groups[gi].members.remove(mi);
                log.cind_members_removed.push((gi, mi));
            }
        }
        self.refresh_lints();
        log
    }

    /// The active (non-retired) Σ plus maps from the compacted slices
    /// back to this suite's indices.
    fn active_sigma(&self) -> (Vec<NormalCfd>, Vec<usize>, Vec<NormalCind>, Vec<usize>) {
        let mut cfds = Vec::new();
        let mut cfd_map = Vec::new();
        for (i, cfd) in self.cfds.iter().enumerate() {
            if !self.retired_cfds[i] {
                cfds.push(cfd.clone());
                cfd_map.push(i);
            }
        }
        let mut cinds = Vec::new();
        let mut cind_map = Vec::new();
        for (i, cind) in self.cinds.iter().enumerate() {
            if !self.retired_cinds[i] {
                cinds.push(cind.clone());
                cind_map.push(i);
            }
        }
        (cfds, cfd_map, cinds, cind_map)
    }

    /// Re-runs the cheap lint tier over the active Σ (after
    /// add/retire), translating indices back into suite numbering.
    fn refresh_lints(&mut self) {
        let (cfds, cfd_map, _, _) = self.active_sigma();
        let mut lints = condep_analyze::row_lints(&cfds, &AnalyzeConfig::default());
        for lint in &mut lints {
            lint.remap(&cfd_map, &[]);
        }
        self.lints = lints;
    }

    /// Advisory Σ lints from the analyzer's cheap tier (conflicting or
    /// redundant constant rows on a key group), computed at
    /// construction and refreshed on every add/retire. Indices are in
    /// this suite's Σ numbering. The full verdict (SAT consistency,
    /// unsat cores, domain reachability) is [`Validator::analysis`].
    pub fn lints(&self) -> &[SigmaLint] {
        &self.lints
    }

    /// Full static analysis of the active Σ against `schema`:
    /// SAT-backed consistency with a witness or a minimal unsat core,
    /// a budgeted chase when CINDs are present, and the complete lint
    /// catalogue. Indices in the result are in this suite's Σ
    /// numbering (retired dependencies are excluded from analysis).
    pub fn analysis(&self, schema: &Arc<Schema>) -> SigmaAnalysis {
        let (cfds, cfd_map, cinds, cind_map) = self.active_sigma();
        condep_analyze::analyze(schema, &cfds, &cinds, &AnalyzeConfig::default())
            .remap(&cfd_map, &cind_map)
    }

    /// Rebuilds the per-CFD slot table from the compiled groups (the
    /// same triple loop construction runs).
    fn recompute_cfd_slots(&mut self) {
        const NO_SLOT: (usize, usize, usize) = (usize::MAX, usize::MAX, usize::MAX);
        self.cfd_slots.clear();
        self.cfd_slots.resize(self.cfds.len(), NO_SLOT);
        for (gi, g) in self.cfd_groups.iter().enumerate() {
            for (mi, m) in g.members.iter().enumerate() {
                for (ci, c) in m.covers.iter().enumerate() {
                    self.cfd_slots[c.idx] = (gi, mi, ci);
                }
            }
        }
    }

    /// Has this CFD been retired?
    pub fn is_cfd_retired(&self, idx: usize) -> bool {
        self.retired_cfds[idx]
    }

    /// Has this CIND been retired?
    pub fn is_cind_retired(&self, idx: usize) -> bool {
        self.retired_cinds[idx]
    }

    /// What the compile-time cover pass merged/dropped.
    pub fn cover_stats(&self) -> CoverStats {
        self.cover_stats
    }

    /// How long compilation took and what shape it produced.
    pub fn compile_stats(&self) -> CompileStats {
        self.compile_stats
    }

    /// Number of compiled CFD tableau-row members (≤ the number of CFDs
    /// whenever the cover pass merged anything).
    pub fn compiled_cfd_members(&self) -> usize {
        self.cfd_groups.iter().map(|g| g.members.len()).sum()
    }

    /// The compiled CFDs (violation indices refer to this order).
    pub fn cfds(&self) -> &[NormalCfd] {
        &self.cfds
    }

    /// The compiled CINDs (violation indices refer to this order).
    pub fn cinds(&self) -> &[NormalCind] {
        &self.cinds
    }

    /// Number of shared `(relation, LHS)` / target-index groups — the
    /// count of group-by passes a sweep performs.
    pub fn group_count(&self) -> usize {
        self.cfd_groups.len() + self.cind_groups.len()
    }

    pub(crate) fn cfd_groups(&self) -> &[CfdGroup] {
        &self.cfd_groups
    }

    /// The `(group slot, member slot, cover slot)` of one compiled CFD.
    pub(crate) fn cfd_slot(&self, idx: usize) -> (usize, usize, usize) {
        self.cfd_slots[idx]
    }

    pub(crate) fn cind_groups(&self) -> &[CindGroup] {
        &self.cind_groups
    }

    /// Finds every violation of Σ in `db` (unsorted; see
    /// [`SigmaReport::sort`] for the canonical order).
    pub fn validate(&self, db: &Database) -> SigmaReport {
        let stop = AtomicBool::new(false);
        self.sweep(db, &stop, false)
    }

    /// [`Validator::validate`] followed by [`SigmaReport::sort`].
    pub fn validate_sorted(&self, db: &Database) -> SigmaReport {
        let mut report = self.validate(db);
        report.sort();
        report
    }

    /// Does `db` satisfy every constraint of Σ? Short-circuits on the
    /// first violation (also across parallel workers).
    pub fn satisfies(&self, db: &Database) -> bool {
        let stop = AtomicBool::new(false);
        self.sweep(db, &stop, true).is_empty()
    }

    /// The shared sweep: one task per group, striped across threads when
    /// the instance is large enough to pay for them.
    fn sweep(&self, db: &Database, stop: &AtomicBool, early_exit: bool) -> SigmaReport {
        let n_tasks = self.group_count();
        if n_tasks == 0 {
            return SigmaReport::default();
        }
        // Symbolize only the relations some group actually touches.
        let mut needed = vec![false; db.schema().len()];
        for g in &self.cfd_groups {
            needed[g.rel.index()] = true;
        }
        for g in &self.cind_groups {
            needed[g.rhs_rel.index()] = true;
        }
        for c in &self.cinds {
            needed[c.lhs_rel().index()] = true;
        }
        let (interner, tables) = SymTables::build_for(db, |rel| needed[rel.index()]);
        let threads = if db.total_tuples() < PARALLEL_THRESHOLD {
            1
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(n_tasks.max(1))
        };

        let run_task = |task: usize| -> TaskResult {
            if early_exit && stop.load(Ordering::Relaxed) {
                return TaskResult::default();
            }
            let result = if task < self.cfd_groups.len() {
                TaskResult {
                    cfd: self.run_cfd_group(
                        &self.cfd_groups[task],
                        db,
                        &interner,
                        &tables,
                        early_exit,
                    ),
                    cind: Vec::new(),
                }
            } else {
                TaskResult {
                    cfd: Vec::new(),
                    cind: self.run_cind_group(
                        &self.cind_groups[task - self.cfd_groups.len()],
                        db,
                        &interner,
                        &tables,
                        early_exit,
                    ),
                }
            };
            if early_exit && !(result.cfd.is_empty() && result.cind.is_empty()) {
                stop.store(true, Ordering::Relaxed);
            }
            result
        };

        let mut per_task: Vec<TaskResult> = Vec::with_capacity(n_tasks);
        if threads <= 1 {
            for task in 0..n_tasks {
                let result = run_task(task);
                let found = !(result.cfd.is_empty() && result.cind.is_empty());
                per_task.push(result);
                if early_exit && found {
                    break;
                }
            }
        } else {
            let mut striped: Vec<Vec<(usize, TaskResult)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|worker| {
                        let run_task = &run_task;
                        scope.spawn(move || {
                            (worker..n_tasks)
                                .step_by(threads)
                                .map(|task| (task, run_task(task)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("validation worker panicked"))
                    .collect()
            });
            // Restore group order for a deterministic report.
            let mut ordered: Vec<(usize, TaskResult)> = striped.drain(..).flatten().collect();
            ordered.sort_by_key(|(task, _)| *task);
            per_task = ordered.into_iter().map(|(_, r)| r).collect();
        }

        let mut report = SigmaReport::default();
        for task in per_task {
            report.cfd.extend(task.cfd);
            report.cind.extend(task.cind);
        }
        report
    }

    /// Evaluates every member of a CFD group against each key-group of
    /// the group's single shared index, reading pre-symbolized columns.
    fn run_cfd_group(
        &self,
        group: &CfdGroup,
        db: &Database,
        interner: &Interner,
        tables: &SymTables,
        early_exit: bool,
    ) -> Vec<(usize, CfdViolation)> {
        let rel = db.relation(group.rel);
        if rel.is_empty() {
            return Vec::new();
        }
        // Translate each member's LHS patterns into symbols once. A
        // constant string the interner has never seen cannot match any
        // tuple: the probe pattern (the most general among the member's
        // covers) being unknown kills the whole member, an individual
        // cover's extra constants being unknown kills just that cover.
        // RHS constants translate to `Err(value)` when unknown — every
        // tuple of a matching key-group then mismatches by definition.
        struct ReadyMember<'a> {
            pattern: Vec<Option<SymValue>>,
            rhs: AttrId,
            /// `None` = wildcard; `Some(Ok(sym))` = known constant;
            /// `Some(Err(v))` = constant absent from the database.
            rhs_const: Option<Result<SymValue, &'a Value>>,
            /// Live covers: original index + its own symbolized pattern.
            covers: Vec<(usize, Vec<Option<SymValue>>)>,
        }
        let sym_pattern = |cells: &[Option<Value>]| -> Option<Vec<Option<SymValue>>> {
            let mut pattern = Vec::with_capacity(cells.len());
            for cell in cells {
                match cell {
                    None => pattern.push(None),
                    Some(v) => pattern.push(Some(interner.sym_value(v)?)),
                }
            }
            Some(pattern)
        };
        let members: Vec<ReadyMember<'_>> = group
            .members
            .iter()
            .filter_map(|m| {
                let pattern = sym_pattern(&m.pattern)?;
                let covers: Vec<(usize, Vec<Option<SymValue>>)> = m
                    .covers
                    .iter()
                    .filter_map(|c| Some((c.idx, sym_pattern(&c.pattern)?)))
                    .collect();
                if covers.is_empty() {
                    return None;
                }
                Some(ReadyMember {
                    pattern,
                    rhs: m.rhs,
                    rhs_const: m.rhs_const.as_ref().map(|v| interner.sym_value(v).ok_or(v)),
                    covers,
                })
            })
            .collect();
        if members.is_empty() {
            return Vec::new();
        }

        let key_cols = tables.columns(group.rel, &group.attrs);

        // Hybrid strategy. A shared full group-by pass costs one
        // `rows × width` index build and serves every member; a
        // per-member pass filters on the member's constant cells first
        // and only indexes survivors (the classic single-CFD plan).
        // Full-wildcard members need the full pass anyway, and enough
        // members amortize it; otherwise few constant-selective members
        // are cheaper served individually (a constant-filtered column
        // scan costs far less per member than a full index build).
        const SHARED_INDEX_MIN_MEMBERS: usize = 8;
        let any_full_wildcard = members
            .iter()
            .any(|m| m.pattern.iter().all(Option::is_none));
        let mut out = Vec::new();
        if any_full_wildcard || members.len() >= SHARED_INDEX_MIN_MEMBERS {
            let idx = SymIndex::build_from_columns(rel.len(), &key_cols, |_| true);
            // Wildcard-RHS conflict witnesses per (key-group, RHS
            // attribute), shared by every member asking about the same
            // column.
            let mut pair_cache: HashMap<AttrId, Vec<(usize, usize)>, FxBuildHasher> =
                HashMap::default();
            for (key, positions) in idx.groups() {
                pair_cache.clear();
                for m in &members {
                    let matches = m
                        .pattern
                        .iter()
                        .zip(key)
                        .all(|(p, k)| p.is_none_or(|p| p == *k));
                    if !matches {
                        continue;
                    }
                    let rhs_col = tables.column(group.rel, m.rhs);
                    match &m.rhs_const {
                        Some(expected) => self.push_single_tuple_violations(
                            &m.covers,
                            key,
                            expected,
                            positions.clone(),
                            rhs_col,
                            rel,
                            &mut out,
                        ),
                        None => {
                            let pairs = pair_cache
                                .entry(m.rhs)
                                .or_insert_with(|| wildcard_pairs(positions.clone(), rhs_col));
                            for (ci, (cidx, cpat)) in m.covers.iter().enumerate() {
                                if ci > 0 && !cover_key_matches(cpat, key) {
                                    continue;
                                }
                                out.extend(pairs.iter().map(|&(left, right)| {
                                    (*cidx, CfdViolation::Pair { left, right })
                                }));
                            }
                        }
                    }
                    if early_exit && !out.is_empty() {
                        return out;
                    }
                }
            }
        } else {
            for m in &members {
                let const_cells: Vec<(&[SymValue], SymValue)> = group
                    .attrs
                    .iter()
                    .zip(&m.pattern)
                    .filter_map(|(a, p)| p.map(|s| (tables.column(group.rel, *a), s)))
                    .collect();
                let idx = SymIndex::build_from_columns(rel.len(), &key_cols, |pos| {
                    const_cells.iter().all(|(col, s)| col[pos] == *s)
                });
                let rhs_col = tables.column(group.rel, m.rhs);
                for (key, positions) in idx.groups() {
                    // The filter already enforced the probe pattern:
                    // every surviving key-group matches this member
                    // (covers past the first re-check their own extra
                    // constants against the key at emission).
                    match &m.rhs_const {
                        Some(expected) => self.push_single_tuple_violations(
                            &m.covers, key, expected, positions, rhs_col, rel, &mut out,
                        ),
                        None => {
                            let pairs = wildcard_pairs(positions, rhs_col);
                            for (ci, (cidx, cpat)) in m.covers.iter().enumerate() {
                                if ci > 0 && !cover_key_matches(cpat, key) {
                                    continue;
                                }
                                out.extend(pairs.iter().map(|&(left, right)| {
                                    (*cidx, CfdViolation::Pair { left, right })
                                }));
                            }
                        }
                    }
                    if early_exit && !out.is_empty() {
                        return out;
                    }
                }
            }
        }
        out
    }

    /// Emits `SingleTuple` violations for a constant-RHS member over one
    /// key-group, fanned out to every cover whose own pattern matches
    /// the key (the representative, `covers[0]`, matches by
    /// construction — the key-group was selected by its pattern).
    #[allow(clippy::too_many_arguments)]
    fn push_single_tuple_violations(
        &self,
        covers: &[(usize, Vec<Option<SymValue>>)],
        key: &[SymValue],
        expected: &Result<SymValue, &Value>,
        positions: impl Iterator<Item = u32>,
        rhs_col: &[SymValue],
        rel: &condep_model::Relation,
        out: &mut Vec<(usize, CfdViolation)>,
    ) {
        let expected_sym = expected.ok();
        let rep = covers[0].0;
        for pos in positions {
            if Some(rhs_col[pos as usize]) != expected_sym {
                let t = rel.get(pos as usize).expect("indexed position valid");
                let rhs = self.cfds[rep].rhs();
                let expected_value = match expected {
                    Ok(_) => self.cfds[rep]
                        .rhs_pat()
                        .as_const()
                        .expect("constant RHS")
                        .clone(),
                    Err(v) => (*v).clone(),
                };
                let violation = CfdViolation::SingleTuple {
                    tuple: pos as usize,
                    found: t[rhs].clone(),
                    expected: expected_value,
                };
                for (ci, (cidx, cpat)) in covers.iter().enumerate() {
                    if ci > 0 && !cover_key_matches(cpat, key) {
                        continue;
                    }
                    out.push((*cidx, violation.clone()));
                }
            }
        }
    }

    /// Evaluates every member of a CIND group against the group's single
    /// shared (filtered) target index, reading pre-symbolized columns.
    fn run_cind_group(
        &self,
        group: &CindGroup,
        db: &Database,
        interner: &Interner,
        tables: &SymTables,
        early_exit: bool,
    ) -> Vec<(usize, CindViolation)> {
        // A group whose members were all retired keeps its slot (stream
        // index tables stay aligned) but must not pay for a target
        // index build.
        if group.members.is_empty() {
            return Vec::new();
        }
        let target = db.relation(group.rhs_rel);
        // Symbolize the shared Yp filter; an unknown constant matches no
        // target tuple, leaving the index empty (every triggered source
        // tuple then violates, as it must).
        let yp_syms: Option<Vec<(usize, SymValue)>> = group
            .yp
            .iter()
            .map(|(a, v)| interner.sym_value(v).map(|s| (a.index(), s)))
            .collect();
        let target_cols = tables.columns(group.rhs_rel, &group.y);
        let idx = match &yp_syms {
            Some(yp) => {
                let yp_cols: Vec<(&[SymValue], SymValue)> = yp
                    .iter()
                    .map(|(a, s)| (tables.column(group.rhs_rel, AttrId(*a as u32)), *s))
                    .collect();
                SymIndex::build_from_columns(target.len(), &target_cols, |pos| {
                    yp_cols.iter().all(|(col, s)| col[pos] == *s)
                })
            }
            None => SymIndex::new(group.y.len()),
        };
        let mut out = Vec::new();
        let mut key_buf: Vec<SymValue> = Vec::new();
        for m in &group.members {
            let cind = &self.cinds[m.idx];
            let lhs_rel = cind.lhs_rel();
            let source = db.relation(lhs_rel);
            if source.is_empty() {
                continue;
            }
            // Symbolize the member's Xp trigger; unknown constants mean
            // no source tuple triggers, so the member is trivially
            // satisfied.
            let Some(xp_syms) = cind
                .xp()
                .iter()
                .map(|(a, v)| interner.sym_value(v).map(|s| (a.index(), s)))
                .collect::<Option<Vec<_>>>()
            else {
                continue;
            };
            let xp_cols: Vec<(&[SymValue], SymValue)> = xp_syms
                .iter()
                .map(|(a, s)| (tables.column(lhs_rel, AttrId(*a as u32)), *s))
                .collect();
            let x_cols = tables.columns(lhs_rel, &m.x_perm);
            for pos in 0..source.len() {
                if !xp_cols.iter().all(|(col, s)| col[pos] == *s) {
                    continue;
                }
                key_buf.clear();
                key_buf.extend(x_cols.iter().map(|col| col[pos]));
                if !idx.contains_key(&key_buf) {
                    let t1 = source.get(pos).expect("position in range");
                    let violation = CindViolation {
                        tuple: pos,
                        key: t1.project(cind.x()),
                    };
                    for &c in &m.covers {
                        out.push((c, violation.clone()));
                    }
                    if early_exit {
                        return out;
                    }
                }
            }
        }
        out
    }
}

/// One conflict witness per tuple disagreeing with the key-group's
/// first RHS value — the wildcard-RHS violation set of a group.
///
/// `positions` must arrive position-ascending (bulk-built [`SymIndex`]
/// segments are; mutated groups must be sorted first) so the witness is
/// the group's lowest position, the canonical batch report order.
fn wildcard_pairs(
    positions: impl Iterator<Item = u32>,
    rhs_col: &[SymValue],
) -> Vec<(usize, usize)> {
    wildcard_pairs_by(positions, |pos| rhs_col[pos as usize])
}

/// Does one cover's own symbolized pattern match a key-group's key?
pub(crate) fn cover_key_matches(pattern: &[Option<SymValue>], key: &[SymValue]) -> bool {
    pattern
        .iter()
        .zip(key)
        .all(|(p, k)| p.is_none_or(|p| p == *k))
}

/// The one definition of the first-witness pairing rule, generic over
/// how a position's RHS value is read — the batch sweep reads
/// symbolized columns, the delta engine reads live tuples. Keeping a
/// single implementation is what guarantees the stream/batch
/// equivalence invariant cannot drift.
pub(crate) fn wildcard_pairs_by<V, F>(
    positions: impl Iterator<Item = u32>,
    value_at: F,
) -> Vec<(usize, usize)>
where
    V: PartialEq + Copy,
    F: Fn(u32) -> V,
{
    let mut pairs = Vec::new();
    let mut first: Option<(usize, V)> = None;
    for pos in positions {
        let v = value_at(pos);
        match first {
            None => first = Some((pos as usize, v)),
            Some((fp, fv)) => {
                if fv != v {
                    pairs.push((fp, pos as usize));
                }
            }
        }
    }
    pairs
}

/// Per-task result buffers (one task = one group).
#[derive(Default)]
struct TaskResult {
    cfd: Vec<(usize, CfdViolation)>,
    cind: Vec<(usize, CindViolation)>,
}
