//! Stream instrumentation: the handles a [`ValidatorStream`] records
//! through and the journal of its recent activity.
//!
//! Every stream owns one [`StreamTelemetry`] — a private
//! [`Registry`] with pre-resolved counter/histogram handles plus a
//! bounded [`Journal`] — so parallel streams (and parallel tests) never
//! share metric state. Recording sites live on the mutation hot path;
//! the per-call cost is a handful of relaxed atomic adds (hot-loop
//! sites accumulate locally and flush once per mutation) and, for the
//! latency histograms, two clock reads. With the `telemetry` feature
//! off all of it compiles to nothing; at runtime a stream built while
//! disabled ([`StreamTelemetry::disabled`]) reduces every site to one
//! branch.
//!
//! ## Metric names
//!
//! | Name | Kind | Meaning |
//! |---|---|---|
//! | `stream.materialize_us` | histogram | index/cache build time of the seed database |
//! | `stream.apply.mutation_us` | histogram | one single-mutation call (`insert_tuple`/`delete_tuple`; an update is its delete + insert) |
//! | `stream.apply.window_us` | histogram | one `apply_deltas` batch |
//! | `stream.apply.windows` | counter | `apply_deltas` calls |
//! | `stream.compact_us` | histogram | one `compact()` pass |
//! | `stream.compactions` | counter | `compact()` calls |
//! | `stream.mutations.inserts` | counter | effective tuple arrivals |
//! | `stream.mutations.deletes` | counter | effective tuple removals |
//! | `stream.mutations.noops` | counter | mutations that changed nothing |
//! | `stream.probes.hash` | counter | key-group lookups that hashed a key |
//! | `stream.probes.slot` | counter | key-group lookups served probe-free by a slot record |
//! | `stream.pairs.fast_path` | counter | delete-side pair settlements that stayed `O(1)` (witness survived) |
//! | `stream.pairs.recompute` | counter | witness-restructure scopes (full pair recomputation) |
//! | `stream.violations.introduced` | counter | violations introduced, cumulative |
//! | `stream.violations.resolved` | counter | violations resolved, cumulative |

use crate::stream::SigmaDelta;
use condep_telemetry::{
    Counter, Histogram, HistogramSnapshot, Journal, JournalEvent, MetricsSnapshot, Registry,
    StreamEvent,
};

/// How many journal events a stream retains by default
/// ([`StreamTelemetry::set_journal_capacity`] rebounds it at runtime).
const JOURNAL_CAPACITY: usize = 256;

/// Which primitive a single-mutation call performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum MutKind {
    /// `insert_tuple`.
    Insert,
    /// `delete_tuple`.
    Delete,
}

/// Per-stream instrumentation: a private registry, pre-resolved
/// handles, and the bounded activity journal.
///
/// Obtained from [`ValidatorStream::telemetry`]; see the module docs
/// for the metric vocabulary.
///
/// [`ValidatorStream::telemetry`]: crate::ValidatorStream::telemetry
#[derive(Debug)]
pub struct StreamTelemetry {
    registry: Registry,
    journal: Journal,
    pub(crate) materialize_us: Histogram,
    pub(crate) mutation_us: Histogram,
    pub(crate) window_us: Histogram,
    pub(crate) compact_us: Histogram,
    pub(crate) windows: Counter,
    pub(crate) compactions: Counter,
    pub(crate) inserts: Counter,
    pub(crate) deletes: Counter,
    pub(crate) noops: Counter,
    pub(crate) hash_probes: Counter,
    pub(crate) slot_probes: Counter,
    pub(crate) pair_fast: Counter,
    pub(crate) pair_recompute: Counter,
    pub(crate) introduced: Counter,
    pub(crate) resolved: Counter,
}

impl StreamTelemetry {
    fn with_registry(registry: Registry) -> Self {
        StreamTelemetry {
            materialize_us: registry.histogram("stream.materialize_us"),
            mutation_us: registry.histogram("stream.apply.mutation_us"),
            window_us: registry.histogram("stream.apply.window_us"),
            compact_us: registry.histogram("stream.compact_us"),
            windows: registry.counter("stream.apply.windows"),
            compactions: registry.counter("stream.compactions"),
            inserts: registry.counter("stream.mutations.inserts"),
            deletes: registry.counter("stream.mutations.deletes"),
            noops: registry.counter("stream.mutations.noops"),
            hash_probes: registry.counter("stream.probes.hash"),
            slot_probes: registry.counter("stream.probes.slot"),
            pair_fast: registry.counter("stream.pairs.fast_path"),
            pair_recompute: registry.counter("stream.pairs.recompute"),
            introduced: registry.counter("stream.violations.introduced"),
            resolved: registry.counter("stream.violations.resolved"),
            journal: Journal::with_capacity(JOURNAL_CAPACITY),
            registry,
        }
    }

    /// Fresh recording state.
    pub fn new() -> Self {
        StreamTelemetry::with_registry(Registry::new())
    }

    /// The runtime kill switch: every record reduces to one branch,
    /// every read reports zero/empty.
    pub fn disabled() -> Self {
        StreamTelemetry::with_registry(Registry::disabled())
    }

    /// Whether this telemetry records anything (false when built
    /// [`disabled`](StreamTelemetry::disabled), and always false with
    /// the `telemetry` feature off).
    pub fn is_enabled(&self) -> bool {
        self.registry.is_enabled()
    }

    /// The stream's private registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// All metrics, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The activity journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Rebounds the activity journal to keep the newest `capacity`
    /// events (min 1; the default is 256). Long scenario runs raise it
    /// to retain a full event tail; shrinking evicts the oldest
    /// retained events immediately. Sequence numbers and the lifetime
    /// total are unaffected.
    pub fn set_journal_capacity(&mut self, capacity: usize) {
        self.journal.set_capacity(capacity);
    }

    /// The newest `n` journal events, oldest first.
    pub fn journal_tail(&self, n: usize) -> Vec<JournalEvent> {
        self.journal.tail(n)
    }

    /// Latency distribution of `apply_deltas` windows.
    pub fn window_latency(&self) -> HistogramSnapshot {
        self.window_us.snapshot()
    }

    /// Latency distribution of single-mutation calls.
    pub fn mutation_latency(&self) -> HistogramSnapshot {
        self.mutation_us.snapshot()
    }

    /// Share of key-group lookups served probe-free by slot records
    /// (`probes.slot / (probes.slot + probes.hash)`); `None` before any
    /// lookup.
    pub fn probe_cache_hit_rate(&self) -> Option<f64> {
        let slot = self.slot_probes.get();
        let total = slot + self.hash_probes.get();
        (total > 0).then(|| slot as f64 / total as f64)
    }

    /// Key-group lookups so far, both flavors — the "groups touched"
    /// baseline a wrapper diffs around a mutation or window.
    pub(crate) fn probes_total(&self) -> u64 {
        self.hash_probes.get() + self.slot_probes.get()
    }

    /// Books one single-mutation call: counters, plus a
    /// window-of-one journal event when the mutation was effective.
    /// `groups0` is [`probes_total`](Self::probes_total) from before
    /// the call.
    pub(crate) fn record_single(
        &mut self,
        kind: MutKind,
        delta: Option<&SigmaDelta>,
        groups0: u64,
    ) {
        if !self.is_enabled() {
            return;
        }
        let Some(delta) = delta else {
            self.noops.incr();
            return;
        };
        match kind {
            MutKind::Insert => self.inserts.incr(),
            MutKind::Delete => self.deletes.incr(),
        }
        let introduced = (delta.cfd.introduced.len() + delta.cind.introduced.len()) as u32;
        let resolved = (delta.cfd.resolved.len() + delta.cind.resolved.len()) as u32;
        self.introduced.add(introduced as u64);
        self.resolved.add(resolved as u64);
        self.journal.push(StreamEvent::Window {
            mutations: 1,
            groups_touched: (self.probes_total() - groups0) as u32,
            introduced,
            resolved,
        });
    }

    /// Books one `apply_deltas` window over its emitted deltas.
    pub(crate) fn record_window(&mut self, deltas: &[SigmaDelta], groups0: u64) {
        if !self.is_enabled() {
            return;
        }
        self.windows.incr();
        let mut introduced = 0u64;
        let mut resolved = 0u64;
        let mut inserts = 0u64;
        let mut deletes = 0u64;
        for d in deltas {
            introduced += (d.cfd.introduced.len() + d.cind.introduced.len()) as u64;
            resolved += (d.cfd.resolved.len() + d.cind.resolved.len()) as u64;
            inserts += d.ids.born.is_some() as u64;
            deletes += d.ids.retired.is_some() as u64;
        }
        self.inserts.add(inserts);
        self.deletes.add(deletes);
        self.introduced.add(introduced);
        self.resolved.add(resolved);
        self.journal.push(StreamEvent::Window {
            mutations: deltas.len() as u32,
            groups_touched: (self.probes_total() - groups0) as u32,
            introduced: introduced as u32,
            resolved: resolved as u32,
        });
    }

    /// Books one compaction pass.
    pub(crate) fn record_compaction(&mut self, stats: &crate::CompactionStats) {
        if !self.is_enabled() {
            return;
        }
        self.compactions.incr();
        self.journal.push(StreamEvent::Compaction {
            key_groups_dropped: stats.key_groups_dropped as u32,
            strings_dropped: stats.interned_strings_dropped() as u32,
            bytes_reclaimed: stats.interned_bytes_reclaimed() as u64,
        });
    }

    /// Books a live dependency splice (e.g. an online promotion).
    pub(crate) fn record_promote(&mut self, cfds: usize, cinds: usize, introduced: usize) {
        if !self.is_enabled() {
            return;
        }
        self.introduced.add(introduced as u64);
        self.journal.push(StreamEvent::Promote {
            cfds: cfds as u32,
            cinds: cinds as u32,
            introduced: introduced as u32,
        });
    }

    /// Books a live dependency retirement.
    pub(crate) fn record_retire(&mut self, cfds: usize, cinds: usize, resolved: usize) {
        if !self.is_enabled() {
            return;
        }
        self.resolved.add(resolved as u64);
        self.journal.push(StreamEvent::Retire {
            cfds: cfds as u32,
            cinds: cinds as u32,
            resolved: resolved as u32,
        });
    }
}

impl Default for StreamTelemetry {
    fn default() -> Self {
        StreamTelemetry::new()
    }
}

/// A forked stream records independently: cloning starts **fresh**
/// telemetry (zero counters, empty journal) with the same
/// enabled/disabled setting, rather than sharing or double-counting
/// the original's atomics.
impl Clone for StreamTelemetry {
    fn clone(&self) -> Self {
        if self.is_enabled() {
            StreamTelemetry::new()
        } else {
            StreamTelemetry::disabled()
        }
    }
}
