//! Σ cover compilation — shrink the dependency set *before* group
//! compilation so redundant dependencies never reach the hot path.
//!
//! Two tiers, distinguished by what they preserve:
//!
//! * [`SigmaCover::exact`] — **violation-exact** merges only. CFD
//!   pattern-tableau rows that agree on `(relation, LHS set, RHS
//!   attribute, RHS pattern)` and whose LHS patterns are comparable under
//!   subsumption collapse into the most general row; payload-identical
//!   CIND duplicates collapse into their first occurrence. Because a
//!   subsumed row's violations are exactly the subsumer's violations
//!   restricted to key-groups matching the subsumed pattern — and that
//!   filter can be re-evaluated on the key at emission time — a validator
//!   compiled from an exact cover reports **byte-identical** violations
//!   against the caller's original Σ indices (see the provenance fan-out
//!   in `validator.rs` / `stream.rs`).
//! * [`SigmaCover::minimal`] — additionally drops whole dependencies
//!   implied by the surviving rest, reusing the exact engines:
//!   `condep_cfd::implication::implies` (which dispatches to the
//!   polynomial `implies_infinite` template chase when no finite-domain
//!   attribute is mentioned) and `condep_core::cover::minimal_cover` for
//!   CINDs. `Unknown` verdicts keep the candidate, so the surviving set
//!   is always logically equivalent to the input — but a dependency
//!   dropped this way has no violation-exact representative, so the
//!   minimal tier is **satisfaction**-preserving only. It is the right
//!   tier for discovery dedup and clean-monitoring workloads, not for
//!   per-index violation reporting.

use condep_cfd::NormalCfd;
use condep_core::NormalCind;
use condep_model::fxhash::FxBuildHasher;
use condep_model::{AttrId, Implication, ImplicationConfig, PValue, RelId, Schema, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Where one original dependency ended up after cover compilation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoverRole {
    /// Survives as a representative. `covered` lists the original
    /// indices merged into it (self excluded, attachment order).
    Keep {
        /// Original indices whose violations this representative now
        /// carries (each filtered by its own pattern at emission).
        covered: Vec<usize>,
    },
    /// Merged into the surviving representative at the given original
    /// index: the representative's violations, filtered by this
    /// dependency's own pattern, are exactly this dependency's
    /// violations.
    MergedInto(usize),
    /// Dropped by implication analysis: the surviving set implies it.
    /// Satisfaction-equivalent, **not** violation-exact — only
    /// [`SigmaCover::minimal`] produces this role.
    Implied,
}

impl CoverRole {
    /// Whether this dependency survives compilation.
    pub fn is_kept(&self) -> bool {
        matches!(self, CoverRole::Keep { .. })
    }
}

/// Statistics of one cover computation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoverStats {
    /// CFD tableau rows merged into a subsuming representative.
    pub cfd_merged: usize,
    /// CFDs dropped as implied by the surviving rest (minimal tier).
    pub cfd_implied: usize,
    /// CFD implication checks that hit the budget (candidate kept).
    pub cfd_unknown_kept: usize,
    /// CIND duplicates merged into their first occurrence.
    pub cind_merged: usize,
    /// CINDs dropped as implied by the surviving rest (minimal tier).
    pub cind_implied: usize,
    /// CIND implication checks that hit the budget (candidate kept).
    pub cind_unknown_kept: usize,
}

impl condep_telemetry::Export for CoverStats {
    fn export(&self, prefix: &str, out: &mut condep_telemetry::MetricsSnapshot) {
        let k = |name| condep_telemetry::key(prefix, name);
        out.counter(k("cfd_merged"), self.cfd_merged as u64);
        out.counter(k("cfd_implied"), self.cfd_implied as u64);
        out.counter(k("cfd_unknown_kept"), self.cfd_unknown_kept as u64);
        out.counter(k("cind_merged"), self.cind_merged as u64);
        out.counter(k("cind_implied"), self.cind_implied as u64);
        out.counter(k("cind_unknown_kept"), self.cind_unknown_kept as u64);
    }
}

/// The cover of one constraint suite: a role per original dependency,
/// in the caller's index space.
#[derive(Clone, Debug)]
pub struct SigmaCover {
    /// Per original CFD index: its role.
    pub cfd: Vec<CoverRole>,
    /// Per original CIND index: its role.
    pub cind: Vec<CoverRole>,
    /// What the computation merged/dropped.
    pub stats: CoverStats,
}

impl SigmaCover {
    /// The identity cover: every dependency survives, covering nothing.
    pub fn identity(n_cfds: usize, n_cinds: usize) -> Self {
        SigmaCover {
            cfd: (0..n_cfds)
                .map(|_| CoverRole::Keep {
                    covered: Vec::new(),
                })
                .collect(),
            cind: (0..n_cinds)
                .map(|_| CoverRole::Keep {
                    covered: Vec::new(),
                })
                .collect(),
            stats: CoverStats::default(),
        }
    }

    /// The violation-exact tier: subsumption merges of CFD tableau rows
    /// and payload-identical CIND duplicates. No implication engine is
    /// invoked; the pass is a pure hashing/subsumption scan and safe to
    /// run on every compilation.
    pub fn exact(cfds: &[NormalCfd], cinds: &[NormalCind]) -> Self {
        let mut stats = CoverStats::default();
        let cfd = exact_cfd_roles(cfds, &mut stats);
        let cind = exact_cind_roles(cinds, &mut stats);
        SigmaCover { cfd, cind, stats }
    }

    /// The satisfaction-preserving tier: [`SigmaCover::exact`] followed
    /// by greedy implication-based drops of whole representatives.
    /// `Unknown` verdicts keep the candidate, so the surviving set is
    /// always equivalent to the input.
    pub fn minimal(
        schema: &Arc<Schema>,
        cfds: &[NormalCfd],
        cinds: &[NormalCind],
        config: ImplicationConfig,
    ) -> Self {
        let mut cover = SigmaCover::exact(cfds, cinds);

        // CFDs: examine surviving representatives in input order; each
        // drop re-examines against the *current* reduced set (mirrors
        // `condep_core::cover::minimal_cover`). A representative's merged
        // rows are subsumption-implied by it, hence also implied by
        // whatever implies the representative — the whole cover group is
        // dropped together.
        let mut reps: Vec<usize> = cover
            .cfd
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_kept())
            .map(|(i, _)| i)
            .collect();
        let mut i = 0;
        while i < reps.len() {
            let cand = reps[i];
            let rest: Vec<NormalCfd> = reps
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, &r)| cfds[r].clone())
                .collect();
            match condep_cfd::implication::implies(schema, &rest, &cfds[cand], config) {
                Implication::Implied => {
                    let role = std::mem::replace(&mut cover.cfd[cand], CoverRole::Implied);
                    cover.stats.cfd_implied += 1;
                    if let CoverRole::Keep { covered } = role {
                        for c in covered {
                            cover.cfd[c] = CoverRole::Implied;
                            cover.stats.cfd_merged -= 1;
                            cover.stats.cfd_implied += 1;
                        }
                    }
                    reps.remove(i);
                }
                Implication::NotImplied => i += 1,
                Implication::Unknown => {
                    cover.stats.cfd_unknown_kept += 1;
                    i += 1;
                }
            }
        }

        // CINDs: delegate to the Section 8 cover over the surviving
        // representatives and map the verdicts back to original indices.
        let cind_reps: Vec<usize> = cover
            .cind
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_kept())
            .map(|(i, _)| i)
            .collect();
        let rep_cinds: Vec<NormalCind> = cind_reps.iter().map(|&i| cinds[i].clone()).collect();
        let c = condep_core::cover::minimal_cover(schema, &rep_cinds, config);
        for &ri in &c.removed {
            let orig = cind_reps[ri];
            let role = std::mem::replace(&mut cover.cind[orig], CoverRole::Implied);
            cover.stats.cind_implied += 1;
            if let CoverRole::Keep { covered } = role {
                for cc in covered {
                    cover.cind[cc] = CoverRole::Implied;
                    cover.stats.cind_merged -= 1;
                    cover.stats.cind_implied += 1;
                }
            }
        }
        cover.stats.cind_unknown_kept += c.undecided.len();
        cover
    }

    /// Indices of the surviving CFDs, ascending.
    pub fn kept_cfds(&self) -> Vec<usize> {
        self.cfd
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_kept())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of the surviving CINDs, ascending.
    pub fn kept_cinds(&self) -> Vec<usize> {
        self.cind
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_kept())
            .map(|(i, _)| i)
            .collect()
    }
}

/// `general` subsumes `specific` when every constant cell of `general`
/// is carried verbatim by `specific` (both aligned on the same canonical
/// attribute order). Equal patterns subsume each other.
pub(crate) fn subsumes(general: &[Option<Value>], specific: &[Option<Value>]) -> bool {
    debug_assert_eq!(general.len(), specific.len());
    general.iter().zip(specific).all(|(g, s)| match g {
        None => true,
        Some(gv) => s.as_ref() == Some(gv),
    })
}

/// The canonical (sorted-LHS) pattern of one CFD, cells cloned.
pub(crate) fn canonical_pattern(cfd: &NormalCfd) -> (Vec<AttrId>, Vec<Option<Value>>) {
    let (attrs, pattern) = cfd.canonical_lhs();
    (attrs, pattern.into_iter().map(|c| c.cloned()).collect())
}

fn exact_cfd_roles(cfds: &[NormalCfd], stats: &mut CoverStats) -> Vec<CoverRole> {
    type Key = (RelId, Vec<AttrId>, AttrId, Option<Value>);
    struct Kept {
        rep: usize,
        pattern: Vec<Option<Value>>,
        covered: Vec<usize>,
    }
    let mut buckets: HashMap<Key, Vec<Kept>, FxBuildHasher> = HashMap::default();
    for (idx, cfd) in cfds.iter().enumerate() {
        let (attrs, pattern) = canonical_pattern(cfd);
        let rhs_const = match cfd.rhs_pat() {
            PValue::Const(v) => Some(v.clone()),
            PValue::Any => None,
        };
        let bucket = buckets
            .entry((cfd.rel(), attrs, cfd.rhs(), rhs_const))
            .or_default();
        // Attach to the first kept row subsuming this one (ties — equal
        // patterns — deterministically keep the earliest index).
        if let Some(k) = bucket.iter_mut().find(|k| subsumes(&k.pattern, &pattern)) {
            k.covered.push(idx);
            continue;
        }
        // Otherwise swallow every kept row this one subsumes; the
        // newcomer becomes the bucket's (more general) representative.
        let mut covered = Vec::new();
        let mut i = 0;
        while i < bucket.len() {
            if subsumes(&pattern, &bucket[i].pattern) {
                let k = bucket.remove(i);
                covered.push(k.rep);
                covered.extend(k.covered);
            } else {
                i += 1;
            }
        }
        bucket.push(Kept {
            rep: idx,
            pattern,
            covered,
        });
    }
    let mut roles: Vec<CoverRole> = (0..cfds.len())
        .map(|_| CoverRole::Keep {
            covered: Vec::new(),
        })
        .collect();
    for bucket in buckets.into_values() {
        for k in bucket {
            for &c in &k.covered {
                roles[c] = CoverRole::MergedInto(k.rep);
                stats.cfd_merged += 1;
            }
            roles[k.rep] = CoverRole::Keep { covered: k.covered };
        }
    }
    roles
}

fn exact_cind_roles(cinds: &[NormalCind], stats: &mut CoverStats) -> Vec<CoverRole> {
    // Violation payloads are `(source position, t1.project(x))`, so two
    // CINDs are payload-identical only when they agree on the source
    // relation, the X *sequence*, the Xp trigger, and the full target
    // side — i.e. they are the same dependency up to Xp/Yp ordering.
    type Key = (
        RelId,
        Vec<AttrId>,
        Vec<(AttrId, Value)>,
        RelId,
        Vec<AttrId>,
        Vec<(AttrId, Value)>,
    );
    let mut first_seen: HashMap<Key, usize, FxBuildHasher> = HashMap::default();
    let mut roles: Vec<CoverRole> = (0..cinds.len())
        .map(|_| CoverRole::Keep {
            covered: Vec::new(),
        })
        .collect();
    for (idx, cind) in cinds.iter().enumerate() {
        let mut xp = cind.xp().to_vec();
        xp.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let mut yp = cind.yp().to_vec();
        yp.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let key: Key = (
            cind.lhs_rel(),
            cind.x().to_vec(),
            xp,
            cind.rhs_rel(),
            cind.y().to_vec(),
            yp,
        );
        match first_seen.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let rep = *e.get();
                if let CoverRole::Keep { covered } = &mut roles[rep] {
                    covered.push(idx);
                }
                roles[idx] = CoverRole::MergedInto(rep);
                stats.cind_merged += 1;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(idx);
            }
        }
    }
    roles
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_model::{prow, Domain, Value};

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder()
                .relation(
                    "r",
                    &[
                        ("a", Domain::string()),
                        ("b", Domain::string()),
                        ("c", Domain::string()),
                    ],
                )
                .relation("s", &[("x", Domain::string()), ("y", Domain::string())])
                .finish(),
        )
    }

    fn fd(schema: &Arc<Schema>, lhs: &[&str], pat: condep_model::PatternRow) -> NormalCfd {
        NormalCfd::parse(schema, "r", lhs, pat, "b", PValue::Any).unwrap()
    }

    #[test]
    fn empty_sigma_has_empty_cover() {
        let schema = schema();
        for cover in [
            SigmaCover::exact(&[], &[]),
            SigmaCover::minimal(&schema, &[], &[], ImplicationConfig::default()),
        ] {
            assert!(cover.cfd.is_empty());
            assert!(cover.cind.is_empty());
            assert_eq!(cover.stats, CoverStats::default());
            assert!(cover.kept_cfds().is_empty());
            assert!(cover.kept_cinds().is_empty());
        }
    }

    #[test]
    fn equal_patterns_merge_into_earliest_index() {
        let schema = schema();
        let sigma = vec![
            fd(&schema, &["a"], prow![_]),
            fd(&schema, &["a"], prow![_]),
            fd(&schema, &["a"], prow![_]),
        ];
        let cover = SigmaCover::exact(&sigma, &[]);
        assert_eq!(
            cover.cfd[0],
            CoverRole::Keep {
                covered: vec![1, 2]
            }
        );
        assert_eq!(cover.cfd[1], CoverRole::MergedInto(0));
        assert_eq!(cover.cfd[2], CoverRole::MergedInto(0));
        assert_eq!(cover.stats.cfd_merged, 2);
        assert_eq!(cover.kept_cfds(), vec![0]);
    }

    #[test]
    fn wildcard_and_constant_rhs_never_share_a_bucket() {
        let schema = schema();
        // Identical LHS patterns, but one row binds the RHS to a
        // constant: a wildcard-RHS violation is a *pair*, a constant-RHS
        // violation is a *single tuple* — merging them would change the
        // report. Within each bucket, subsumption still merges.
        let sigma = vec![
            fd(&schema, &["a"], prow![_]),
            NormalCfd::parse(&schema, "r", &["a"], prow![_], "b", PValue::constant("x")).unwrap(),
            fd(&schema, &["a"], prow!["k"]),
            NormalCfd::parse(&schema, "r", &["a"], prow!["k"], "b", PValue::constant("x")).unwrap(),
        ];
        let cover = SigmaCover::exact(&sigma, &[]);
        assert_eq!(cover.cfd[0], CoverRole::Keep { covered: vec![2] });
        assert_eq!(cover.cfd[1], CoverRole::Keep { covered: vec![3] });
        assert_eq!(cover.cfd[2], CoverRole::MergedInto(0));
        assert_eq!(cover.cfd[3], CoverRole::MergedInto(1));
        assert_eq!(cover.stats.cfd_merged, 2);
        assert_eq!(cover.kept_cfds(), vec![0, 1]);
    }

    #[test]
    fn later_general_row_swallows_earlier_specific_rows() {
        let schema = schema();
        let sigma = vec![
            fd(&schema, &["a"], prow!["k1"]),
            fd(&schema, &["a"], prow!["k2"]),
            fd(&schema, &["a"], prow![_]),
        ];
        let cover = SigmaCover::exact(&sigma, &[]);
        assert_eq!(cover.cfd[0], CoverRole::MergedInto(2));
        assert_eq!(cover.cfd[1], CoverRole::MergedInto(2));
        assert_eq!(
            cover.cfd[2],
            CoverRole::Keep {
                covered: vec![0, 1]
            }
        );
        assert_eq!(cover.kept_cfds(), vec![2]);
    }

    #[test]
    fn incomparable_patterns_stay_separate() {
        let schema = schema();
        let sigma = vec![
            fd(&schema, &["a", "c"], prow!["k", _]),
            fd(&schema, &["a", "c"], prow![_, "m"]),
        ];
        let cover = SigmaCover::exact(&sigma, &[]);
        assert_eq!(cover.kept_cfds(), vec![0, 1]);
        assert_eq!(cover.stats.cfd_merged, 0);
    }

    #[test]
    fn mutually_implying_cfds_drop_the_first_examined() {
        // Over a singleton domain for `a`, `(a = z0, c) → b` and
        // `c → b` are logically equivalent but live in different
        // buckets (different LHS sets), so only the minimal tier can
        // collapse them. The greedy pass examines representatives in
        // input order and drops the first of a mutually-implying pair —
        // whichever it is — so the survivor is deterministic per input
        // order and the pair never vanishes entirely.
        let schema = Arc::new(
            Schema::builder()
                .relation(
                    "r",
                    &[
                        ("a", Domain::finite_strs(&["z0"])),
                        ("b", Domain::string()),
                        ("c", Domain::string()),
                    ],
                )
                .finish(),
        );
        let specific =
            NormalCfd::parse(&schema, "r", &["a", "c"], prow!["z0", _], "b", PValue::Any).unwrap();
        let general = NormalCfd::parse(&schema, "r", &["c"], prow![_], "b", PValue::Any).unwrap();
        let config = ImplicationConfig::default();

        let forward = vec![specific.clone(), general.clone()];
        let cover = SigmaCover::exact(&forward, &[]);
        assert_eq!(cover.kept_cfds(), vec![0, 1], "exact tier keeps both");
        let cover = SigmaCover::minimal(&schema, &forward, &[], config);
        assert_eq!(cover.kept_cfds(), vec![1]);
        assert_eq!(cover.cfd[0], CoverRole::Implied);
        assert_eq!(cover.stats.cfd_implied, 1);

        let reverse = vec![general, specific];
        let cover = SigmaCover::minimal(&schema, &reverse, &[], config);
        assert_eq!(cover.kept_cfds(), vec![1]);
        assert_eq!(cover.cfd[0], CoverRole::Implied);
    }

    #[test]
    fn implied_representative_takes_its_merged_rows_down() {
        // A representative that carried merged duplicates is dropped by
        // implication: the duplicates' violations were defined through
        // it, so they become `Implied` too and the stats rebalance.
        let schema = Arc::new(
            Schema::builder()
                .relation(
                    "r",
                    &[
                        ("a", Domain::finite_strs(&["z0"])),
                        ("b", Domain::string()),
                        ("c", Domain::string()),
                    ],
                )
                .finish(),
        );
        let specific =
            NormalCfd::parse(&schema, "r", &["a", "c"], prow!["z0", _], "b", PValue::Any).unwrap();
        let general = NormalCfd::parse(&schema, "r", &["c"], prow![_], "b", PValue::Any).unwrap();
        let sigma = vec![specific.clone(), specific, general];
        let cover = SigmaCover::minimal(&schema, &sigma, &[], ImplicationConfig::default());
        assert_eq!(cover.kept_cfds(), vec![2]);
        assert_eq!(cover.cfd[0], CoverRole::Implied);
        assert_eq!(cover.cfd[1], CoverRole::Implied);
        assert_eq!(cover.stats.cfd_merged, 0);
        assert_eq!(cover.stats.cfd_implied, 2);
    }

    #[test]
    fn cind_duplicates_merge_up_to_condition_ordering() {
        let schema = schema();
        let v = |s: &str| Value::from(s);
        // Same dependency with the Xp/Yp condition pairs permuted — the
        // violation payload is identical, so they merge; flipping a
        // condition *value* keeps them apart.
        let sigma = vec![
            NormalCind::parse(
                &schema,
                "r",
                &["a"],
                &[("b", v("u")), ("c", v("w"))],
                "s",
                &["x"],
                &[],
            )
            .unwrap(),
            NormalCind::parse(
                &schema,
                "r",
                &["a"],
                &[("c", v("w")), ("b", v("u"))],
                "s",
                &["x"],
                &[],
            )
            .unwrap(),
            NormalCind::parse(
                &schema,
                "r",
                &["a"],
                &[("c", v("OTHER")), ("b", v("u"))],
                "s",
                &["x"],
                &[],
            )
            .unwrap(),
        ];
        let cover = SigmaCover::exact(&[], &sigma);
        assert_eq!(cover.cind[0], CoverRole::Keep { covered: vec![1] });
        assert_eq!(cover.cind[1], CoverRole::MergedInto(0));
        assert_eq!(cover.cind[2], CoverRole::Keep { covered: vec![] });
        assert_eq!(cover.stats.cind_merged, 1);
        assert_eq!(cover.kept_cinds(), vec![0, 2]);
    }
}
