#![warn(missing_docs)]

//! # condep-validate
//!
//! The batched Σ-validation engine.
//!
//! The paper's Section 6 experiments check constraint sets of up to 20K
//! CFDs/CINDs against sizable instances. Checking each normal CFD
//! independently rebuilds a full group-by index over its relation per
//! constraint — `k` constraints sharing one embedded FD `X → A` cost `k`
//! full scans. The classic pattern-tableau observation (Bravo/Fan/Ma)
//! is that a set of normal CFDs over the same `(R, X)` is *one* tableau:
//! every pattern row can be evaluated against each key-group of a
//! **single** group-by pass.
//!
//! [`Validator`] implements that:
//!
//! * Σ is compiled once, grouping CFDs by `(relation, LHS attribute
//!   set)` (LHS lists are canonicalized by sorting, patterns permuted in
//!   lock-step) and CINDs by `(target relation, Y set, Yp pattern)`;
//! * per database, strings are interned once
//!   ([`condep_model::Interner`]) and each group builds **one**
//!   [`condep_query::SymIndex`] over compact word-sized keys;
//! * independent groups are swept in parallel with
//!   [`std::thread::scope`] (small instances stay single-threaded);
//! * [`ValidatorStream`] is the **delta engine**: it keeps the group
//!   indexes (plus reverse CIND source indexes) live together with the
//!   materialized violation set, and every
//!   insert / delete / update returns a [`SigmaDelta`] — the violations
//!   the mutation introduced *and* the violations it resolved
//!   (retraction) — in time proportional to the constraint groups and
//!   key groups the tuple touches, never to the database. Open one with
//!   [`ValidatorStream::new_validated`] (which also reports the seed
//!   database's initial violations) or seed a known report with
//!   [`ValidatorStream::with_report`];
//! * the stream is built for **whole-life monitoring**:
//!   [`condep_model::TupleId`] handles address tuples stably across the
//!   swap renumbering deletions cause (every delta carries its
//!   [`IdDelta`] bookkeeping), [`ValidatorStream::apply_deltas`]
//!   amortizes interner and key-translation work across a mutation
//!   batch, and [`ValidatorStream::compact`] reclaims everything churn
//!   leaves behind — emptied key groups, dead interned strings, retired
//!   id slots — without disturbing a single live key, violation or id.
//!
//! Results are identical (as sets, and after [`SigmaReport::sort`] even
//! in order) to running `condep_cfd::find_violations` /
//! `condep_core::find_violations` per constraint, and
//! [`ValidatorStream::current_report`] stays equal to a fresh
//! [`Validator::validate_sorted`] across arbitrary mutation sequences —
//! single, batched or interleaved with compactions — all
//! property-tested at the workspace root.

pub mod cover;
mod stream;
mod telemetry;
mod validator;

pub use condep_analyze::{
    AnalyzeConfig, BudgetTrip, SigmaAnalysis, SigmaLint, SigmaVerdict, UnsatCore, UnsatSigma,
    Witness,
};
pub use condep_model::TupleId;
pub use cover::{CoverRole, CoverStats, SigmaCover};
pub use stream::{
    Applied, CompactionStats, IdDelta, MovedTuple, Mutation, SigmaDelta, ValidatorStream,
};
pub use telemetry::StreamTelemetry;
pub use validator::{CompileStats, RetireLog, SigmaReport, Validator};

#[cfg(test)]
mod tests {
    use super::*;
    use condep_cfd::fixtures as cfd_fx;
    use condep_cfd::normalize::normalize_all as normalize_cfds;
    use condep_cfd::{CfdViolation, NormalCfd};
    use condep_core::fixtures as cind_fx;
    use condep_core::normalize::normalize_all as normalize_cinds;
    use condep_model::fixtures::{bank_database, clean_bank_database};
    use condep_model::{prow, tuple, Database, Domain, PValue, Schema};
    use std::sync::Arc;

    fn bank_validator() -> Validator {
        Validator::new(
            normalize_cfds(&[cfd_fx::phi1(), cfd_fx::phi2(), cfd_fx::phi3()]),
            normalize_cinds(&cind_fx::figure_2()),
        )
    }

    /// The per-constraint reference detectors, as a sorted report.
    fn reference_report(v: &Validator, db: &Database) -> SigmaReport {
        let mut expected = SigmaReport::default();
        for (i, cfd) in v.cfds().iter().enumerate() {
            for viol in condep_cfd::find_violations(db, cfd) {
                expected.cfd.push((i, viol));
            }
        }
        for (i, cind) in v.cinds().iter().enumerate() {
            for viol in condep_core::find_violations(db, cind) {
                expected.cind.push((i, viol));
            }
        }
        expected.sort();
        expected
    }

    #[test]
    fn batched_report_matches_reference_on_figure_1() {
        let v = bank_validator();
        let db = bank_database();
        let report = v.validate_sorted(&db);
        assert_eq!(report, reference_report(&v, &db));
        // Exactly the paper's two errors: t12 (ϕ3) and t10 (ψ6).
        assert_eq!(report.cfd.len(), 1);
        assert_eq!(report.cind.len(), 1);
        assert!(!v.satisfies(&db));
    }

    #[test]
    fn clean_instance_is_clean() {
        let v = bank_validator();
        let db = clean_bank_database();
        assert!(v.validate(&db).is_empty());
        assert!(v.satisfies(&db));
    }

    #[test]
    fn shared_lhs_cfds_land_in_one_group() {
        let db = bank_database();
        let schema = db.schema();
        // Three CFDs over interest[ct, at] → rt, plus one over the
        // permuted list [at, ct]: all one group, one shared index.
        let cfds = vec![
            NormalCfd::parse(
                schema,
                "interest",
                &["ct", "at"],
                prow![_, _],
                "rt",
                PValue::Any,
            )
            .unwrap(),
            NormalCfd::parse(
                schema,
                "interest",
                &["ct", "at"],
                prow!["UK", "checking"],
                "rt",
                PValue::constant("1.5%"),
            )
            .unwrap(),
            NormalCfd::parse(
                schema,
                "interest",
                &["at", "ct"],
                prow!["saving", "UK"],
                "rt",
                PValue::constant("4.5%"),
            )
            .unwrap(),
        ];
        let v = Validator::new(cfds, vec![]);
        assert_eq!(v.group_count(), 1);
        let report = v.validate_sorted(&db);
        assert_eq!(report, reference_report(&v, &db));
    }

    #[test]
    fn empty_lhs_group_forces_global_agreement() {
        let schema = Arc::new(
            Schema::builder()
                .relation("r", &[("a", Domain::string()), ("b", Domain::string())])
                .finish(),
        );
        let cfd = NormalCfd::parse(&schema, "r", &[], prow![], "b", PValue::Any).unwrap();
        let v = Validator::new(vec![cfd], vec![]);
        let mut db = Database::empty(schema.clone());
        db.insert_into("r", tuple!["x", "same"]).unwrap();
        db.insert_into("r", tuple!["y", "same"]).unwrap();
        assert!(v.satisfies(&db));
        db.insert_into("r", tuple!["z", "different"]).unwrap();
        let report = v.validate_sorted(&db);
        assert_eq!(report, reference_report(&v, &db));
        assert_eq!(
            report.cfd,
            vec![(0, CfdViolation::Pair { left: 0, right: 2 })]
        );
    }

    #[test]
    fn pattern_constant_unknown_to_the_database_matches_nothing() {
        let db = clean_bank_database();
        let schema = db.schema();
        // "Paris" appears nowhere in the instance: the member is pruned,
        // not a panic, and there are no violations.
        let cfd = NormalCfd::parse(
            schema,
            "interest",
            &["ab"],
            prow!["Paris"],
            "rt",
            PValue::constant("9.9%"),
        )
        .unwrap();
        let v = Validator::new(vec![cfd], vec![]);
        assert!(v.validate(&db).is_empty());
        assert!(v.satisfies(&db));
    }

    #[test]
    fn unknown_rhs_constant_still_flags_matching_tuples() {
        let schema = Arc::new(
            Schema::builder()
                .relation("r", &[("a", Domain::string()), ("b", Domain::string())])
                .finish(),
        );
        // RHS constant "never" is not in the database, so every matching
        // tuple violates; the LHS wildcard means all tuples match.
        let cfd = NormalCfd::parse(
            &schema,
            "r",
            &["a"],
            prow![_],
            "b",
            PValue::constant("never"),
        )
        .unwrap();
        let v = Validator::new(vec![cfd], vec![]);
        let mut db = Database::empty(schema);
        db.insert_into("r", tuple!["k", "v"]).unwrap();
        let report = v.validate_sorted(&db);
        assert_eq!(report, reference_report(&v, &db));
        assert_eq!(report.cfd.len(), 1);
    }

    #[test]
    fn stream_reports_only_new_violations() {
        let db = clean_bank_database();
        let schema = db.schema().clone();
        let interest = schema.rel_id("interest").unwrap();
        let v = Validator::new(
            normalize_cfds(&[cfd_fx::phi3()]),
            normalize_cinds(&cind_fx::figure_2()),
        );
        let (mut stream, initial) = ValidatorStream::new_validated(v, db);
        assert!(initial.is_empty(), "the clean seed has no violations");
        // A clean tuple: UK checking at the mandated 1.5%.
        let clean = stream
            .insert_tuple(interest, tuple!["GLA", "UK", "checking", "1.5%"])
            .unwrap();
        assert!(clean.is_quiet(), "clean insert must be quiet: {clean:?}");
        // A dirty tuple: UK checking at the wrong rate. Both normal
        // forms of ϕ3 fire: the constant row (single-tuple mismatch)
        // and the wildcard FD row (pair against a resident 1.5% tuple).
        let dirty = stream
            .insert_tuple(interest, tuple!["GLA", "UK", "checking", "9.9%"])
            .unwrap();
        assert_eq!(dirty.cfd.introduced.len(), 2, "unexpected: {dirty:?}");
        assert!(dirty.cfd.resolved.is_empty());
        assert!(dirty.cfd.introduced.iter().any(|(_, v)| matches!(
            v,
            CfdViolation::SingleTuple { found, expected, .. }
                if found.to_string() == "9.9%" && expected.to_string() == "1.5%"
        )));
        assert!(dirty
            .cfd
            .introduced
            .iter()
            .any(|(_, v)| matches!(v, CfdViolation::Pair { .. })));
        // Re-inserting an existing tuple is a set-semantics no-op.
        let dup = stream
            .insert_tuple(interest, tuple!["GLA", "UK", "checking", "9.9%"])
            .unwrap();
        assert!(dup.is_quiet());
        // Deleting the dirty tuple retracts exactly what it introduced.
        let gone = stream
            .delete_tuple(interest, &tuple!["GLA", "UK", "checking", "9.9%"])
            .unwrap();
        assert_eq!(gone.resolved(), dirty.introduced());
        assert!(gone.cfd.introduced.is_empty());
        assert_eq!(stream.violation_count(), 0);
        assert_eq!(
            stream.current_report(),
            stream.validator().validate_sorted(stream.db()),
        );
    }

    #[test]
    fn new_validated_reports_the_seed_violations() {
        let v = bank_validator();
        let db = bank_database();
        let expected = v.validate_sorted(&db);
        let (stream, initial) = ValidatorStream::new_validated(v, db);
        assert_eq!(initial, expected);
        assert_eq!(initial.len(), 2, "the paper's two errors");
        assert_eq!(stream.current_report(), expected);
    }

    #[test]
    fn delete_retracts_cind_orphans_and_insert_resolves_them() {
        let schema = Arc::new(
            Schema::builder()
                .relation("src", &[("a", Domain::string()), ("b", Domain::string())])
                .relation("dst", &[("c", Domain::string())])
                .finish(),
        );
        let cind = condep_core::NormalCind::parse(&schema, "src", &["a"], &[], "dst", &["c"], &[])
            .unwrap();
        let src = schema.rel_id("src").unwrap();
        let dst = schema.rel_id("dst").unwrap();
        let v = Validator::new(vec![], vec![cind]);
        let (mut stream, _) = ValidatorStream::new_validated(v, Database::empty(schema));
        stream.insert_tuple(src, tuple!["k", "v1"]).unwrap();
        stream.insert_tuple(src, tuple!["k", "v2"]).unwrap();
        // Two orphans; the arriving partner resolves both.
        assert_eq!(stream.violation_count(), 2);
        let arrival = stream.insert_tuple(dst, tuple!["k"]).unwrap();
        assert_eq!(arrival.cind.resolved.len(), 2, "{arrival:?}");
        assert!(arrival.cind.introduced.is_empty());
        assert_eq!(stream.violation_count(), 0);
        // Deleting the only partner re-orphans both sources.
        let gone = stream.delete_tuple(dst, &tuple!["k"]).unwrap();
        assert_eq!(gone.cind.introduced.len(), 2, "{gone:?}");
        assert_eq!(stream.violation_count(), 2);
        assert_eq!(
            stream.current_report(),
            stream.validator().validate_sorted(stream.db()),
        );
    }

    #[test]
    fn delete_swap_renumbers_live_violations() {
        // Build a relation where deleting position 0 moves the last
        // tuple (which owns violations) into the hole.
        let schema = Arc::new(
            Schema::builder()
                .relation("r", &[("a", Domain::string()), ("b", Domain::string())])
                .finish(),
        );
        let fd = NormalCfd::parse(&schema, "r", &["a"], prow![_], "b", PValue::Any).unwrap();
        let pin = NormalCfd::parse(
            &schema,
            "r",
            &["a"],
            prow!["k"],
            "b",
            PValue::constant("v1"),
        )
        .unwrap();
        let r = schema.rel_id("r").unwrap();
        let mut db = Database::empty(schema.clone());
        db.insert_into("r", tuple!["x", "q"]).unwrap(); // pos 0: unrelated
        db.insert_into("r", tuple!["k", "v1"]).unwrap(); // pos 1: group first
        db.insert_into("r", tuple!["k", "v2"]).unwrap(); // pos 2: pair + single
        let v = Validator::new(vec![fd, pin], vec![]);
        let (mut stream, initial) = ValidatorStream::new_validated(v, db);
        assert_eq!(initial.cfd.len(), 2, "{initial:?}");
        // Deleting pos 0 swaps ("k","v2") from 2 → 0; it becomes the
        // group's lowest position, so the pair witness relabels too.
        let delta = stream.delete_tuple(r, &tuple!["x", "q"]).unwrap();
        let moved = delta.moved.expect("a swap happened");
        assert_eq!((moved.from, moved.to), (2, 0));
        let batch = stream.validator().validate_sorted(stream.db());
        assert_eq!(stream.current_report(), batch);
        assert_eq!(stream.violation_count(), 2);
    }

    #[test]
    fn update_tuple_returns_both_deltas_and_checks_types_first() {
        let schema = Arc::new(
            Schema::builder()
                .relation(
                    "r",
                    &[
                        ("a", Domain::string()),
                        ("b", Domain::finite_strs(&["u", "v"])),
                    ],
                )
                .finish(),
        );
        let fd = NormalCfd::parse(&schema, "r", &["a"], prow![_], "b", PValue::Any).unwrap();
        let r = schema.rel_id("r").unwrap();
        let mut db = Database::empty(schema.clone());
        db.insert_into("r", tuple!["k", "u"]).unwrap();
        db.insert_into("r", tuple!["k", "v"]).unwrap();
        let v = Validator::new(vec![fd], vec![]);
        let (mut stream, initial) = ValidatorStream::new_validated(v, db);
        assert_eq!(initial.len(), 1);
        // Repair the conflict: the pair resolves, nothing new appears.
        let (del, ins) = stream
            .update_tuple(r, &tuple!["k", "v"], tuple!["k", "u"])
            .unwrap()
            .unwrap();
        assert_eq!(del.cfd.resolved.len(), 1);
        assert!(ins.is_quiet());
        assert_eq!(stream.violation_count(), 0);
        // A domain-violating replacement fails up front, stream intact.
        assert!(stream
            .update_tuple(r, &tuple!["k", "u"], tuple!["k", "zzz"])
            .is_err());
        assert_eq!(stream.db().total_tuples(), 1);
        // Updating an absent tuple is None.
        assert!(stream
            .update_tuple(r, &tuple!["nope", "u"], tuple!["k", "v"])
            .unwrap()
            .is_none());
        assert_eq!(
            stream.current_report(),
            stream.validator().validate_sorted(stream.db()),
        );
    }

    #[test]
    fn stream_flags_wildcard_pairs_and_cind_misses() {
        let schema = Arc::new(
            Schema::builder()
                .relation("src", &[("a", Domain::string()), ("b", Domain::string())])
                .relation("dst", &[("c", Domain::string())])
                .finish(),
        );
        let fd = NormalCfd::parse(&schema, "src", &["a"], prow![_], "b", PValue::Any).unwrap();
        let cind = condep_core::NormalCind::parse(&schema, "src", &["a"], &[], "dst", &["c"], &[])
            .unwrap();
        let src = schema.rel_id("src").unwrap();
        let dst = schema.rel_id("dst").unwrap();
        let v = Validator::new(vec![fd], vec![cind]);
        let (mut stream, _) = ValidatorStream::new_validated(v, Database::empty(schema));
        // Source tuple with no partner: CIND violation.
        let r1 = stream.insert_tuple(src, tuple!["k", "v1"]).unwrap();
        assert_eq!(r1.cind.introduced.len(), 1);
        assert!(r1.cfd.is_quiet());
        // Provide the partner: the orphaned source resolves.
        let r2 = stream.insert_tuple(dst, tuple!["k"]).unwrap();
        assert!(r2.cind.introduced.is_empty());
        assert_eq!(r2.cind.resolved.len(), 1);
        // A second source tuple with the same key but different b:
        // wildcard pair against the resident; partner now exists.
        let r3 = stream.insert_tuple(src, tuple!["k", "v2"]).unwrap();
        assert_eq!(
            r3.cfd.introduced,
            vec![(0, CfdViolation::Pair { left: 0, right: 1 })]
        );
        assert!(r3.cind.is_quiet());
        // Stream end state agrees with a batch validation of the final
        // database (nothing was resolved, one pair stands).
        let final_report = stream.validator().validate_sorted(stream.db());
        assert_eq!(final_report.cfd.len(), 1);
        assert_eq!(final_report.cind.len(), 0);
    }

    #[test]
    fn cinds_from_different_sources_share_one_target_group() {
        let schema = Arc::new(
            Schema::builder()
                .relation("s1", &[("a", Domain::string())])
                .relation("s2", &[("b", Domain::string())])
                .relation("t", &[("c", Domain::string())])
                .finish(),
        );
        let c1 =
            condep_core::NormalCind::parse(&schema, "s1", &["a"], &[], "t", &["c"], &[]).unwrap();
        let c2 =
            condep_core::NormalCind::parse(&schema, "s2", &["b"], &[], "t", &["c"], &[]).unwrap();
        let v = Validator::new(vec![], vec![c1, c2]);
        // Same (target, Y, Yp): one shared target index, one group.
        assert_eq!(v.group_count(), 1);
        let mut db = Database::empty(schema.clone());
        db.insert_into("t", tuple!["k"]).unwrap();
        db.insert_into("s1", tuple!["k"]).unwrap();
        db.insert_into("s2", tuple!["missing"]).unwrap();
        let report = v.validate_sorted(&db);
        assert_eq!(report, reference_report(&v, &db));
        assert_eq!(report.cind.len(), 1);
        assert_eq!(report.cind[0].0, 1, "only the s2 CIND is violated");
    }

    #[test]
    fn stream_delta_matches_batch_pair_semantics() {
        // Batch wildcard pairs witness each conflicting tuple against the
        // key group's FIRST tuple. A new tuple agreeing with that first
        // tuple adds no batch violation — the stream must agree, even
        // though the new tuple disagrees with some later resident.
        let schema = Arc::new(
            Schema::builder()
                .relation(
                    "r",
                    &[
                        ("a", Domain::string()),
                        ("b", Domain::string()),
                        ("c", Domain::string()),
                    ],
                )
                .finish(),
        );
        let fd = NormalCfd::parse(&schema, "r", &["a"], prow![_], "b", PValue::Any).unwrap();
        let r = schema.rel_id("r").unwrap();
        let mut db = Database::empty(schema.clone());
        db.insert_into("r", tuple!["k", "v1", "x0"]).unwrap();
        db.insert_into("r", tuple!["k", "v2", "x1"]).unwrap();
        let v = Validator::new(vec![fd], vec![]);
        let before = v.validate_sorted(&db);
        // A genuinely new tuple (fresh c) agreeing with the group's
        // FIRST tuple on b: it disagrees with the resident at position
        // 1, but batch semantics add no violation for it — the stream
        // must stay quiet.
        let (mut stream, initial) = ValidatorStream::new_validated(v, db);
        assert_eq!(initial, before);
        let quiet = stream.insert_tuple(r, tuple!["k", "v1", "x2"]).unwrap();
        assert!(quiet.is_quiet(), "delta must be quiet: {quiet:?}");
        // Disagrees with the first tuple: exactly the pair batch adds.
        let noisy = stream.insert_tuple(r, tuple!["k", "v3", "x3"]).unwrap();
        assert_eq!(
            noisy.cfd.introduced,
            vec![(0, CfdViolation::Pair { left: 0, right: 3 })]
        );
        // before + deltas == batch on the final database.
        let mut expected = before;
        expected.cfd.extend(noisy.cfd.introduced.clone());
        expected.sort();
        let after = stream.validator().validate_sorted(stream.db());
        assert_eq!(after, expected);
        assert_eq!(stream.current_report(), after);
    }

    #[test]
    fn self_referential_cind_is_satisfied_by_the_arriving_tuple() {
        let schema = Arc::new(
            Schema::builder()
                .relation("r", &[("a", Domain::string()), ("b", Domain::string())])
                .finish(),
        );
        // r[a] ⊆ r[b]: a tuple with a = b satisfies itself.
        let cind =
            condep_core::NormalCind::parse(&schema, "r", &["a"], &[], "r", &["b"], &[]).unwrap();
        let r = schema.rel_id("r").unwrap();
        let v = Validator::new(vec![], vec![cind]);
        let (mut stream, _) = ValidatorStream::new_validated(v, Database::empty(schema));
        let ok = stream.insert_tuple(r, tuple!["x", "x"]).unwrap();
        assert!(ok.is_quiet(), "self-partnered tuple must be quiet: {ok:?}");
        let miss = stream.insert_tuple(r, tuple!["y", "z"]).unwrap();
        assert_eq!(miss.cind.introduced.len(), 1);
        // Deleting the self-partnered tuple must not report it as its
        // own orphan (it leaves together with its partner).
        let gone = stream.delete_tuple(r, &tuple!["x", "x"]).unwrap();
        assert!(gone.cind.resolved.is_empty(), "{gone:?}");
        assert!(gone.cind.introduced.is_empty(), "{gone:?}");
        assert_eq!(
            stream.current_report(),
            stream.validator().validate_sorted(stream.db()),
        );
    }

    #[test]
    fn apply_delta_tracks_current_report_across_mutations() {
        // The consumer rule, unit-tested against the stream's own
        // materialization: feed every delta of a mixed mutation sequence
        // through SigmaReport::apply_delta and compare after each step.
        let v = bank_validator();
        let (mut stream, mut mirror) = ValidatorStream::new_validated(v, bank_database());
        let interest = stream.db().schema().rel_id("interest").unwrap();
        let saving = stream.db().schema().rel_id("saving").unwrap();
        let mutations: Vec<Mutation> = vec![
            Mutation::Insert {
                rel: interest,
                tuple: tuple!["GLA", "UK", "checking", "9.9%"],
            },
            // Delete a low-position tuple: exercises the swap renumber.
            Mutation::Delete {
                rel: interest,
                tuple: tuple!["EDI", "UK", "checking", "10.5%"],
            },
            Mutation::Update {
                rel: interest,
                old: tuple!["GLA", "UK", "checking", "9.9%"],
                new: tuple!["GLA", "UK", "checking", "1.5%"],
            },
            Mutation::Delete {
                rel: saving,
                tuple: tuple!["01", "J. Smith", "NYC, 19087", "212-5820844", "NYC"],
            },
        ];
        for m in mutations {
            let applied = stream.apply(m.clone()).unwrap();
            assert!(!applied.is_noop(), "mutation must not be a no-op: {m:?}");
            for delta in &applied.deltas {
                mirror.apply_delta(stream.validator(), delta);
            }
            assert_eq!(
                mirror,
                stream.current_report(),
                "consumer rule diverged after {m:?}"
            );
        }
    }

    #[test]
    fn apply_and_revert_round_trip() {
        let v = bank_validator();
        let (mut stream, initial) = ValidatorStream::new_validated(v, bank_database());
        let interest = stream.db().schema().rel_id("interest").unwrap();
        let before = stream.db().clone();
        // A no-op: inserting a resident tuple.
        let resident = before.relation(interest).get(0).unwrap().clone();
        let noop = stream
            .apply(Mutation::Insert {
                rel: interest,
                tuple: resident,
            })
            .unwrap();
        assert!(noop.is_noop());
        assert!(noop.deltas.is_empty());
        // Apply then revert each kind; the violation set must come back.
        let cases = vec![
            Mutation::Insert {
                rel: interest,
                tuple: tuple!["GLA", "UK", "checking", "9.9%"],
            },
            Mutation::Delete {
                rel: interest,
                tuple: tuple!["EDI", "UK", "checking", "10.5%"],
            },
            Mutation::Update {
                rel: interest,
                old: tuple!["EDI", "UK", "checking", "10.5%"],
                new: tuple!["EDI", "UK", "checking", "1.5%"],
            },
        ];
        // Reverting restores the tuple *set*; dense positions may come
        // back permuted (swap-delete + append-reinsert), so compare the
        // database as sets and the violation state against a fresh batch
        // sweep rather than label-for-label against `initial`.
        let assert_restored = |stream: &ValidatorStream, m: &Mutation| {
            for (rel, inst) in before.iter() {
                assert_eq!(
                    inst,
                    stream.db().relation(rel),
                    "revert must restore the tuple set after {m:?}"
                );
            }
            let report = stream.current_report();
            assert_eq!(report.len(), initial.len(), "violation count after {m:?}");
            assert_eq!(
                report,
                stream.validator().validate_sorted(stream.db()),
                "live state must equal a batch sweep after {m:?}"
            );
        };
        for m in cases {
            let applied = stream.apply(m.clone()).unwrap();
            let revert = applied.revert.clone().expect("not a no-op");
            stream.revert(revert).unwrap();
            assert_restored(&stream, &m);
        }
        // An update onto a resident tuple merges (set semantics); its
        // revert restores `old` without deleting the resident partner.
        let old = tuple!["EDI", "UK", "checking", "10.5%"];
        let new = tuple!["EDI", "UK", "saving", "4.5%"];
        assert!(stream.db().relation(interest).contains(&new));
        let merge = Mutation::Update {
            rel: interest,
            old: old.clone(),
            new: new.clone(),
        };
        let applied = stream.apply(merge.clone()).unwrap();
        assert_eq!(stream.db().total_tuples(), before.total_tuples() - 1);
        stream.revert(applied.revert.unwrap()).unwrap();
        assert!(stream.db().relation(interest).contains(&old));
        assert!(stream.db().relation(interest).contains(&new));
        assert_restored(&stream, &merge);
    }

    #[test]
    fn with_report_skips_the_sweep_but_matches_new_validated() {
        let db = bank_database();
        let report = bank_validator().validate_sorted(&db);
        let mut stream = ValidatorStream::with_report(bank_validator(), db.clone(), report.clone());
        assert_eq!(stream.current_report(), report);
        // The seeded stream is a full delta engine: mutate and compare
        // against a fresh batch sweep.
        let interest = db.schema().rel_id("interest").unwrap();
        stream
            .insert_tuple(interest, tuple!["GLA", "UK", "checking", "9.9%"])
            .unwrap();
        assert_eq!(
            stream.current_report(),
            stream.validator().validate_sorted(stream.db())
        );
    }

    #[test]
    fn cfd_violation_class_returns_the_key_group() {
        let schema = Arc::new(
            Schema::builder()
                .relation("r", &[("k", Domain::string()), ("v", Domain::string())])
                .finish(),
        );
        let cfd = NormalCfd::parse(&schema, "r", &["k"], prow![_], "v", PValue::Any).unwrap();
        let r = schema.rel_id("r").unwrap();
        let v = Validator::new(vec![cfd], vec![]);
        let (mut stream, _) = ValidatorStream::new_validated(v, Database::empty(schema));
        stream.insert_tuple(r, tuple!["a", "x"]).unwrap();
        stream.insert_tuple(r, tuple!["b", "y"]).unwrap();
        stream.insert_tuple(r, tuple!["a", "z"]).unwrap();
        let class = stream.cfd_violation_class(0, &tuple!["a", "x"]);
        assert_eq!(class, vec![0, 2], "both k=a tuples, position-sorted");
        assert_eq!(stream.cfd_violation_class(0, &tuple!["b", "y"]), vec![1]);
        // A key the stream has never seen: empty class, no panic.
        assert!(stream.cfd_violation_class(0, &tuple!["q", "w"]).is_empty());
    }

    #[test]
    fn compact_bounds_key_growth_under_churn() {
        // A stream over ever-fresh keys: without compaction the index
        // tiers grow with every key ever seen; with periodic compaction
        // the live key count stays bounded by the resident data.
        let schema = Arc::new(
            Schema::builder()
                .relation("src", &[("k", Domain::string()), ("v", Domain::string())])
                .relation("dst", &[("c", Domain::string())])
                .finish(),
        );
        let fd = NormalCfd::parse(&schema, "src", &["k"], prow![_], "v", PValue::Any).unwrap();
        let cind = condep_core::NormalCind::parse(&schema, "src", &["k"], &[], "dst", &["c"], &[])
            .unwrap();
        let src = schema.rel_id("src").unwrap();
        let v = Validator::new(vec![fd], vec![cind]);
        let mut db = Database::empty(schema);
        db.insert_into("src", tuple!["resident", "x"]).unwrap();
        db.insert_into("dst", tuple!["resident"]).unwrap();
        let (mut stream, initial) = ValidatorStream::new_validated(v, db);
        assert!(initial.is_empty());

        // Churn rounds: every round runs 40 insert+delete pairs with
        // fresh keys, then compacts. The live key count after each
        // compaction must stay at the resident bound — it must NOT grow
        // with the rounds.
        let mut live_after: Vec<usize> = Vec::new();
        for round in 0..5u32 {
            for i in 0..40u32 {
                let t = tuple![format!("churn{round}_{i}").as_str(), "y"];
                stream.insert_tuple(src, t.clone()).unwrap();
                stream.delete_tuple(src, &t).unwrap();
            }
            let stats = stream.compact();
            assert!(
                stats.key_groups_dropped >= 40,
                "round {round} must reclaim its churned keys: {stats:?}"
            );
            live_after.push(stats.key_groups_live);
        }
        assert!(
            live_after.iter().all(|&l| l == live_after[0]),
            "live key count must be churn-invariant: {live_after:?}"
        );
        // One resident key in the CFD index, one in the CIND target
        // index, one in the reverse source index.
        assert_eq!(live_after[0], 3);
        // A second immediate compaction finds nothing to drop.
        assert_eq!(stream.compact().key_groups_dropped, 0);

        // The compacted stream is still a correct delta engine.
        let noisy = stream.insert_tuple(src, tuple!["resident", "z"]).unwrap();
        assert_eq!(noisy.cfd.introduced.len(), 1, "{noisy:?}");
        let orphan = stream.insert_tuple(src, tuple!["lonely", "w"]).unwrap();
        assert_eq!(orphan.cind.introduced.len(), 1, "{orphan:?}");
        assert_eq!(
            stream.current_report(),
            stream.validator().validate_sorted(stream.db()),
        );
    }

    #[test]
    fn apply_deltas_matches_sequential_apply() {
        // The batched path must produce exactly the deltas a sequential
        // per-mutation `apply` loop produces (concatenated), leave the
        // same violation state, and type-check the batch up front.
        let schema = Arc::new(
            Schema::builder()
                .relation("src", &[("a", Domain::string()), ("b", Domain::string())])
                .relation("dst", &[("c", Domain::finite_strs(&["k", "j"]))])
                .finish(),
        );
        let fd = NormalCfd::parse(&schema, "src", &["a"], prow![_], "b", PValue::Any).unwrap();
        let pin = NormalCfd::parse(
            &schema,
            "src",
            &["a"],
            prow!["zzz"],          // a constant no seed tuple carries: the member
            "b",                   // must become matchable mid-batch when "zzz"
            PValue::constant("v"), // arrives.
        )
        .unwrap();
        let cind = condep_core::NormalCind::parse(&schema, "src", &["a"], &[], "dst", &["c"], &[])
            .unwrap();
        let src = schema.rel_id("src").unwrap();
        let dst = schema.rel_id("dst").unwrap();
        let mut db = Database::empty(schema.clone());
        db.insert_into("src", tuple!["k", "v1"]).unwrap();
        db.insert_into("src", tuple!["k", "v2"]).unwrap();
        db.insert_into("dst", tuple!["k"]).unwrap();
        let v = Validator::new(vec![fd, pin], vec![cind]);
        let muts = vec![
            Mutation::Insert {
                rel: src,
                tuple: tuple!["zzz", "w"], // fires the pin (w ≠ v), orphan
            },
            Mutation::Insert {
                rel: src,
                tuple: tuple!["k", "v1"], // resident: no-op
            },
            Mutation::Delete {
                rel: src,
                tuple: tuple!["k", "v1"], // swap + pair restructure
            },
            Mutation::Update {
                rel: src,
                old: tuple!["zzz", "w"],
                new: tuple!["zzz", "v"], // repairs the pin violation
            },
            Mutation::Update {
                rel: src,
                old: tuple!["k", "v2"],
                new: tuple!["zzz", "v"], // merge-degenerate update
            },
            Mutation::Delete {
                rel: src,
                tuple: tuple!["absent", "x"], // no-op (unknown strings)
            },
        ];
        let (mut batched, _) = ValidatorStream::new_validated(v.clone(), db.clone());
        let (mut sequential, _) = ValidatorStream::new_validated(v.clone(), db.clone());
        let batch_deltas = batched.apply_deltas(&muts).unwrap();
        let mut seq_deltas = Vec::new();
        for m in &muts {
            seq_deltas.extend(sequential.apply(m.clone()).unwrap().deltas);
        }
        assert_eq!(batch_deltas, seq_deltas);
        assert!(!batch_deltas.is_empty());
        assert_eq!(batched.current_report(), sequential.current_report());
        assert_eq!(
            batched.current_report(),
            v.validate_sorted(batched.db()),
            "batched live state must equal a fresh sweep"
        );
        // An ill-typed batch applies nothing at all.
        let before = batched.current_report();
        let bad = vec![
            Mutation::Insert {
                rel: src,
                tuple: tuple!["ok", "fine"],
            },
            Mutation::Insert {
                rel: dst,
                tuple: tuple!["outside-finite-domain"],
            },
        ];
        assert!(batched.apply_deltas(&bad).is_err());
        assert_eq!(batched.current_report(), before);
        assert!(!batched.db().relation(src).contains(&tuple!["ok", "fine"]));
    }

    #[test]
    fn batch_mutations_handle_uninterned_conditioned_cind_cells() {
        // A cell reachable ONLY through a conditioned CIND source role
        // is never interned for tuples that do not trigger the CIND.
        // The batch path must still delete/update such resident tuples
        // exactly like the sequential path (regression: it used to skip
        // the delete as "not resident" and panic on the update).
        let schema = Arc::new(
            Schema::builder()
                .relation("r", &[("a", Domain::string()), ("b", Domain::string())])
                .relation("s", &[("x", Domain::string())])
                .finish(),
        );
        let cind = condep_core::NormalCind::parse(
            &schema,
            "r",
            &["a"],
            &[("b", condep_model::Value::str("go"))],
            "s",
            &["x"],
            &[],
        )
        .unwrap();
        let r = schema.rel_id("r").unwrap();
        let v = Validator::new(vec![], vec![cind]);
        let (mut stream, _) = ValidatorStream::new_validated(v.clone(), Database::empty(schema));
        // Non-triggering (b ≠ "go"): its `a` cell is never interned.
        stream.insert_tuple(r, tuple!["orphan", "stop"]).unwrap();
        // Batch update of the resident non-triggering tuple.
        let deltas = stream
            .apply_deltas(&[Mutation::Update {
                rel: r,
                old: tuple!["orphan", "stop"],
                new: tuple!["orphan2", "stop"],
            }])
            .unwrap();
        assert_eq!(deltas.len(), 2, "delete + insert deltas: {deltas:?}");
        assert!(stream.db().relation(r).contains(&tuple!["orphan2", "stop"]));
        // Batch delete of it — and the same after a compaction has
        // dropped every string only such tuples held.
        stream.compact();
        let deltas = stream
            .apply_deltas(&[Mutation::Delete {
                rel: r,
                tuple: tuple!["orphan2", "stop"],
            }])
            .unwrap();
        assert_eq!(deltas.len(), 1, "{deltas:?}");
        assert!(stream.db().relation(r).is_empty());
        // A genuinely absent tuple is still a quiet no-op.
        let deltas = stream
            .apply_deltas(&[Mutation::Delete {
                rel: r,
                tuple: tuple!["never", "there"],
            }])
            .unwrap();
        assert!(deltas.is_empty());
        assert_eq!(
            stream.current_report(),
            stream.validator().validate_sorted(stream.db()),
        );
    }

    #[test]
    fn tuple_ids_stay_stable_through_mutations_and_compaction() {
        let v = bank_validator();
        let db = bank_database();
        let interest = db.schema().rel_id("interest").unwrap();
        let (mut stream, _) = ValidatorStream::new_validated(v, db);
        // Dense seeding: TupleId(p) == seed position p.
        let t3 = stream.db().relation(interest).get(3).unwrap().clone();
        let id3 = stream.tuple_id_at(interest, 3).unwrap();
        assert_eq!(id3, condep_model::TupleId(3));
        assert_eq!(stream.tuple_by_id(interest, id3), Some(&t3));
        // Deleting position 0 swaps the last tuple down; id3 follows its
        // tuple, and the retired id resolves to None forever.
        let t0 = stream.db().relation(interest).get(0).unwrap().clone();
        let id0 = stream.tuple_id_at(interest, 0).unwrap();
        let delta = stream.delete_tuple(interest, &t0).unwrap();
        assert_eq!(delta.ids.retired, Some(id0));
        assert_eq!(delta.ids.moved, stream.tuple_id_at(interest, 0));
        assert!(delta.ids.moved.is_some());
        assert_eq!(stream.position_of(interest, id0), None);
        assert_eq!(stream.tuple_by_id(interest, id3), Some(&t3));
        // An insert allocates a fresh id (never a recycled one).
        let born = stream
            .insert_tuple(interest, tuple!["GLA", "UK", "checking", "1.5%"])
            .unwrap()
            .ids
            .born
            .unwrap();
        assert!(born > id0 && born > id3);
        assert_eq!(
            stream.tuple_by_id(interest, born),
            Some(&tuple!["GLA", "UK", "checking", "1.5%"])
        );
        // Compaction reclaims state but never renumbers a live id.
        let report_before = stream.current_report();
        stream.compact();
        assert_eq!(stream.tuple_by_id(interest, id3), Some(&t3));
        assert_eq!(
            stream.tuple_by_id(interest, born),
            Some(&tuple!["GLA", "UK", "checking", "1.5%"])
        );
        assert_eq!(stream.position_of(interest, id0), None);
        assert_eq!(stream.current_report(), report_before);
    }

    #[test]
    fn compact_reclaims_dead_interned_strings() {
        // High-key-churn stream: every round floods fresh string keys
        // through insert+delete pairs. Without interner compaction the
        // string table grows with every key ever seen; with it, the
        // retained count is bounded by the live distinct values.
        let schema = Arc::new(
            Schema::builder()
                .relation("src", &[("k", Domain::string()), ("v", Domain::string())])
                .relation("dst", &[("c", Domain::string())])
                .finish(),
        );
        let fd = NormalCfd::parse(&schema, "src", &["k"], prow![_], "v", PValue::Any).unwrap();
        let cind = condep_core::NormalCind::parse(&schema, "src", &["k"], &[], "dst", &["c"], &[])
            .unwrap();
        let src = schema.rel_id("src").unwrap();
        let v = Validator::new(vec![fd], vec![cind]);
        let mut db = Database::empty(schema);
        db.insert_into("src", tuple!["resident", "x"]).unwrap();
        db.insert_into("dst", tuple!["resident"]).unwrap();
        let (mut stream, _) = ValidatorStream::new_validated(v, db);
        let mut retained: Vec<usize> = Vec::new();
        for round in 0..4u32 {
            for i in 0..50u32 {
                let t = tuple![format!("churn{round}_{i}").as_str(), "y"];
                stream.insert_tuple(src, t.clone()).unwrap();
                stream.delete_tuple(src, &t).unwrap();
            }
            let stats = stream.compact();
            assert!(
                stats.interned_strings_dropped() >= 50,
                "round {round} must drop its churned key strings: {stats:?}"
            );
            assert!(stats.interned_bytes_reclaimed() > 0);
            retained.push(stats.interned_strings_after);
        }
        assert!(
            retained.iter().all(|&n| n == retained[0]),
            "retained string count must be churn-invariant: {retained:?}"
        );
        // Only the live resident cells survive: "resident" (one shared
        // string across three index tiers) plus the resident tuple's
        // RHS cell "x", which the row cache roots for witness compares.
        // The churned keys and their "y" RHS cells are all reclaimed.
        assert_eq!(retained[0], 2);
        // The compacted stream is still a correct delta engine, both for
        // keys it kept and for keys it dropped and re-learns.
        let noisy = stream.insert_tuple(src, tuple!["resident", "z"]).unwrap();
        assert_eq!(noisy.cfd.introduced.len(), 1, "{noisy:?}");
        let back = stream.insert_tuple(src, tuple!["churn0_0", "y"]).unwrap();
        assert_eq!(back.cind.introduced.len(), 1, "{back:?}");
        assert_eq!(
            stream.current_report(),
            stream.validator().validate_sorted(stream.db()),
        );
        // Batched mutations keep working against the rebuilt numbering.
        let deltas = stream
            .apply_deltas(&[
                Mutation::Delete {
                    rel: src,
                    tuple: tuple!["churn0_0", "y"],
                },
                Mutation::Insert {
                    rel: src,
                    tuple: tuple!["resident", "w"],
                },
            ])
            .unwrap();
        assert_eq!(deltas.len(), 2);
        assert_eq!(
            stream.current_report(),
            stream.validator().validate_sorted(stream.db()),
        );
    }

    #[test]
    fn add_dependencies_extends_the_live_suite() {
        // Start monitoring with only ϕ3, then promote the remaining bank
        // constraints into the live stream — no re-materialization, and
        // the grown suite must agree with a fresh batch sweep.
        let db = bank_database();
        let v = Validator::new(normalize_cfds(&[cfd_fx::phi3()]), vec![]);
        let n_initial_cfds = v.cfds().len();
        let (mut stream, _) = ValidatorStream::new_validated(v, db);
        let interest = stream.db().schema().rel_id("interest").unwrap();
        let id0 = stream.tuple_id_at(interest, 0).unwrap();
        let new_cfds = normalize_cfds(&[cfd_fx::phi1(), cfd_fx::phi2()]);
        let new_cinds = normalize_cinds(&cind_fx::figure_2());
        let introduced = stream.add_dependencies(new_cfds.clone(), new_cinds.clone());
        // Newcomers report against their final (shifted) Σ indices.
        assert!(introduced.cfd.iter().all(|(i, _)| *i >= n_initial_cfds));
        assert_eq!(
            introduced.cind.len(),
            1,
            "ψ6's t10 violation: {introduced:?}"
        );
        assert_eq!(
            stream.current_report(),
            stream.validator().validate_sorted(stream.db()),
        );
        // Held ids survive the splice (nothing re-materialized).
        assert_eq!(stream.position_of(interest, id0), Some(0));
        // The grown stream is still a correct delta engine, including
        // for the freshly added members.
        let dirty = stream
            .insert_tuple(interest, tuple!["GLA", "UK", "checking", "9.9%"])
            .unwrap();
        assert!(!dirty.is_quiet());
        assert_eq!(
            stream.current_report(),
            stream.validator().validate_sorted(stream.db()),
        );
        let saving = stream.db().schema().rel_id("saving").unwrap();
        stream
            .delete_tuple(
                saving,
                &tuple!["01", "J. Smith", "NYC, 19087", "212-5820844", "NYC"],
            )
            .unwrap();
        assert_eq!(
            stream.current_report(),
            stream.validator().validate_sorted(stream.db()),
        );
        // Adding nothing is free and quiet.
        assert!(stream.add_dependencies(vec![], vec![]).is_empty());
    }

    #[test]
    fn retire_representative_splits_covered_members() {
        // The wildcard row covers the constant row (same RHS): one
        // compiled member. Retiring the REPRESENTATIVE must re-seat the
        // covered row as its own member — probe pattern included —
        // because emission sites never re-check covers[0]'s pattern.
        let schema = Arc::new(
            Schema::builder()
                .relation("r", &[("a", Domain::string()), ("b", Domain::string())])
                .finish(),
        );
        let rep = NormalCfd::parse(&schema, "r", &["a"], prow![_], "b", PValue::Any).unwrap();
        let covered = NormalCfd::parse(&schema, "r", &["a"], prow!["k"], "b", PValue::Any).unwrap();
        let v = Validator::new(vec![rep, covered], vec![]);
        assert_eq!(v.compiled_cfd_members(), 1, "cover must merge the rows");
        let mut db = Database::empty(schema.clone());
        db.insert_into("r", tuple!["k", "v1"]).unwrap();
        db.insert_into("r", tuple!["k", "v2"]).unwrap();
        db.insert_into("r", tuple!["q", "w1"]).unwrap();
        db.insert_into("r", tuple!["q", "w2"]).unwrap();
        let (mut stream, initial) = ValidatorStream::new_validated(v, db);
        // Both rows fire on the k-group, only the wildcard on q.
        assert_eq!(initial.cfd.len(), 3, "{initial:?}");
        let resolved = stream.retire_dependencies(&[0], &[]);
        assert_eq!(resolved.cfd.len(), 2, "{resolved:?}");
        assert!(resolved.cfd.iter().all(|(i, _)| *i == 0));
        assert!(stream.validator().is_cfd_retired(0));
        assert!(!stream.validator().is_cfd_retired(1));
        assert_eq!(stream.violation_count(), 1);
        assert_eq!(
            stream.current_report(),
            stream.validator().validate_sorted(stream.db()),
        );
        // The split-out member keeps firing on exactly its own pattern:
        // a new k-conflict reports, a new q-conflict stays quiet.
        let r = stream.db().schema().rel_id("r").unwrap();
        let noisy = stream.insert_tuple(r, tuple!["k", "v3"]).unwrap();
        assert_eq!(noisy.cfd.introduced.len(), 1, "{noisy:?}");
        assert!(noisy.cfd.introduced.iter().all(|(i, _)| *i == 1));
        let quiet = stream.insert_tuple(r, tuple!["q", "w3"]).unwrap();
        assert!(
            quiet.is_quiet(),
            "retired wildcard must not fire: {quiet:?}"
        );
        assert_eq!(
            stream.current_report(),
            stream.validator().validate_sorted(stream.db()),
        );
        // Retiring the survivor (now a sole member) empties the suite;
        // retiring twice is a no-op.
        let resolved = stream.retire_dependencies(&[1, 0], &[]);
        assert!(resolved.cfd.iter().all(|(i, _)| *i == 1));
        assert_eq!(stream.violation_count(), 0);
        assert!(stream.retire_dependencies(&[0, 1], &[]).is_empty());
        let calm = stream.insert_tuple(r, tuple!["k", "v4"]).unwrap();
        assert!(calm.is_quiet(), "{calm:?}");
    }

    #[test]
    fn retire_cind_promotes_covers_and_removes_members() {
        let schema = Arc::new(
            Schema::builder()
                .relation("src", &[("a", Domain::string()), ("b", Domain::string())])
                .relation("dst", &[("c", Domain::string())])
                .finish(),
        );
        let c1 = condep_core::NormalCind::parse(&schema, "src", &["a"], &[], "dst", &["c"], &[])
            .unwrap();
        let c2 = c1.clone(); // payload-identical: the cover merges it
        let c3 = condep_core::NormalCind::parse(&schema, "src", &["b"], &[], "dst", &["c"], &[])
            .unwrap();
        let dst = schema.rel_id("dst").unwrap();
        let v = Validator::new(vec![], vec![c1, c2, c3]);
        assert_eq!(v.group_count(), 1, "one shared target group");
        let mut db = Database::empty(schema.clone());
        db.insert_into("src", tuple!["k", "k"]).unwrap();
        let (mut stream, initial) = ValidatorStream::new_validated(v, db);
        // The orphan source violates all three CINDs.
        assert_eq!(initial.cind.len(), 3);
        // Retire the member identity (covers[0]): the duplicate is
        // promoted in place and keeps reporting.
        let resolved = stream.retire_dependencies(&[], &[0]);
        assert!(resolved.cind.iter().all(|(i, _)| *i == 0));
        assert_eq!(
            stream.current_report(),
            stream.validator().validate_sorted(stream.db()),
        );
        assert_eq!(stream.violation_count(), 2);
        // Retire the promoted duplicate: the whole member goes, and the
        // per-member source indexes must stay aligned for c3.
        stream.retire_dependencies(&[], &[1]);
        assert_eq!(stream.violation_count(), 1);
        assert_eq!(
            stream.current_report(),
            stream.validator().validate_sorted(stream.db()),
        );
        // c3 is still live through its (shifted) member: a partner
        // arrival resolves its orphan, a departure re-orphans it.
        let arrival = stream.insert_tuple(dst, tuple!["k"]).unwrap();
        assert_eq!(
            arrival.cind.resolved,
            vec![(2, arrival.cind.resolved[0].1.clone())]
        );
        assert_eq!(stream.violation_count(), 0);
        let gone = stream.delete_tuple(dst, &tuple!["k"]).unwrap();
        assert_eq!(gone.cind.introduced.len(), 1);
        assert!(gone.cind.introduced.iter().all(|(i, _)| *i == 2));
        assert_eq!(
            stream.current_report(),
            stream.validator().validate_sorted(stream.db()),
        );
    }

    #[test]
    fn add_after_retire_allocates_fresh_indices() {
        let schema = Arc::new(
            Schema::builder()
                .relation("r", &[("a", Domain::string()), ("b", Domain::string())])
                .finish(),
        );
        let fd = NormalCfd::parse(&schema, "r", &["a"], prow![_], "b", PValue::Any).unwrap();
        let r = schema.rel_id("r").unwrap();
        let v = Validator::new(vec![fd.clone()], vec![]);
        let mut db = Database::empty(schema.clone());
        db.insert_into("r", tuple!["k", "v1"]).unwrap();
        db.insert_into("r", tuple!["k", "v2"]).unwrap();
        let (mut stream, initial) = ValidatorStream::new_validated(v, db);
        assert_eq!(initial.cfd.len(), 1);
        stream.retire_dependencies(&[0], &[]);
        assert_eq!(stream.violation_count(), 0);
        // Re-adding the same FD gets index 1 and finds the conflict
        // again; index 0 stays retired forever.
        let back = stream.add_dependencies(vec![fd], vec![]);
        assert_eq!(back.cfd.len(), 1);
        assert!(back.cfd.iter().all(|(i, _)| *i == 1));
        assert!(stream.validator().is_cfd_retired(0));
        assert!(!stream.validator().is_cfd_retired(1));
        let noisy = stream.insert_tuple(r, tuple!["k", "v3"]).unwrap();
        assert_eq!(noisy.cfd.introduced.len(), 1);
        assert_eq!(
            stream.current_report(),
            stream.validator().validate_sorted(stream.db()),
        );
    }

    #[test]
    fn parallel_sweep_agrees_with_reference_at_scale() {
        // A deterministic pseudo-random instance big enough to cross the
        // parallel threshold, with planted violations.
        fn next(state: &mut u64) -> u64 {
            *state ^= *state << 13;
            *state ^= *state >> 7;
            *state ^= *state << 17;
            *state
        }
        let schema = Arc::new(
            Schema::builder()
                .relation(
                    "r",
                    &[
                        ("k", Domain::string()),
                        ("g", Domain::string()),
                        ("v", Domain::string()),
                    ],
                )
                .finish(),
        );
        let mut db = Database::empty(schema.clone());
        let mut state = 0x9e3779b97f4a7c15u64;
        for i in 0..6000u64 {
            let k = format!("k{}", next(&mut state) % 900);
            let g = format!("g{}", next(&mut state) % 7);
            let v = if i % 997 == 0 {
                "odd".to_string()
            } else {
                format!("v{}", next(&mut state) % 3)
            };
            db.insert_into("r", tuple![k.as_str(), g.as_str(), v.as_str()])
                .unwrap();
        }
        let cfds = vec![
            NormalCfd::parse(&schema, "r", &["k"], prow![_], "v", PValue::Any).unwrap(),
            NormalCfd::parse(&schema, "r", &["k"], prow!["k1"], "g", PValue::Any).unwrap(),
            NormalCfd::parse(
                &schema,
                "r",
                &["g"],
                prow!["g3"],
                "v",
                PValue::constant("v0"),
            )
            .unwrap(),
            NormalCfd::parse(&schema, "r", &["g", "k"], prow![_, _], "v", PValue::Any).unwrap(),
        ];
        let v = Validator::new(cfds, vec![]);
        assert!(db.total_tuples() >= 4096, "must exercise the parallel path");
        let report = v.validate_sorted(&db);
        let expected = reference_report(&v, &db);
        assert_eq!(report, expected);
        assert!(!report.is_empty(), "planted violations must surface");
    }
}
