//! Telemetry overhead guard: `apply_deltas` with the stream's
//! instrumentation recording must stay within a few percent of the
//! same stream with recording switched off at runtime
//! ([`ValidatorStream::set_telemetry_enabled`]).
//!
//! The workload mirrors the CI smoke configuration: a 10K-tuple
//! instance under ~40 CFDs + 2 CINDs, churned in delete/reinsert
//! window pairs that leave the database unchanged — every round does
//! byte-identical work, so the two streams are directly comparable.
//!
//! Wall-clock comparisons on shared hardware are inherently noisy, so
//! the guard interleaves the A/B measurements, keeps the best-of-N
//! round per side, and retries the whole experiment a few times before
//! failing: a genuine regression (say, an accidental allocation or
//! syscall on the per-mutation path) fails every attempt, while
//! scheduler noise does not survive five.

use condep_cfd::NormalCfd;
use condep_core::NormalCind;
use condep_model::{tuple, Database, Domain, PValue, PatternRow, Schema, Tuple};
use condep_validate::{Mutation, Validator, ValidatorStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TUPLES: usize = 10_000;
const WINDOW: usize = 100; // 50 deletes + 50 reinserts per window
const WINDOWS_PER_ROUND: usize = 8;
const ROUNDS: usize = 5;
const ATTEMPTS: usize = 5;
/// Relative headroom: instrumented best-of must come in under
/// `disabled * (1 + 5%) + EPSILON_ABS`. The absolute term absorbs
/// timer granularity on rounds that finish in a few milliseconds.
const RELATIVE_HEADROOM: f64 = 0.05;
const EPSILON_ABS: Duration = Duration::from_millis(2);

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn schema() -> Arc<Schema> {
    Arc::new(
        Schema::builder()
            .relation(
                "r",
                &[
                    ("a0", Domain::string()),
                    ("a1", Domain::string()),
                    ("a2", Domain::string()),
                    ("a3", Domain::string()),
                    ("a4", Domain::string()),
                    ("a5", Domain::string()),
                    ("a6", Domain::string()),
                    ("a7", Domain::string()),
                ],
            )
            .relation("partner", &[("p", Domain::string())])
            .relation("refs", &[("q", Domain::string())])
            .finish(),
    )
}

/// One clean tuple honoring the embedded FDs `a1 → a2`, `a3 → a4`,
/// `a5 → a6` (the validator bench's instance shape at 10K).
fn random_tuple(i: usize, state: &mut u64) -> Tuple {
    let h1 = xorshift(state) % 64;
    let h2 = xorshift(state) % 512;
    let h3 = xorshift(state) % 4096;
    let w = xorshift(state) % 8;
    tuple![
        format!("id{i}").as_str(),
        format!("b{h1}").as_str(),
        format!("c{h1}").as_str(),
        format!("d{h2}").as_str(),
        format!("e{h2}").as_str(),
        format!("f{h3}").as_str(),
        format!("g{h3}").as_str(),
        format!("w{w}").as_str()
    ]
}

/// ~40 CFDs over five LHS sets (wildcard FD rows, constant-LHS rows,
/// constant-RHS rows) + 2 CINDs referencing the side relations.
fn sigma(schema: &Arc<Schema>) -> (Vec<NormalCfd>, Vec<NormalCind>) {
    let lhs_sets: Vec<Vec<&str>> = vec![
        vec!["a1"],
        vec!["a3"],
        vec!["a5"],
        vec!["a1", "a3"],
        vec!["a7", "a1"],
    ];
    let rhs_for = |lhs: &[&str]| {
        if lhs.contains(&"a1") {
            "a2"
        } else if lhs.contains(&"a3") {
            "a4"
        } else {
            "a6"
        }
    };
    let mut cfds = Vec::new();
    let mut j = 0usize;
    while cfds.len() < 40 {
        for lhs in &lhs_sets {
            if cfds.len() >= 40 {
                break;
            }
            let rhs = rhs_for(lhs);
            let member = j % 8;
            let (lhs_pat, rhs_pat) = match member {
                0 => (PatternRow::all_any(lhs.len()), PValue::Any),
                m if m >= 6 => {
                    let cells: Vec<PValue> = lhs
                        .iter()
                        .map(|a| match *a {
                            "a1" => PValue::constant(format!("b{m}")),
                            _ => PValue::Any,
                        })
                        .collect();
                    let rhs_c = if rhs == "a2" && lhs.contains(&"a1") {
                        PValue::constant(format!("c{m}"))
                    } else {
                        PValue::Any
                    };
                    (PatternRow::new(cells), rhs_c)
                }
                m => {
                    let cells: Vec<PValue> = lhs
                        .iter()
                        .enumerate()
                        .map(|(i, a)| {
                            if i == 0 {
                                match *a {
                                    "a1" => PValue::constant(format!("b{m}")),
                                    "a3" => PValue::constant(format!("d{m}")),
                                    "a5" => PValue::constant(format!("f{m}")),
                                    _ => PValue::Any,
                                }
                            } else {
                                PValue::Any
                            }
                        })
                        .collect();
                    (PatternRow::new(cells), PValue::Any)
                }
            };
            cfds.push(NormalCfd::parse(schema, "r", lhs, lhs_pat, rhs, rhs_pat).unwrap());
            j += 1;
        }
    }
    let cinds = vec![
        NormalCind::parse(schema, "r", &["a1"], &[], "partner", &["p"], &[]).unwrap(),
        NormalCind::parse(schema, "r", &["a7"], &[], "refs", &["q"], &[]).unwrap(),
    ];
    (cfds, cinds)
}

fn build_db(schema: &Arc<Schema>) -> Database {
    let mut db = Database::empty(schema.clone());
    let mut state = 0x243f_6a88_85a3_08d3u64;
    for i in 0..TUPLES {
        db.insert_into("r", random_tuple(i, &mut state)).unwrap();
    }
    for h in 0..64u64 {
        db.insert_into("partner", tuple![format!("b{h}").as_str()])
            .unwrap();
    }
    for w in 0..8u64 {
        db.insert_into("refs", tuple![format!("w{w}").as_str()])
            .unwrap();
    }
    db
}

/// The round's churn: `WINDOWS_PER_ROUND` windows, each deleting
/// `WINDOW / 2` resident tuples and reinserting them in the same
/// window — every mutation effective, the database unchanged after.
fn round_windows(db: &Database) -> Vec<Vec<Mutation>> {
    let rel = db.schema().rel_id("r").unwrap();
    let tuples = db.relation(rel).tuples();
    let mut windows = Vec::with_capacity(WINDOWS_PER_ROUND);
    for w in 0..WINDOWS_PER_ROUND {
        let chunk: Vec<Tuple> = tuples
            .iter()
            .skip(w * (WINDOW / 2))
            .take(WINDOW / 2)
            .cloned()
            .collect();
        let mut muts: Vec<Mutation> = chunk
            .iter()
            .map(|t| Mutation::Delete {
                rel,
                tuple: t.clone(),
            })
            .collect();
        muts.extend(
            chunk
                .into_iter()
                .map(|tuple| Mutation::Insert { rel, tuple }),
        );
        windows.push(muts);
    }
    windows
}

fn run_round(stream: &mut ValidatorStream, windows: &[Vec<Mutation>]) -> Duration {
    let start = Instant::now();
    for window in windows {
        let deltas = stream.apply_deltas(window).expect("well-typed mutations");
        assert_eq!(deltas.len(), WINDOW, "every mutation must be effective");
    }
    start.elapsed()
}

#[test]
fn instrumented_apply_deltas_stays_within_headroom_of_disabled() {
    let schema = schema();
    let (cfds, cinds) = sigma(&schema);
    let validator = Validator::new(cfds, cinds);
    let db = build_db(&schema);
    let windows = round_windows(&db);

    let (mut on, _) = ValidatorStream::new_validated(validator.clone(), db.clone());
    let (mut off, _) = ValidatorStream::new_validated(validator, db);
    off.set_telemetry_enabled(false);
    assert!(!off.telemetry().is_enabled());

    let mut last = (Duration::ZERO, Duration::ZERO);
    for attempt in 0..ATTEMPTS {
        let mut best_on = Duration::MAX;
        let mut best_off = Duration::MAX;
        for _ in 0..ROUNDS {
            best_off = best_off.min(run_round(&mut off, &windows));
            best_on = best_on.min(run_round(&mut on, &windows));
        }
        let bound = best_off.mul_f64(1.0 + RELATIVE_HEADROOM) + EPSILON_ABS;
        if best_on <= bound {
            println!(
                "attempt {attempt}: instrumented {best_on:?} vs disabled {best_off:?} \
                 (bound {bound:?}) — ok"
            );
            // The instrumented stream really recorded the churn (with
            // the `telemetry` feature compiled out both streams no-op
            // and the A/B trivially ties).
            if on.telemetry().is_enabled() {
                let lat = on.telemetry().window_latency();
                assert!(lat.count > 0, "instrumented stream recorded no windows");
            }
            return;
        }
        last = (best_on, best_off);
    }
    panic!(
        "telemetry overhead guard: instrumented apply_deltas at {:?} exceeded \
         disabled {:?} by more than {}% (+{:?}) in all {ATTEMPTS} attempts",
        last.0,
        last.1,
        (RELATIVE_HEADROOM * 100.0) as u32,
        EPSILON_ABS,
    );
}
