//! The stream's journal capacity is runtime-configurable
//! ([`ValidatorStream::set_journal_capacity`]): long scenario runs
//! retain a full event tail, the default stays at 256, and shrinking
//! evicts only the oldest retained events.

#![cfg(feature = "telemetry")]

use condep_cfd::NormalCfd;
use condep_model::{tuple, Database, Domain, PValue, PatternRow, Schema, Tuple};
use condep_validate::{Validator, ValidatorStream};
use std::sync::Arc;

fn stream_with_tuples(n: usize) -> ValidatorStream {
    let schema = Arc::new(
        Schema::builder()
            .relation("r", &[("k", Domain::string()), ("d", Domain::string())])
            .finish(),
    );
    let rel = schema.rel_id("r").unwrap();
    let mut db = Database::empty(schema);
    for i in 0..n {
        db.insert(rel, tuple![format!("k{i}").as_str(), "v"])
            .unwrap();
    }
    let validator = Validator::new(
        vec![NormalCfd::new(
            rel,
            vec![condep_model::AttrId(0)],
            PatternRow::all_any(1),
            condep_model::AttrId(1),
            PValue::Any,
        )],
        Vec::new(),
    );
    ValidatorStream::new_validated(validator, db).0
}

#[test]
fn journal_capacity_defaults_to_256_and_rebounds_at_runtime() {
    let mut stream = stream_with_tuples(0);
    let rel = stream.db().schema().rel_id("r").unwrap();
    assert_eq!(stream.telemetry().journal().capacity(), 256);

    // 300 effective inserts: the default ring forgets the oldest 44.
    for i in 0..300usize {
        let t: Tuple = tuple![format!("n{i}").as_str(), "v"];
        stream.insert_tuple(rel, t).unwrap();
    }
    assert_eq!(stream.telemetry().journal().total(), 300);
    assert_eq!(stream.telemetry().journal().len(), 256);

    // Grow: everything new is retained, history already evicted stays
    // gone, totals keep counting.
    stream.set_journal_capacity(1024);
    for i in 300..400usize {
        let t: Tuple = tuple![format!("n{i}").as_str(), "v"];
        stream.insert_tuple(rel, t).unwrap();
    }
    let journal = stream.telemetry().journal();
    assert_eq!(journal.capacity(), 1024);
    assert_eq!(journal.total(), 400);
    assert_eq!(journal.len(), 256 + 100);
    // Seqs are contiguous and end at the newest event.
    let tail = journal.tail(journal.len());
    assert_eq!(tail.first().unwrap().seq, 400 - journal.len() as u64);
    assert_eq!(tail.last().unwrap().seq, 399);

    // Shrink: only the newest 8 survive.
    stream.set_journal_capacity(8);
    let journal = stream.telemetry().journal();
    assert_eq!((journal.capacity(), journal.len()), (8, 8));
    assert_eq!(journal.tail(8).first().unwrap().seq, 392);
    assert_eq!(journal.total(), 400);
}
