//! Property tests for the repair engine's soundness contract:
//!
//! * the repaired database always re-validates with **at most** the
//!   initial violation count (monotone improvement, never regression);
//! * the fixpoint loop terminates within the cascade budget;
//! * every kept fix's `SigmaDelta` evidence is strictly net-negative,
//!   and the arithmetic closes: initial + Σ net = residual;
//! * no fix ever touches a cell (or tuple) not named by the violation
//!   that motivated it — edits only hit the motivating CFD's RHS
//!   attribute, insertions only the motivating CIND's target relation,
//!   deletions only a motivating witness's relation.

use condep::gen::{
    dirtied_database, dirty_database, generate_sigma, random_schema, DirtyDataConfig,
    SchemaGenConfig, SigmaGenConfig,
};
use condep::prelude::*;
use condep::repair::{repair, Fix, Motive};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_schema(seed: u64) -> std::sync::Arc<Schema> {
    random_schema(
        &SchemaGenConfig {
            relations: 4,
            attrs_min: 3,
            attrs_max: 5,
            finite_ratio: 0.25,
            finite_dom_min: 2,
            finite_dom_max: 6,
        },
        &mut StdRng::seed_from_u64(seed),
    )
}

proptest! {
    #[test]
    fn repair_is_sound_on_generated_dirt(seed in 0u64..10_000) {
        let schema = small_schema(seed);
        let (cfds, cinds, witness) = generate_sigma(
            &schema,
            &SigmaGenConfig {
                cardinality: 12,
                consistent: true,
                ..SigmaGenConfig::default()
            },
            &mut StdRng::seed_from_u64(seed ^ 0x9e37_79b9),
        );
        let Some(witness) = witness else {
            // Degenerate draw without a witness: nothing to test.
            return Ok(());
        };
        // A clean base satisfying Σ, then controlled dirt on top:
        // typos, orphaned CIND sources and duplicate-key conflicts.
        let clean = dirty_database(
            &schema,
            &cfds,
            &cinds,
            &witness,
            &DirtyDataConfig {
                tuples_per_relation: 12,
                violations_per_relation: 0,
            },
            &mut StdRng::seed_from_u64(seed ^ 0x85a3_08d3),
        )
        .db;
        let dirtied = dirtied_database(
            &clean,
            &cfds,
            &cinds,
            0.15,
            &mut StdRng::seed_from_u64(seed ^ 0x1357_2468),
        );
        let validator = Validator::new(cfds.clone(), cinds.clone());
        let initial = validator.validate_sorted(&dirtied.db);
        let budget = RepairBudget::default();
        let (repaired, report) = repair(
            validator,
            dirtied.db,
            initial.clone(),
            &RepairCost::uniform(),
            &budget,
        )
        .expect("property sigmas are satisfiable by construction");

        // Soundness: never worse than the input, and the returned
        // residual is exactly what a fresh sweep finds.
        let fresh = Validator::new(cfds.clone(), cinds.clone());
        let revalidated = fresh.validate_sorted(&repaired);
        prop_assert_eq!(&revalidated, &report.residual);
        prop_assert!(
            revalidated.len() <= initial.len(),
            "repair regressed: {} -> {}",
            initial.len(),
            revalidated.len()
        );

        // Termination within the cascade budget.
        prop_assert!(report.log.rounds <= budget.max_rounds);

        // Delta bookkeeping closes: initial + Σ net(kept fixes) = residual.
        let net: isize = report.log.applied.iter().map(|a| a.net_change()).sum();
        prop_assert_eq!(
            initial.len() as isize + net,
            report.residual.len() as isize,
            "kept-fix deltas must account for every violation change"
        );

        // Every kept fix is net-negative, carries the stable id of the
        // tuple it acted on, and touches only what its motivating
        // violation names.
        for a in &report.log.applied {
            prop_assert!(a.net_change() < 0, "kept a non-net-negative fix: {a:?}");
            prop_assert!(
                a.target.is_some(),
                "every kept fix must record its target tuple id: {a:?}"
            );
            match (&a.fix, a.motive) {
                (Fix::EditCells { rel, attrs, old, new, .. }, Motive::Cfd(ci)) => {
                    prop_assert_eq!(*rel, cfds[ci].rel());
                    prop_assert_eq!(attrs.clone(), vec![cfds[ci].rhs()]);
                    // The edit changes exactly the named cells.
                    for i in 0..old.arity() {
                        let attr = condep::model::AttrId(i as u32);
                        if attrs.contains(&attr) {
                            prop_assert_ne!(&old[attr], &new[attr]);
                        } else {
                            prop_assert_eq!(&old[attr], &new[attr]);
                        }
                    }
                }
                (Fix::EditCells { .. }, Motive::Cind(_)) => {
                    return Err("CIND fixes never edit cells".to_string());
                }
                (Fix::DeleteTuple { rel, .. }, Motive::Cfd(ci)) => {
                    prop_assert_eq!(*rel, cfds[ci].rel());
                }
                (Fix::DeleteTuple { rel, .. }, Motive::Cind(ci)) => {
                    prop_assert_eq!(*rel, cinds[ci].lhs_rel());
                }
                (Fix::InsertTuple { rel, .. }, Motive::Cind(ci)) => {
                    prop_assert_eq!(*rel, cinds[ci].rhs_rel());
                }
                (Fix::InsertTuple { .. }, Motive::Cfd(_)) => {
                    return Err("CFD fixes never insert tuples".to_string());
                }
            }
        }
    }

    /// The generated workload is non-trivial: across a window of seeds,
    /// most draws inject detectable dirt and the engine applies fixes.
    /// (Guards the suite above against silently degenerating into
    /// all-clean inputs.)
    #[test]
    fn generated_workload_is_nontrivial(window in 0u64..4) {
        let base = window * 16;
        let mut dirty_cases = 0usize;
        let mut fixed_cases = 0usize;
        for seed in base..base + 16 {
            let schema = small_schema(seed);
            let (cfds, cinds, witness) = generate_sigma(
                &schema,
                &SigmaGenConfig {
                    cardinality: 12,
                    consistent: true,
                    ..SigmaGenConfig::default()
                },
                &mut StdRng::seed_from_u64(seed ^ 0x9e37_79b9),
            );
            let Some(witness) = witness else { continue };
            let clean = dirty_database(
                &schema,
                &cfds,
                &cinds,
                &witness,
                &DirtyDataConfig {
                    tuples_per_relation: 12,
                    violations_per_relation: 0,
                },
                &mut StdRng::seed_from_u64(seed ^ 0x85a3_08d3),
            )
            .db;
            let dirtied = dirtied_database(
                &clean,
                &cfds,
                &cinds,
                0.15,
                &mut StdRng::seed_from_u64(seed ^ 0x1357_2468),
            );
            let validator = Validator::new(cfds, cinds);
            let initial = validator.validate_sorted(&dirtied.db);
            if initial.is_empty() {
                continue;
            }
            dirty_cases += 1;
            let (_, report) = repair(
                validator,
                dirtied.db,
                initial,
                &RepairCost::uniform(),
                &RepairBudget::default(),
            )
            .expect("property sigmas are satisfiable by construction");
            if report.fixes_applied() > 0 {
                fixed_cases += 1;
            }
        }
        prop_assert!(
            dirty_cases >= 8,
            "workload degenerated: only {dirty_cases}/16 dirty draws"
        );
        prop_assert!(
            fixed_cases >= dirty_cases / 2,
            "engine idle: {fixed_cases}/{dirty_cases} dirty cases saw fixes"
        );
    }

    /// Repairing an already-clean database is the identity.
    #[test]
    fn repair_of_clean_database_is_identity(seed in 0u64..10_000) {
        let schema = small_schema(seed);
        let (cfds, cinds, witness) = generate_sigma(
            &schema,
            &SigmaGenConfig {
                cardinality: 10,
                consistent: true,
                ..SigmaGenConfig::default()
            },
            &mut StdRng::seed_from_u64(seed + 1),
        );
        let Some(witness) = witness else { return Ok(()); };
        let clean = dirty_database(
            &schema,
            &cfds,
            &cinds,
            &witness,
            &DirtyDataConfig {
                tuples_per_relation: 8,
                violations_per_relation: 0,
            },
            &mut StdRng::seed_from_u64(seed + 2),
        )
        .db;
        let validator = Validator::new(cfds, cinds);
        let initial = validator.validate_sorted(&clean);
        prop_assert!(initial.is_empty());
        let total = clean.total_tuples();
        let (repaired, report) = repair(
            validator,
            clean,
            initial,
            &RepairCost::uniform(),
            &RepairBudget::default(),
        )
        .expect("property sigmas are satisfiable by construction");
        prop_assert!(report.is_clean());
        prop_assert_eq!(report.fixes_applied(), 0);
        prop_assert_eq!(repaired.total_tuples(), total);
    }
}
