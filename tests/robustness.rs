//! Failure injection and adversarial configurations: every budget,
//! cap and error path exercised end-to-end.

use condep::cfd::NormalCfd;
use condep::chase::{chase, ChaseConfig, ChaseOutcome, TemplateDb, UndefinedReason};
use condep::cind::implication::{implies, Implication, ImplicationConfig};
use condep::cind::witness::{build_witness_bounded, WitnessError};
use condep::cind::NormalCind;
use condep::consistency::{
    checking, random_checking, CheckingConfig, ConstraintSet, RandomCheckingConfig,
};
use condep::model::{prow, Domain, ModelError, PValue, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

#[test]
fn database_insert_error_paths() {
    let schema = Arc::new(
        Schema::builder()
            .relation(
                "r",
                &[
                    ("a", Domain::finite_strs(&["x", "y"])),
                    ("b", Domain::integer()),
                ],
            )
            .finish(),
    );
    let mut db = condep::model::Database::empty(schema);
    // Wrong arity.
    assert!(matches!(
        db.insert_into("r", Tuple::new([Value::str("x")])),
        Err(ModelError::ArityMismatch { .. })
    ));
    // Outside the finite domain.
    assert!(matches!(
        db.insert_into("r", Tuple::new([Value::str("z"), Value::int(1)])),
        Err(ModelError::DomainViolation { .. })
    ));
    // Wrong base type on an infinite attribute.
    assert!(matches!(
        db.insert_into("r", Tuple::new([Value::str("x"), Value::str("oops")])),
        Err(ModelError::DomainViolation { .. })
    ));
    // Unknown relation.
    assert!(matches!(
        db.insert_into("nope", Tuple::new([Value::str("x"), Value::int(1)])),
        Err(ModelError::UnknownRelation(_))
    ));
    assert!(db.is_empty(), "failed inserts must not mutate");
}

#[test]
fn chase_surfaces_every_undefined_reason() {
    let schema = Arc::new(
        Schema::builder()
            .relation_str("r", &["a", "b"])
            .relation_str("s", &["c", "d"])
            .finish(),
    );
    let mut rng = StdRng::seed_from_u64(1);

    // FdConflict.
    let c1 = NormalCfd::parse(&schema, "r", &[], prow![], "a", PValue::constant("x")).unwrap();
    let c2 = NormalCfd::parse(&schema, "r", &[], prow![], "a", PValue::constant("y")).unwrap();
    let mut db = TemplateDb::empty(schema.clone());
    condep::chase::ops::seed_tuple(&mut db, schema.rel_id("r").unwrap());
    assert!(matches!(
        chase(db, &[c1, c2], &[], &ChaseConfig::default(), &mut rng),
        ChaseOutcome::Undefined(UndefinedReason::FdConflict { .. })
    ));

    // TupleCapExceeded.
    let ind = NormalCind::parse(&schema, "r", &["a"], &[], "s", &["c"], &[]).unwrap();
    let mut db = TemplateDb::empty(schema.clone());
    condep::chase::ops::seed_tuple(&mut db, schema.rel_id("r").unwrap());
    let starved = ChaseConfig {
        tuple_cap: 0,
        ..ChaseConfig::default()
    };
    assert!(matches!(
        chase(db, &[], std::slice::from_ref(&ind), &starved, &mut rng),
        ChaseOutcome::Undefined(UndefinedReason::TupleCapExceeded)
    ));

    // StepBudgetExhausted (step budget of zero trips on the first step).
    let mut db = TemplateDb::empty(schema.clone());
    condep::chase::ops::seed_tuple(&mut db, schema.rel_id("r").unwrap());
    let exhausted = ChaseConfig {
        max_steps: 0,
        ..ChaseConfig::default()
    };
    assert!(matches!(
        chase(db, &[], &[ind], &exhausted, &mut rng),
        ChaseOutcome::Undefined(UndefinedReason::StepBudgetExhausted)
    ));
}

#[test]
fn witness_size_cap_and_domain_guard() {
    // TooLarge.
    let schema = Arc::new(
        Schema::builder()
            .relation(
                "wide",
                &[
                    ("a", Domain::finite_ints(50)),
                    ("b", Domain::finite_ints(50)),
                    ("c", Domain::finite_ints(50)),
                ],
            )
            .finish(),
    );
    assert!(matches!(
        build_witness_bounded(&schema, &[], 1000),
        Err(WitnessError::TooLarge { .. })
    ));
    // IncompatibleDomains.
    let schema2 = Arc::new(
        Schema::builder()
            .relation("r", &[("a", Domain::integer())])
            .relation("s", &[("b", Domain::finite_ints(3))])
            .finish(),
    );
    let bad = NormalCind::parse(&schema2, "r", &["a"], &[], "s", &["b"], &[]).unwrap();
    assert!(matches!(
        build_witness_bounded(&schema2, &[bad], 1000),
        Err(WitnessError::IncompatibleDomains { .. })
    ));
}

#[test]
fn implication_budgets_degrade_to_unknown_never_to_wrong() {
    let schema = condep::model::fixtures::bank_schema();
    let sigma = condep::cind::normalize::normalize_all(&[
        condep::cind::fixtures::psi1_edi(),
        condep::cind::fixtures::psi2_edi(),
        condep::cind::fixtures::psi5(),
        condep::cind::fixtures::psi6(),
    ]);
    let goal =
        condep::cind::normalize::normalize(&condep::cind::fixtures::example_3_3_goal()).remove(0);
    // Reference verdict with ample budget.
    let full = implies(&schema, &sigma, &goal, ImplicationConfig::default());
    assert_eq!(full, Implication::Implied);
    // Every starved configuration returns Implied or Unknown — never
    // NotImplied.
    for max_states in [1usize, 2, 8, 64] {
        for max_assignments in [1u64, 2] {
            let verdict = implies(
                &schema,
                &sigma,
                &goal,
                ImplicationConfig {
                    max_states,
                    max_initial_assignments: max_assignments,
                    ..ImplicationConfig::default()
                },
            );
            assert_ne!(
                verdict,
                Implication::NotImplied,
                "budget must not flip the verdict"
            );
        }
    }
}

#[test]
fn checking_zero_budget_configs_are_sound() {
    // K = 0, preprocessing off: no witness can be produced; the answer
    // must be None, not a panic or a bogus witness.
    let schema = condep::cind::fixtures::example_5_4_schema();
    let cinds = condep::cind::fixtures::example_5_4_cinds(&schema);
    let sigma = ConstraintSet::new(schema, vec![], cinds);
    let cfg = CheckingConfig {
        use_preprocessing: false,
        random: RandomCheckingConfig {
            k: 0,
            ..RandomCheckingConfig::default()
        },
        ..CheckingConfig::default()
    };
    assert!(checking(&sigma, &cfg).is_none());
    // With preprocessing, the same Σ resolves without any chase run.
    let cfg2 = CheckingConfig {
        random: RandomCheckingConfig {
            k: 0,
            ..RandomCheckingConfig::default()
        },
        ..CheckingConfig::default()
    };
    if let Some(w) = checking(&sigma, &cfg2) {
        assert!(sigma.satisfied_by(&w));
    }
}

#[test]
fn random_checking_with_tiny_caps_stays_sound() {
    // Absurdly small caps: every returned witness must still satisfy Σ.
    let schema = condep::cind::fixtures::example_5_1_schema(true);
    let cinds = condep::cind::fixtures::example_5_1_cinds(&schema);
    let cfds = vec![
        NormalCfd::parse(&schema, "r2", &["h"], prow![_], "g", PValue::constant("c")).unwrap(),
    ];
    let sigma = ConstraintSet::new(schema, cfds, cinds);
    for cap in [1usize, 2, 3] {
        let cfg = RandomCheckingConfig {
            k: 30,
            seed: cap as u64,
            chase: ChaseConfig {
                tuple_cap: cap,
                ..ChaseConfig::default()
            },
        };
        if let Some(w) = random_checking(&sigma, &cfg, None) {
            assert!(sigma.satisfied_by(&w), "cap {cap} produced a bad witness");
        }
    }
}

#[test]
fn sat_solver_budget_never_flips_verdicts() {
    use condep::sat::{Cnf, SolveResult, Solver, SolverConfig, Var};
    // A satisfiable and an unsatisfiable formula under shrinking budgets.
    let mut sat_cnf = Cnf::new();
    let vs = sat_cnf.fresh_vars(6);
    for w in vs.windows(2) {
        sat_cnf.add_clause([w[0].pos(), w[1].neg()]);
    }
    let mut unsat_cnf = Cnf::new();
    let p: Vec<Vec<condep::sat::Lit>> = (0..4)
        .map(|_| unsat_cnf.fresh_vars(3).into_iter().map(Var::pos).collect())
        .collect();
    for row in &p {
        unsat_cnf.add_at_least_one(row);
    }
    #[allow(clippy::needless_range_loop)]
    for j in 0..3 {
        for i1 in 0..4 {
            for i2 in (i1 + 1)..4 {
                unsat_cnf.add_clause([!p[i1][j], !p[i2][j]]);
            }
        }
    }
    for budget in [0u64, 1, 2, 10_000] {
        let cfg = SolverConfig {
            max_conflicts: Some(budget),
        };
        match Solver::with_config(&sat_cnf, cfg).solve() {
            SolveResult::Sat(m) => assert!(sat_cnf.eval(&m)),
            SolveResult::Unsat => panic!("satisfiable formula declared UNSAT"),
            SolveResult::Unknown => {}
        }
        match Solver::with_config(&unsat_cnf, cfg).solve() {
            SolveResult::Sat(_) => panic!("unsatisfiable formula declared SAT"),
            SolveResult::Unsat | SolveResult::Unknown => {}
        }
    }
}

#[test]
fn empty_schema_and_empty_sigma_edge_cases() {
    let schema = Arc::new(Schema::new(vec![]).unwrap());
    assert!(schema.is_empty());
    let sigma = ConstraintSet::new(schema.clone(), vec![], vec![]);
    // No relation can be nonempty: Checking must answer None (the
    // consistency problem asks for a nonempty instance).
    assert!(checking(&sigma, &CheckingConfig::default()).is_none());
    // The Theorem 3.2 witness over the empty schema is the empty
    // database — vacuously fine for CINDs but empty.
    let w = condep::cind::witness::build_witness(&schema, &[]).unwrap();
    assert!(w.is_empty());
}

#[test]
fn zero_arity_patterns_and_empty_lists() {
    // CINDs with all lists empty: triggered by every tuple, satisfied by
    // any nonempty target.
    let schema = Arc::new(
        Schema::builder()
            .relation_str("r", &["a"])
            .relation_str("s", &["b"])
            .finish(),
    );
    let cind = NormalCind::parse(&schema, "r", &[], &[], "s", &[], &[]).unwrap();
    let mut db = condep::model::Database::empty(schema.clone());
    db.insert_into("r", Tuple::new([Value::str("v")])).unwrap();
    assert!(!condep::cind::satisfy::satisfies_normal(&db, &cind));
    db.insert_into("s", Tuple::new([Value::str("w")])).unwrap();
    assert!(condep::cind::satisfy::satisfies_normal(&db, &cind));
}
