//! Every checkable claim the paper makes about its running examples,
//! asserted end-to-end across the workspace crates.

use condep::cfd::fixtures as cfd_fx;
use condep::cfd::{normalize as cfd_normalize, satisfy as cfd_satisfy};
use condep::cind::fixtures as cind_fx;
use condep::cind::implication::{implies, Implication, ImplicationConfig};
use condep::cind::inference::Proof;
use condep::cind::normalize::{normalize, normalize_all};
use condep::cind::satisfy as cind_satisfy;
use condep::cind::witness::build_witness;
use condep::consistency::graph::DepGraph;
use condep::consistency::{
    checking, pre_processing, ChaseCfdChecker, CheckingConfig, ConstraintSet, RandomCheckingConfig,
};
use condep::model::fixtures::{bank_database, bank_schema, clean_bank_database};
use condep::model::{prow, tuple, PValue};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Example 2.2: "The database in Fig. 1 satisfies [ψ1–ψ5] … On the other
/// hand, ψ6 is violated by the database."
#[test]
fn example_2_2_satisfaction() {
    let db = bank_database();
    for psi in [
        cind_fx::psi1_edi(),
        cind_fx::psi1_nyc(),
        cind_fx::psi2_edi(),
        cind_fx::psi2_nyc(),
        cind_fx::psi3(),
        cind_fx::psi4(),
        cind_fx::psi5(),
    ] {
        assert!(cind_satisfy::satisfies(&db, &psi));
    }
    assert!(!cind_satisfy::satisfies(&db, &cind_fx::psi6()));
}

/// Example 2.2: "although these CINDs are satisfied, their embedded INDs
/// do not necessarily hold" — the embedded IND of ψ1 fails on EDI.
#[test]
fn example_2_2_embedded_ind_fails() {
    let db = bank_database();
    let schema = bank_schema();
    let embedded = condep::cind::Cind::parse(
        &schema,
        "account_edi",
        &["an", "cn", "ca", "cp"],
        &[],
        "saving",
        &["an", "cn", "ca", "cp"],
        &[],
        vec![condep::model::PatternRow::all_any(8)],
    )
    .unwrap();
    assert!(!cind_satisfy::satisfies(&db, &embedded));
}

/// Example 2.2 / Section 2: the violating tuple is exactly t10.
#[test]
fn example_2_2_t10_is_the_witness() {
    let db = bank_database();
    let psi6 = normalize(&cind_fx::psi6());
    let violations = condep::cind::find_violations(&db, &psi6[0]);
    assert_eq!(violations.len(), 1);
    let checking_rel = db.schema().rel_id("checking").unwrap();
    assert_eq!(
        db.relation(checking_rel).get(violations[0].tuple),
        Some(&tuple![
            "02",
            "I. Stark",
            "EDI, EH1 4FE",
            "131-6693423",
            "EDI"
        ])
    );
}

/// Proposition 3.1: normalization preserves satisfaction on both the
/// dirty and the clean instance, and stays linear in size.
#[test]
fn proposition_3_1_on_figure_2() {
    use condep::cind::normalize::{size_of_general, size_of_normal};
    let sigma = cind_fx::figure_2();
    for db in [bank_database(), clean_bank_database()] {
        for psi in &sigma {
            let direct = cind_satisfy::satisfies_general_direct(&db, psi);
            let via_normal = normalize(psi)
                .iter()
                .all(|n| cind_satisfy::satisfies_normal(&db, n));
            assert_eq!(direct, via_normal);
        }
    }
    let normal = normalize_all(&sigma);
    assert!(size_of_normal(&normal) <= 2 * size_of_general(&sigma));
}

/// Theorem 3.2: a witness exists for the Figure 2 CINDs — and for the
/// Example 5.4 set.
#[test]
fn theorem_3_2_witness_construction() {
    let schema = bank_schema();
    let sigma = normalize_all(&cind_fx::figure_2());
    let db = build_witness(&schema, &sigma).expect("always consistent");
    assert!(!db.is_empty());
    assert!(cind_satisfy::satisfies_all(&db, &sigma));
}

/// Example 3.3 + Theorem 3.4 machinery: Σ |= ψ for the account/interest
/// goal, decided by the implication game.
#[test]
fn example_3_3_implication() {
    let schema = bank_schema();
    let sigma = normalize_all(&[
        cind_fx::psi1_edi(),
        cind_fx::psi2_edi(),
        cind_fx::psi5(),
        cind_fx::psi6(),
    ]);
    let goal = normalize(&cind_fx::example_3_3_goal()).remove(0);
    assert_eq!(
        implies(&schema, &sigma, &goal, ImplicationConfig::default()),
        Implication::Implied
    );
}

/// Example 3.4: the seven-step proof in the inference system I derives ψ
/// and is sound.
#[test]
fn example_3_4_derivation() {
    let schema = bank_schema();
    let mut p = Proof::new();
    let a1 = p.axiom(normalize(&cind_fx::psi1_edi()).remove(0));
    let a2 = p.axiom(normalize(&cind_fx::psi2_edi()).remove(0));
    let a5 = p.axiom(normalize(&cind_fx::psi5()).remove(0));
    let a6 = p.axiom(normalize(&cind_fx::psi6()).remove(0));
    let s1 = p.cind2(a1, &[]).unwrap();
    let s2 = p.cind2(a2, &[]).unwrap();
    let s3 = p.cind6(a5, &[1]).unwrap();
    let s4 = p.cind6(a6, &[1]).unwrap();
    let s5 = p.cind3(s1, s3).unwrap();
    let s6 = p.cind3(s2, s4).unwrap();
    let account = schema.rel_id("account_edi").unwrap();
    let interest = schema.rel_id("interest").unwrap();
    let at_l = schema.relation(account).unwrap().attr_id("at").unwrap();
    let at_r = schema.relation(interest).unwrap().attr_id("at").unwrap();
    p.cind8(&schema, &[s5, s6], at_l, at_r).unwrap();
    assert_eq!(
        p.conclusion(),
        Some(&normalize(&cind_fx::example_3_3_goal()).remove(0))
    );
    assert_eq!(p.check_soundness(&clean_bank_database()), None);
}

/// Example 4.1: Fig 1 satisfies fd1–fd3, ϕ1, ϕ2 but not ϕ3; a single
/// tuple (t12) violates a CFD.
#[test]
fn example_4_1_cfd_satisfaction() {
    let db = bank_database();
    for cfd in [
        cfd_fx::fd1(),
        cfd_fx::fd2(),
        cfd_fx::fd3(),
        cfd_fx::phi1(),
        cfd_fx::phi2(),
    ] {
        assert!(cfd_satisfy::satisfies(&db, &cfd));
    }
    assert!(!cfd_satisfy::satisfies(&db, &cfd_fx::phi3()));
    // The violation is a single-tuple one.
    let normal = cfd_normalize::normalize(&cfd_fx::phi3());
    let mut singles = 0;
    for n in &normal {
        for v in condep::cfd::find_violations(&db, n) {
            assert!(matches!(v, condep::cfd::CfdViolation::SingleTuple { .. }));
            singles += 1;
        }
    }
    assert_eq!(singles, 1);
}

/// Example 3.2: the four CFDs over dom(A) = bool are inconsistent, yet
/// any three of them are consistent.
#[test]
fn example_3_2_inconsistency() {
    use condep::cfd::consistency::{consistent_exact, Verdict};
    let (schema, cfds) = cfd_fx::example_3_2();
    let rel = schema.rel_id("r").unwrap();
    assert_eq!(
        consistent_exact(&schema, rel, &cfds, None),
        Verdict::Inconsistent
    );
    for skip in 0..cfds.len() {
        let subset: Vec<_> = cfds
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, c)| c.clone())
            .collect();
        assert_eq!(
            consistent_exact(&schema, rel, &subset, None),
            Verdict::Consistent
        );
    }
}

/// Example 4.2: φ and ψ are separately consistent but jointly not; the
/// heuristic Checking rejects the pair.
#[test]
fn example_4_2_joint_inconsistency() {
    let (schema, cind) = cind_fx::example_4_2_cind();
    let phi =
        condep::cfd::NormalCfd::parse(&schema, "r", &["a"], prow![_], "b", PValue::constant("a"))
            .unwrap();
    // Separately consistent.
    let only_cfd = ConstraintSet::new(schema.clone(), vec![phi.clone()], vec![]);
    assert!(checking(&only_cfd, &CheckingConfig::default()).is_some());
    let only_cind = ConstraintSet::new(schema.clone(), vec![], vec![cind.clone()]);
    assert!(checking(&only_cind, &CheckingConfig::default()).is_some());
    // Jointly inconsistent.
    let joint = ConstraintSet::new(schema, vec![phi], vec![cind]);
    assert!(checking(&joint, &CheckingConfig::default()).is_none());
}

/// Examples 5.4/5.5: preProcessing returns 1 with ψ4 and −1 (reduced to
/// Figure 8) with ψ4'; Example 5.6: Checking then succeeds via
/// RandomChecking.
#[test]
fn examples_5_4_to_5_6_pipeline() {
    let schema = cind_fx::example_5_4_schema();
    let cfds = vec![
        condep::cfd::NormalCfd::parse(&schema, "r1", &["e"], prow![_], "f", PValue::Any).unwrap(),
        condep::cfd::NormalCfd::parse(&schema, "r2", &["h"], prow![_], "g", PValue::constant("c"))
            .unwrap(),
        condep::cfd::NormalCfd::parse(&schema, "r3", &["a"], prow!["c"], "b", PValue::Any).unwrap(),
        condep::cfd::NormalCfd::parse(&schema, "r4", &["c"], prow![_], "d", PValue::constant("a"))
            .unwrap(),
        condep::cfd::NormalCfd::parse(&schema, "r4", &["c"], prow![_], "d", PValue::constant("b"))
            .unwrap(),
        condep::cfd::NormalCfd::parse(&schema, "r5", &["i"], prow![_], "j", PValue::constant("c"))
            .unwrap(),
    ];
    // First variant (ψ4): preProcessing answers 1.
    let sigma = ConstraintSet::new(
        schema.clone(),
        cfds.clone(),
        cind_fx::example_5_4_cinds(&schema),
    );
    let mut graph = DepGraph::build(&sigma);
    let mut checker = ChaseCfdChecker::new(1000, StdRng::seed_from_u64(0));
    assert_eq!(pre_processing(&mut graph, &sigma, &mut checker).code(), 1);

    // Second variant (ψ4'): −1 with the Figure 8 remnant, then Checking
    // succeeds.
    let mut cinds = cind_fx::example_5_4_cinds(&schema);
    cinds[3] = cind_fx::example_5_5_psi4_prime(&schema);
    let sigma = ConstraintSet::new(schema.clone(), cfds, cinds);
    let mut graph = DepGraph::build(&sigma);
    let mut checker = ChaseCfdChecker::new(1000, StdRng::seed_from_u64(0));
    assert_eq!(pre_processing(&mut graph, &sigma, &mut checker).code(), -1);
    assert_eq!(graph.live_count(), 2);
    let witness = checking(
        &sigma,
        &CheckingConfig {
            random: RandomCheckingConfig {
                k: 20,
                seed: 5,
                ..RandomCheckingConfig::default()
            },
            ..CheckingConfig::default()
        },
    )
    .expect("Example 5.6 finds a witness");
    assert!(sigma.satisfied_by(&witness));
}

/// Section 1 (Example 1.2 narrative): the clean instance satisfies all
/// of Figures 2 and 4 simultaneously.
#[test]
fn clean_instance_satisfies_everything() {
    let db = clean_bank_database();
    for psi in cind_fx::figure_2() {
        assert!(cind_satisfy::satisfies(&db, &psi));
    }
    for phi in [cfd_fx::phi1(), cfd_fx::phi2(), cfd_fx::phi3()] {
        assert!(cfd_satisfy::satisfies(&db, &phi));
    }
}
