//! Property-based tests (proptest) on the core data structures and
//! invariants.

use condep::cind::normalize::normalize;
use condep::cind::satisfy;
use condep::model::{Database, Domain, PValue, PatternRow, Relation, Schema, Tuple, Value};
use condep::sat::{Cnf, SolveResult, Solver, Var};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------- values

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::bool),
        (-20i64..20).prop_map(Value::int),
        "[a-e]{1,3}".prop_map(Value::str),
    ]
}

fn arb_pvalue() -> impl Strategy<Value = PValue> {
    prop_oneof![Just(PValue::Any), arb_value().prop_map(PValue::Const),]
}

proptest! {
    /// The match order ≍: wildcards match everything; constants match
    /// exactly themselves.
    #[test]
    fn pvalue_match_order(v in arb_value(), p in arb_pvalue()) {
        match &p {
            PValue::Any => prop_assert!(p.matches(&v)),
            PValue::Const(c) => prop_assert_eq!(p.matches(&v), *c == v),
        }
    }

    /// Subsumption is reflexive and transitive through `Any`.
    #[test]
    fn pvalue_subsumption(p in arb_pvalue()) {
        prop_assert!(p.subsumed_by(&p));
        prop_assert!(p.subsumed_by(&PValue::Any));
        if p.is_const() {
            prop_assert!(!PValue::Any.subsumed_by(&p));
        }
    }

    /// Value ordering is a strict total order consistent with equality.
    #[test]
    fn value_total_order(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Equal => prop_assert_eq!(&a, &b),
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
        }
    }
}

// ------------------------------------------------------------- relations

proptest! {
    /// Relations implement set semantics: insertion order preserved,
    /// duplicates dropped, equality order-insensitive.
    #[test]
    fn relation_set_semantics(rows in proptest::collection::vec(
        proptest::collection::vec(arb_value(), 2..=2), 0..12)
    ) {
        let tuples: Vec<Tuple> = rows.iter().map(|r| Tuple::new(r.clone())).collect();
        let rel: Relation = tuples.iter().cloned().collect();
        // Every inserted tuple is present.
        for t in &tuples {
            prop_assert!(rel.contains(t));
        }
        // No duplicates survive.
        let mut seen = std::collections::HashSet::new();
        for t in rel.iter() {
            prop_assert!(seen.insert(t.clone()));
        }
        // Reversed insertion yields an equal relation.
        let rev: Relation = tuples.into_iter().rev().collect();
        prop_assert_eq!(rel, rev);
    }

    /// Pattern rows match a tuple iff every constant cell agrees.
    #[test]
    fn pattern_row_matching(
        cells in proptest::collection::vec((arb_value(), any::<bool>()), 1..5)
    ) {
        let tuple = Tuple::new(cells.iter().map(|(v, _)| v.clone()));
        let attrs: Vec<condep::model::AttrId> =
            (0..cells.len() as u32).map(condep::model::AttrId).collect();
        // A row that copies the tuple where const, wildcards elsewhere,
        // always matches.
        let row = PatternRow::new(cells.iter().map(|(v, wild)| {
            if *wild { PValue::Any } else { PValue::Const(v.clone()) }
        }));
        prop_assert!(row.matches_tuple(&tuple, &attrs));
    }
}

// ------------------------------------------------------------------- SAT

fn arb_cnf() -> impl Strategy<Value = (u32, Vec<Vec<(u32, bool)>>)> {
    (2u32..7).prop_flat_map(|nvars| {
        let clause = proptest::collection::vec((0..nvars, any::<bool>()), 1..4);
        (Just(nvars), proptest::collection::vec(clause, 0..14))
    })
}

proptest! {
    /// The DPLL solver agrees with brute force on small formulas, and
    /// returned models really satisfy.
    #[test]
    fn sat_solver_correct((nvars, clauses) in arb_cnf()) {
        let mut cnf = Cnf::new();
        let vars = cnf.fresh_vars(nvars as usize);
        for clause in &clauses {
            cnf.add_clause(clause.iter().map(|(v, pos)| {
                if *pos { vars[*v as usize].pos() } else { vars[*v as usize].neg() }
            }));
        }
        let brute = (0u64..(1 << nvars)).any(|bits| {
            let assignment: Vec<bool> =
                (0..nvars as usize).map(|i| bits >> i & 1 == 1).collect();
            cnf.eval(&assignment)
        });
        match Solver::new(&cnf).solve() {
            SolveResult::Sat(model) => {
                prop_assert!(brute, "solver SAT but brute force UNSAT");
                prop_assert!(cnf.eval(&model), "model does not satisfy");
            }
            SolveResult::Unsat => prop_assert!(!brute, "solver UNSAT but brute force SAT"),
            SolveResult::Unknown => prop_assert!(false, "no budget configured"),
        }
    }

    /// Exactly-one encodings admit exactly the one-hot models.
    #[test]
    fn exactly_one_models(n in 1usize..6) {
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = cnf.fresh_vars(n);
        let lits: Vec<_> = vars.iter().map(|v| v.pos()).collect();
        cnf.add_exactly_one(&lits);
        for bits in 0u64..(1 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let ones = assignment.iter().filter(|b| **b).count();
            prop_assert_eq!(cnf.eval(&assignment), ones == 1);
        }
    }
}

// ---------------------------------------------- CIND semantics invariants

/// A tiny two-relation schema for semantic properties.
fn two_rel_schema() -> Arc<Schema> {
    Arc::new(
        Schema::builder()
            .relation(
                "src",
                &[
                    ("a", Domain::string()),
                    ("b", Domain::finite_strs(&["p", "q"])),
                ],
            )
            .relation(
                "dst",
                &[
                    ("c", Domain::string()),
                    ("d", Domain::finite_strs(&["p", "q"])),
                ],
            )
            .finish(),
    )
}

fn arb_small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::str("v0")),
        Just(Value::str("v1")),
        Just(Value::str("v2")),
    ]
}

fn arb_fin() -> impl Strategy<Value = Value> {
    prop_oneof![Just(Value::str("p")), Just(Value::str("q"))]
}

fn arb_db() -> impl Strategy<Value = Database> {
    let src_rows = proptest::collection::vec((arb_small_value(), arb_fin()), 0..6);
    let dst_rows = proptest::collection::vec((arb_small_value(), arb_fin()), 0..6);
    (src_rows, dst_rows).prop_map(|(srcs, dsts)| {
        let schema = two_rel_schema();
        let mut db = Database::empty(schema.clone());
        let src = schema.rel_id("src").unwrap();
        let dst = schema.rel_id("dst").unwrap();
        for (a, b) in srcs {
            db.insert(src, Tuple::new([a, b])).unwrap();
        }
        for (c, d) in dsts {
            db.insert(dst, Tuple::new([c, d])).unwrap();
        }
        db
    })
}

fn arb_cind() -> impl Strategy<Value = condep::cind::Cind> {
    // Tableau rows over X=[a→c], Xp=[b], Yp=[d]: cells (x, xp ‖ y, yp)
    // with tp[X] = tp[Y] enforced by construction.
    let cell_x = prop_oneof![
        Just(None),
        Just(Some(Value::str("v0"))),
        Just(Some(Value::str("v1"))),
    ];
    let cell_f = prop_oneof![
        Just(None),
        Just(Some(Value::str("p"))),
        Just(Some(Value::str("q"))),
    ];
    proptest::collection::vec((cell_x, cell_f.clone(), cell_f), 1..4).prop_map(|rows| {
        let schema = two_rel_schema();
        let tableau = rows
            .into_iter()
            .map(|(x, xp, yp)| {
                let to_cell = |v: Option<Value>| match v {
                    None => PValue::Any,
                    Some(v) => PValue::Const(v),
                };
                PatternRow::new(vec![
                    to_cell(x.clone()),
                    to_cell(xp),
                    to_cell(x),
                    to_cell(yp),
                ])
            })
            .collect();
        condep::cind::Cind::parse(
            &schema,
            "src",
            &["a"],
            &["b"],
            "dst",
            &["c"],
            &["d"],
            tableau,
        )
        .unwrap()
    })
}

proptest! {
    /// Proposition 3.1: the normalized set is equivalent to the original
    /// CIND on arbitrary databases.
    #[test]
    fn normalization_preserves_satisfaction(db in arb_db(), cind in arb_cind()) {
        let direct = satisfy::satisfies_general_direct(&db, &cind);
        let via_normal = normalize(&cind)
            .iter()
            .all(|n| satisfy::satisfies_normal(&db, n));
        prop_assert_eq!(direct, via_normal);
    }

    /// The indexed checker agrees with the naive semantics.
    #[test]
    fn indexed_checker_agrees_with_oracle(db in arb_db(), cind in arb_cind()) {
        prop_assert_eq!(
            satisfy::satisfies(&db, &cind),
            satisfy::satisfies_general_direct(&db, &cind)
        );
    }

    /// Violations are exactly the triggered-but-unmatched tuples: the
    /// database satisfies a normal CIND iff no violations are reported.
    #[test]
    fn violations_iff_not_satisfied(db in arb_db(), cind in arb_cind()) {
        for n in normalize(&cind) {
            let violations = condep::cind::find_violations(&db, &n);
            prop_assert_eq!(
                violations.is_empty(),
                satisfy::satisfies_normal(&db, &n)
            );
            // The plan-based detector agrees.
            let via_plan = condep::cind::violations::find_violations_via_plan(&db, &n);
            prop_assert_eq!(violations.is_empty(), via_plan.is_empty());
        }
    }

    /// Monotonicity: adding tuples to the *target* relation never breaks
    /// a satisfied CIND.
    #[test]
    fn target_growth_is_monotone(
        db in arb_db(),
        cind in arb_cind(),
        extra_c in arb_small_value(),
        extra_d in arb_fin(),
    ) {
        let normal = normalize(&cind);
        let satisfied_before: Vec<bool> = normal
            .iter()
            .map(|n| satisfy::satisfies_normal(&db, n))
            .collect();
        let mut bigger = db.clone();
        let dst = bigger.schema().rel_id("dst").unwrap();
        bigger.insert(dst, Tuple::new([extra_c, extra_d])).unwrap();
        for (n, before) in normal.iter().zip(satisfied_before) {
            if before {
                prop_assert!(satisfy::satisfies_normal(&bigger, n));
            }
        }
    }
}

// ----------------------------------------- batched validator equivalence

/// The per-constraint reference detectors as a sorted report.
fn reference_report(
    v: &condep::validate::Validator,
    db: &Database,
) -> condep::validate::SigmaReport {
    let mut expected = condep::validate::SigmaReport::default();
    for (i, cfd) in v.cfds().iter().enumerate() {
        for viol in condep::cfd::find_violations(db, cfd) {
            expected.cfd.push((i, viol));
        }
    }
    for (i, cind) in v.cinds().iter().enumerate() {
        for viol in condep::cind::find_violations(db, cind) {
            expected.cind.push((i, viol));
        }
    }
    expected.sort();
    expected
}

/// Checks one (schema, Σ, database) case: the batched `Validator` must
/// agree with the per-CFD/per-CIND detectors — as sets of violations,
/// and (after sorting) witness for witness — and `satisfies` must agree
/// with `satisfies_normal` across the set.
fn assert_validator_matches_reference(
    cfds: &[condep::cfd::NormalCfd],
    cinds: &[condep::cind::NormalCind],
    db: &Database,
    context: &str,
) {
    let v = condep::validate::Validator::new(cfds.to_vec(), cinds.to_vec());
    let batched = v.validate_sorted(db);
    let expected = reference_report(&v, db);
    assert_eq!(batched, expected, "batched ≠ per-constraint on {context}");
    let per_constraint_clean = cfds
        .iter()
        .all(|n| condep::cfd::satisfy::satisfies_normal(db, n))
        && cinds.iter().all(|n| satisfy::satisfies_normal(db, n));
    assert_eq!(
        v.satisfies(db),
        per_constraint_clean,
        "satisfies disagrees on {context}"
    );
    assert_eq!(batched.is_empty(), per_constraint_clean, "{context}");
}

/// ≥ 100 random (schema, Σ, instance) cases from the Section 6
/// generators: the batched validator is indistinguishable from the
/// per-constraint detectors on every one of them.
#[test]
fn validator_agrees_with_per_constraint_detectors_on_random_workloads() {
    use condep::gen::{
        dirty_database, generate_sigma, random_schema, DirtyDataConfig, SchemaGenConfig,
        SigmaGenConfig,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut cases = 0;
    for seed in 0u64..120 {
        let schema = random_schema(
            &SchemaGenConfig {
                relations: 3,
                attrs_min: 2,
                attrs_max: 5,
                finite_ratio: 0.3,
                finite_dom_min: 2,
                finite_dom_max: 4,
            },
            &mut StdRng::seed_from_u64(seed),
        );
        let (cfds, cinds, witness) = generate_sigma(
            &schema,
            &SigmaGenConfig {
                cardinality: 12,
                consistent: true,
                ..SigmaGenConfig::default()
            },
            &mut StdRng::seed_from_u64(seed ^ 0xdead_beef),
        );
        let Some(witness) = witness else { continue };
        // A dirty instance (clean clones of the witness + injected
        // violations) and the tiny witness database itself.
        let dirty = dirty_database(
            &schema,
            &cfds,
            &cinds,
            &witness,
            &DirtyDataConfig {
                tuples_per_relation: 40,
                violations_per_relation: 4,
            },
            &mut StdRng::seed_from_u64(seed.wrapping_mul(31)),
        );
        assert_validator_matches_reference(
            &cfds,
            &cinds,
            &dirty.db,
            &format!("seed {seed} (dirty instance)"),
        );
        assert_validator_matches_reference(
            &cfds,
            &cinds,
            &witness.database(&schema),
            &format!("seed {seed} (witness instance)"),
        );
        cases += 2;
    }
    assert!(
        cases >= 100,
        "only {cases} cases ran — below the 100-case bar"
    );
}

// Focused randomized strategy for the tricky CFD shapes: wildcard-RHS
// pair witnesses and the empty-LHS (global agreement) edge case.
proptest! {
    #[test]
    fn validator_handles_wildcard_rhs_and_empty_lhs(
        rows in proptest::collection::vec((arb_small_value(), arb_fin()), 0..10),
        lhs_wild in any::<bool>(),
    ) {
        use condep::cfd::NormalCfd;
        use condep::model::PValue as P;
        let schema = two_rel_schema();
        let mut db = Database::empty(schema.clone());
        let src = schema.rel_id("src").unwrap();
        for (a, b) in rows {
            db.insert(src, Tuple::new([a, b])).unwrap();
        }
        // Wildcard-RHS FD src: a → b, empty-LHS variants on both
        // columns, and a constant-LHS row — all over the same relation.
        let cfds = vec![
            NormalCfd::parse(&schema, "src", &["a"], PatternRow::all_any(1), "b", P::Any)
                .unwrap(),
            NormalCfd::parse(&schema, "src", &[], PatternRow::all_any(0), "b", P::Any)
                .unwrap(),
            NormalCfd::parse(&schema, "src", &[], PatternRow::all_any(0), "a", P::Any)
                .unwrap(),
            NormalCfd::parse(
                &schema,
                "src",
                &["a"],
                if lhs_wild {
                    PatternRow::all_any(1)
                } else {
                    PatternRow::new([P::constant("v0")])
                },
                "b",
                P::constant("p"),
            )
            .unwrap(),
        ];
        let v = condep::validate::Validator::new(cfds.clone(), vec![]);
        let batched = v.validate_sorted(&db);
        let expected = reference_report(&v, &db);
        prop_assert_eq!(&batched, &expected);
        // Wildcard-RHS pair witnesses must match exactly, not just as
        // counts: same (left, right) positions.
        for ((bi, bv), (ei, ev)) in batched.cfd.iter().zip(expected.cfd.iter()) {
            prop_assert_eq!(bi, ei);
            prop_assert_eq!(bv, ev);
        }
    }
}

// ------------------------------------------------------- chase invariants

proptest! {
    /// The bounded chase always terminates and, when defined, its
    /// fresh instantiation satisfies the constraint set it was chased
    /// with (Theorem 5.1's certificate).
    #[test]
    fn chase_terminates_and_certifies(seed in 0u64..200) {
        use condep::chase::{chase, ChaseConfig, ChaseOutcome, TemplateDb};
        use condep::chase::ops::seed_tuple;
        use condep::gen::{generate_sigma, random_schema, SchemaGenConfig, SigmaGenConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let schema = random_schema(
            &SchemaGenConfig {
                relations: 3,
                attrs_min: 2,
                attrs_max: 4,
                finite_ratio: 0.3,
                finite_dom_min: 2,
                finite_dom_max: 3,
            },
            &mut StdRng::seed_from_u64(seed),
        );
        let (cfds, cinds, _) = generate_sigma(
            &schema,
            &SigmaGenConfig {
                cardinality: 10,
                consistent: false,
                ..SigmaGenConfig::default()
            },
            &mut StdRng::seed_from_u64(seed + 1),
        );
        let mut db = TemplateDb::empty(schema.clone());
        seed_tuple(&mut db, condep::model::RelId(0));
        let cfg = ChaseConfig {
            tuple_cap: 200,
            ..ChaseConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed + 2);
        // Termination: the call returns (no hang); definedness varies.
        match chase(db, &cfds, &cinds, &cfg, &mut rng) {
            ChaseOutcome::Defined(template) => {
                let consts: Vec<Value> = {
                    let sigma = condep::consistency::ConstraintSet::new(
                        schema.clone(), cfds.clone(), cinds.clone());
                    sigma.all_constants()
                };
                if let Some(instance) = template.instantiate_fresh(&consts) {
                    prop_assert!(condep::cfd::satisfy::satisfies_all(&instance, &cfds));
                    prop_assert!(satisfy::satisfies_all(&instance, &cinds));
                }
            }
            ChaseOutcome::Undefined(_) => {}
        }
    }
}

// ------------------------------------------ streamed delta equivalence

/// An externally maintained violation state, updated **only** from
/// streamed [`condep::validate::SigmaDelta`]s by the documented consumer
/// rule: `after = renumber(before − resolved, moved) + introduced`.
struct ShadowReport {
    cfd: Vec<(usize, condep::cfd::CfdViolation)>,
    cind: Vec<(usize, condep::cind::CindViolation)>,
}

impl ShadowReport {
    fn from_report(report: &condep::validate::SigmaReport) -> Self {
        ShadowReport {
            cfd: report.cfd.clone(),
            cind: report.cind.clone(),
        }
    }

    fn apply(&mut self, v: &condep::validate::Validator, delta: &condep::validate::SigmaDelta) {
        use condep::cfd::CfdViolation;
        // 1. Subtract the resolved violations (pre-move labels).
        for gone in &delta.cfd.resolved {
            let at = self
                .cfd
                .iter()
                .position(|have| have == gone)
                .expect("resolved CFD violation must be present in the shadow");
            self.cfd.swap_remove(at);
        }
        for gone in &delta.cind.resolved {
            let at = self
                .cind
                .iter()
                .position(|have| have == gone)
                .expect("resolved CIND violation must be present in the shadow");
            self.cind.swap_remove(at);
        }
        // 2. Renumber for the swap-based deletion, if any.
        if let Some(mv) = delta.moved {
            let renum = |p: usize| if p == mv.from { mv.to } else { p };
            for (i, viol) in &mut self.cfd {
                if v.cfds()[*i].rel() != mv.rel {
                    continue;
                }
                match viol {
                    CfdViolation::SingleTuple { tuple, .. } => *tuple = renum(*tuple),
                    CfdViolation::Pair { left, right } => {
                        *left = renum(*left);
                        *right = renum(*right);
                    }
                }
            }
            for (i, viol) in &mut self.cind {
                if v.cinds()[*i].lhs_rel() == mv.rel {
                    viol.tuple = renum(viol.tuple);
                }
            }
        }
        // 3. Add the introduced violations (post-move labels).
        self.cfd.extend(delta.cfd.introduced.iter().cloned());
        self.cind.extend(delta.cind.introduced.iter().cloned());
    }

    fn sorted(&self) -> condep::validate::SigmaReport {
        let mut report = condep::validate::SigmaReport {
            cfd: self.cfd.clone(),
            cind: self.cind.clone(),
        };
        report.sort();
        report
    }
}

/// ≥ 240 random mutation sequences over a collision-heavy two-relation
/// workload, interleaving single mutations, `apply_deltas` batches and
/// `compact()` calls: after **every** step, the stream's materialized
/// violation set, an external delta consumer, and a from-scratch batch
/// `Validator::validate` of the current database must be identical — the
/// equivalence oracle for the delta engine — and every live [`TupleId`]
/// must still resolve to the same logical tuple it was allocated for
/// (with the id ⇄ position maps staying bijective on live tuples).
#[test]
fn stream_deltas_agree_with_batch_validation_on_random_sequences() {
    use condep::model::{RelId, TupleId};
    use condep::validate::{Mutation, Validator, ValidatorStream};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    let schema = Arc::new(
        Schema::builder()
            .relation(
                "r",
                &[
                    ("a", Domain::string()),
                    ("b", Domain::string()),
                    ("c", Domain::string()),
                    // `d` is in the key union ONLY through a conditioned
                    // CIND source role (no CFD indexes it): every
                    // resident tuple caches its `d` cell, but for
                    // non-triggering tuples no index key reaches it —
                    // compaction's cache re-rooting is exercised for
                    // real.
                    ("d", Domain::string()),
                ],
            )
            .relation("s", &[("x", Domain::string()), ("y", Domain::string())])
            .finish(),
    );
    let sigma_cfds = vec![
        // a → b: the workhorse wildcard FD.
        condep::cfd::NormalCfd::parse(
            &schema,
            "r",
            &["a"],
            condep::model::prow![_],
            "b",
            PValue::Any,
        )
        .unwrap(),
        // (a = k0) → c = v0: constant LHS and RHS.
        condep::cfd::NormalCfd::parse(
            &schema,
            "r",
            &["a"],
            condep::model::prow!["a0"],
            "c",
            PValue::Const(Value::str("v0")),
        )
        .unwrap(),
        // (a, b) → c: a wider key sharing no group with a → b.
        condep::cfd::NormalCfd::parse(
            &schema,
            "r",
            &["a", "b"],
            condep::model::prow![_, _],
            "c",
            PValue::Any,
        )
        .unwrap(),
        // ∅ → c: global agreement — every tuple in one key group, the
        // worst case for pair-witness relabeling under swap deletions.
        condep::cfd::NormalCfd::parse(&schema, "r", &[], condep::model::prow![], "c", PValue::Any)
            .unwrap(),
    ];
    let sigma_cinds = vec![
        // r[a] ⊆ s[x].
        condep::cind::NormalCind::parse(&schema, "r", &["a"], &[], "s", &["x"], &[]).unwrap(),
        // r[b; c = v0] ⊆ s[y]: a conditioned source.
        condep::cind::NormalCind::parse(
            &schema,
            "r",
            &["b"],
            &[("c", Value::str("v0"))],
            "s",
            &["y"],
            &[],
        )
        .unwrap(),
        // s[y] ⊆ r[b]: the reverse direction, so s-side deletions orphan
        // nothing but r-side deletions orphan s tuples.
        condep::cind::NormalCind::parse(&schema, "s", &["y"], &[], "r", &["b"], &[]).unwrap(),
        // r[a] ⊆ r[b]: self-referential within one relation.
        condep::cind::NormalCind::parse(&schema, "r", &["a"], &[], "r", &["b"], &[]).unwrap(),
        // r[d; c = v0] ⊆ s[x]: the only constraint touching `d`, and a
        // conditioned one — a non-triggering tuple's `d` cell lives in
        // the row cache but in no index key.
        condep::cind::NormalCind::parse(
            &schema,
            "r",
            &["d"],
            &[("c", Value::str("v0"))],
            "s",
            &["x"],
            &[],
        )
        .unwrap(),
    ];

    let a_pool = ["a0", "a1", "a2"];
    let b_pool = ["b0", "b1", "a0"];
    let c_pool = ["v0", "v1"];
    // "a0" can find a target; "d7"/"d8" orphan when the condition fires
    // and otherwise sit in the row cache unreachable from any index key.
    let d_pool = ["a0", "d7", "d8"];
    let x_pool = ["a0", "a1", "a2", "z"];
    let y_pool = ["b0", "b1", "a0", "v0"];
    let r = RelId(0);
    let s = RelId(1);

    let mut mutations = 0usize;
    for seed in 0u64..240 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
        let pick = |rng: &mut StdRng, pool: &[&str]| Value::str(pool[rng.gen_range(0..pool.len())]);
        let random_tuple = |rng: &mut StdRng, rel: RelId| -> Tuple {
            if rel == r {
                Tuple::new(vec![
                    pick(rng, &a_pool),
                    pick(rng, &b_pool),
                    pick(rng, &c_pool),
                    pick(rng, &d_pool),
                ])
            } else {
                Tuple::new(vec![pick(rng, &x_pool), pick(rng, &y_pool)])
            }
        };

        // Random (possibly dirty) seed database.
        let mut db = Database::empty(schema.clone());
        for rel in [r, s] {
            let n = rng.gen_range(0..8usize);
            for _ in 0..n {
                let t = random_tuple(&mut rng, rel);
                db.insert(rel, t).unwrap();
            }
        }

        let validator = Validator::new(sigma_cfds.clone(), sigma_cinds.clone());
        let oracle = validator.clone();
        let (mut stream, initial) = ValidatorStream::new_validated(validator, db);
        assert_eq!(
            initial,
            oracle.validate_sorted(stream.db()),
            "seed {seed}: new_validated must report the batch state"
        );
        let mut shadow = ShadowReport::from_report(&initial);
        // Every (rel, TupleId) ever observed, with the tuple it was
        // allocated for: a live id must keep resolving to exactly that
        // tuple; a dead id must never resurrect as something else.
        let mut id_shadow: HashMap<(RelId, TupleId), Tuple> = HashMap::new();

        for step in 0..30 {
            let roll = rng.gen_range(0..12u32);
            if roll < 2 {
                // A buffered mutation window through the batched path:
                // same consumer rule, deltas in application order.
                let n = rng.gen_range(2..6usize);
                let mut muts = Vec::new();
                for _ in 0..n {
                    let rel = if rng.gen_bool(0.7) { r } else { s };
                    let len = stream.db().relation(rel).len();
                    match rng.gen_range(0..3u32) {
                        0 => muts.push(Mutation::Insert {
                            rel,
                            tuple: random_tuple(&mut rng, rel),
                        }),
                        1 if len > 0 => muts.push(Mutation::Delete {
                            rel,
                            tuple: stream
                                .db()
                                .relation(rel)
                                .get(rng.gen_range(0..len))
                                .unwrap()
                                .clone(),
                        }),
                        2 if len > 0 => muts.push(Mutation::Update {
                            rel,
                            old: stream
                                .db()
                                .relation(rel)
                                .get(rng.gen_range(0..len))
                                .unwrap()
                                .clone(),
                            new: random_tuple(&mut rng, rel),
                        }),
                        _ => {}
                    }
                }
                mutations += muts.len();
                let deltas = stream.apply_deltas(&muts).unwrap();
                for delta in &deltas {
                    shadow.apply(&oracle, delta);
                }
            } else if roll < 7 {
                let rel = if rng.gen_bool(0.7) { r } else { s };
                let t = random_tuple(&mut rng, rel);
                let delta = stream.insert_tuple(rel, t).unwrap();
                shadow.apply(&oracle, &delta);
                mutations += 1;
            } else if roll < 10 {
                let rel = if rng.gen_bool(0.7) { r } else { s };
                let len = stream.db().relation(rel).len();
                if len == 0 {
                    continue;
                }
                let t = stream
                    .db()
                    .relation(rel)
                    .get(rng.gen_range(0..len))
                    .unwrap()
                    .clone();
                let delta = stream.delete_tuple(rel, &t).expect("tuple is present");
                shadow.apply(&oracle, &delta);
                mutations += 1;
            } else {
                let rel = if rng.gen_bool(0.7) { r } else { s };
                let len = stream.db().relation(rel).len();
                if len == 0 {
                    continue;
                }
                let old = stream
                    .db()
                    .relation(rel)
                    .get(rng.gen_range(0..len))
                    .unwrap()
                    .clone();
                let new = random_tuple(&mut rng, rel);
                let (del, ins) = stream
                    .update_tuple(rel, &old, new)
                    .unwrap()
                    .expect("tuple is present");
                shadow.apply(&oracle, &del);
                shadow.apply(&oracle, &ins);
                mutations += 1;
            }
            if step % 9 == 4 {
                // Periodic full compaction (index key groups + interner
                // + id maps) must be invisible to every invariant below.
                let before = stream.current_report();
                stream.compact();
                assert_eq!(
                    stream.current_report(),
                    before,
                    "seed {seed} step {step}: compaction disturbed the live state"
                );
            }
            let batch = oracle.validate_sorted(stream.db());
            assert_eq!(
                stream.current_report(),
                batch,
                "seed {seed} step {step}: stream live state diverged from batch"
            );
            assert_eq!(
                shadow.sorted(),
                batch,
                "seed {seed} step {step}: delta consumer diverged from batch"
            );
            // The id oracle: live positions and ids are in bijection,
            // newborn ids are registered, and every id ever seen either
            // still resolves to its original tuple or is dead for good.
            for rel in [r, s] {
                let inst = stream.db().relation(rel);
                for pos in 0..inst.len() {
                    let id = stream
                        .tuple_id_at(rel, pos)
                        .expect("every live position carries an id");
                    assert_eq!(
                        stream.position_of(rel, id),
                        Some(pos),
                        "seed {seed} step {step}: id map lost its bijection"
                    );
                    let t = inst.get(pos).unwrap();
                    match id_shadow.entry((rel, id)) {
                        std::collections::hash_map::Entry::Occupied(e) => assert_eq!(
                            e.get(),
                            t,
                            "seed {seed} step {step}: TupleId {id:?} re-resolved to a \
                             different logical tuple"
                        ),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(t.clone());
                        }
                    }
                }
            }
            for ((rel, id), expected) in &id_shadow {
                if let Some(resident) = stream.tuple_by_id(*rel, *id) {
                    assert_eq!(
                        resident, expected,
                        "seed {seed} step {step}: a dead TupleId resurrected"
                    );
                }
            }
        }
    }
    assert!(
        mutations >= 5000,
        "sweep too small: only {mutations} mutations checked"
    );
}

/// ≥ 240 random mutation sequences over a **redundant** Σ — duplicate
/// rows, subsumable rows (in both orders), and permuted-condition CIND
/// duplicates — run through two streams in lockstep: one compiled with
/// the exact Σ cover ([`Validator::new`]) and one without any cover pass
/// ([`Validator::new_uncovered`]). After the seed validation and after
/// every mutation and compaction, the two reports must be
/// **byte-identical** in the caller's original Σ index space: the cover
/// is an invisible compile-time optimization, never a semantic change.
#[test]
fn cover_compiled_stream_matches_uncovered_on_random_sequences() {
    use condep::model::RelId;
    use condep::validate::{Mutation, Validator, ValidatorStream};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let schema = Arc::new(
        Schema::builder()
            .relation(
                "r",
                &[
                    ("a", Domain::string()),
                    ("b", Domain::string()),
                    ("c", Domain::string()),
                ],
            )
            .relation("s", &[("x", Domain::string()), ("y", Domain::string())])
            .finish(),
    );
    let cfd = |lhs: &[&str], pat: condep::model::PatternRow, rhs: &str, rpat: PValue| {
        condep::cfd::NormalCfd::parse(&schema, "r", lhs, pat, rhs, rpat).unwrap()
    };
    // A deliberately redundant tableau, in an order that exercises every
    // exact-tier path: a specific row *before* its general subsumer
    // (the newcomer swallows it), a specific row *after* one (it
    // attaches), equal-pattern duplicates (earliest index wins), a
    // wildcard-RHS row next to a constant-RHS sibling (separate
    // buckets), and representatives that are not at index 0.
    let sigma_cfds = vec![
        /* 0 */ cfd(&["a"], condep::model::prow!["a1"], "b", PValue::Any),
        /* 1 */ cfd(&["a"], condep::model::prow![_], "b", PValue::Any),
        /* 2 */ cfd(&["a"], condep::model::prow!["a0"], "b", PValue::Any),
        /* 3 */ cfd(&["a"], condep::model::prow![_], "b", PValue::Any),
        /* 4 */
        cfd(
            &["a"],
            condep::model::prow!["a0"],
            "c",
            PValue::Const(Value::str("v0")),
        ),
        /* 5 */
        cfd(
            &["a"],
            condep::model::prow!["a0"],
            "c",
            PValue::Const(Value::str("v0")),
        ),
        /* 6 */ cfd(&["a", "b"], condep::model::prow![_, "b0"], "c", PValue::Any),
        /* 7 */ cfd(&["a", "b"], condep::model::prow![_, _], "c", PValue::Any),
        /* 8 */ cfd(&[], condep::model::prow![], "c", PValue::Any),
        /* 9 */ cfd(&["a"], condep::model::prow![_], "c", PValue::Any),
    ];
    let sigma_cinds = vec![
        // r[a] ⊆ s[x], twice (payload-identical duplicate).
        condep::cind::NormalCind::parse(&schema, "r", &["a"], &[], "s", &["x"], &[]).unwrap(),
        condep::cind::NormalCind::parse(&schema, "r", &["a"], &[], "s", &["x"], &[]).unwrap(),
        // r[b; c = v0, a = a0] ⊆ s[y] with the Xp pairs permuted — the
        // same dependency up to condition ordering.
        condep::cind::NormalCind::parse(
            &schema,
            "r",
            &["b"],
            &[("c", Value::str("v0")), ("a", Value::str("a0"))],
            "s",
            &["y"],
            &[],
        )
        .unwrap(),
        condep::cind::NormalCind::parse(
            &schema,
            "r",
            &["b"],
            &[("a", Value::str("a0")), ("c", Value::str("v0"))],
            "s",
            &["y"],
            &[],
        )
        .unwrap(),
        // s[y] ⊆ r[b]: reverse direction, not redundant.
        condep::cind::NormalCind::parse(&schema, "s", &["y"], &[], "r", &["b"], &[]).unwrap(),
    ];

    // The cover must have actually shrunk the compiled suite — otherwise
    // this test degenerates into comparing a validator with itself.
    let probe = Validator::new(sigma_cfds.clone(), sigma_cinds.clone());
    assert_eq!(
        probe.cover_stats().cfd_merged,
        5,
        "{:?}",
        probe.cover_stats()
    );
    assert_eq!(
        probe.cover_stats().cind_merged,
        2,
        "{:?}",
        probe.cover_stats()
    );

    let a_pool = ["a0", "a1", "a2"];
    let b_pool = ["b0", "b1", "a0"];
    let c_pool = ["v0", "v1"];
    let x_pool = ["a0", "a1", "z"];
    let y_pool = ["b0", "b1", "v0"];
    let r = RelId(0);
    let s = RelId(1);

    // Within one delta the two compiles may emit the same violations in
    // different orders (fan-out order vs. member order); equality is up
    // to the canonical report order.
    let norm = |mut d: condep::validate::SigmaDelta| {
        d.cfd.introduced.sort_by_key(|(i, v)| (*i, v.sort_key()));
        d.cfd.resolved.sort_by_key(|(i, v)| (*i, v.sort_key()));
        d.cind.introduced.sort_by_key(|(i, v)| (*i, v.tuple));
        d.cind.resolved.sort_by_key(|(i, v)| (*i, v.tuple));
        d
    };

    let mut mutations = 0usize;
    for seed in 0u64..240 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xc2b2_ae35));
        let pick = |rng: &mut StdRng, pool: &[&str]| Value::str(pool[rng.gen_range(0..pool.len())]);
        let random_tuple = |rng: &mut StdRng, rel: RelId| -> Tuple {
            if rel == r {
                Tuple::new(vec![
                    pick(rng, &a_pool),
                    pick(rng, &b_pool),
                    pick(rng, &c_pool),
                ])
            } else {
                Tuple::new(vec![pick(rng, &x_pool), pick(rng, &y_pool)])
            }
        };

        let mut db = Database::empty(schema.clone());
        for rel in [r, s] {
            let n = rng.gen_range(0..8usize);
            for _ in 0..n {
                let t = random_tuple(&mut rng, rel);
                db.insert(rel, t).unwrap();
            }
        }

        // Batch equivalence on the random seed database.
        let covered = Validator::new(sigma_cfds.clone(), sigma_cinds.clone());
        let uncovered = Validator::new_uncovered(sigma_cfds.clone(), sigma_cinds.clone());
        assert!(covered.compiled_cfd_members() < uncovered.compiled_cfd_members());
        assert_eq!(
            covered.validate_sorted(&db),
            uncovered.validate_sorted(&db),
            "seed {seed}: batch reports diverged on the seed database"
        );

        // Stream equivalence under a shared mutation sequence.
        let (mut cov_stream, cov_initial) = ValidatorStream::new_validated(covered, db.clone());
        let (mut unc_stream, unc_initial) = ValidatorStream::new_validated(uncovered, db);
        assert_eq!(cov_initial, unc_initial, "seed {seed}: initial reports");

        for step in 0..20 {
            let roll = rng.gen_range(0..10u32);
            if roll < 2 {
                let n = rng.gen_range(2..6usize);
                let mut muts = Vec::new();
                for _ in 0..n {
                    let rel = if rng.gen_bool(0.7) { r } else { s };
                    let len = cov_stream.db().relation(rel).len();
                    match rng.gen_range(0..3u32) {
                        0 => muts.push(Mutation::Insert {
                            rel,
                            tuple: random_tuple(&mut rng, rel),
                        }),
                        1 if len > 0 => muts.push(Mutation::Delete {
                            rel,
                            tuple: cov_stream
                                .db()
                                .relation(rel)
                                .get(rng.gen_range(0..len))
                                .unwrap()
                                .clone(),
                        }),
                        2 if len > 0 => muts.push(Mutation::Update {
                            rel,
                            old: cov_stream
                                .db()
                                .relation(rel)
                                .get(rng.gen_range(0..len))
                                .unwrap()
                                .clone(),
                            new: random_tuple(&mut rng, rel),
                        }),
                        _ => {}
                    }
                }
                mutations += muts.len();
                let cov_deltas = cov_stream.apply_deltas(&muts).unwrap();
                let unc_deltas = unc_stream.apply_deltas(&muts).unwrap();
                assert_eq!(
                    cov_deltas.len(),
                    unc_deltas.len(),
                    "seed {seed} step {step}: batched delta counts diverged"
                );
                for (cd, ud) in cov_deltas.into_iter().zip(unc_deltas) {
                    assert_eq!(
                        norm(cd),
                        norm(ud),
                        "seed {seed} step {step}: batched deltas diverged"
                    );
                }
            } else if roll < 6 {
                let rel = if rng.gen_bool(0.7) { r } else { s };
                let t = random_tuple(&mut rng, rel);
                let cov_delta = cov_stream.insert_tuple(rel, t.clone()).unwrap();
                let unc_delta = unc_stream.insert_tuple(rel, t).unwrap();
                assert_eq!(
                    norm(cov_delta),
                    norm(unc_delta),
                    "seed {seed} step {step}: insert deltas diverged"
                );
                mutations += 1;
            } else {
                let rel = if rng.gen_bool(0.7) { r } else { s };
                let len = cov_stream.db().relation(rel).len();
                if len == 0 {
                    continue;
                }
                let t = cov_stream
                    .db()
                    .relation(rel)
                    .get(rng.gen_range(0..len))
                    .unwrap()
                    .clone();
                let cov_delta = cov_stream.delete_tuple(rel, &t).expect("tuple is present");
                let unc_delta = unc_stream.delete_tuple(rel, &t).expect("tuple is present");
                assert_eq!(
                    norm(cov_delta),
                    norm(unc_delta),
                    "seed {seed} step {step}: delete deltas diverged"
                );
                mutations += 1;
            }
            if step % 7 == 3 {
                cov_stream.compact();
                unc_stream.compact();
            }
            assert_eq!(
                cov_stream.current_report(),
                unc_stream.current_report(),
                "seed {seed} step {step}: covered stream diverged from uncovered"
            );
        }
    }
    assert!(
        mutations >= 3000,
        "sweep too small: only {mutations} mutations checked"
    );
}
