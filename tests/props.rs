//! Property-based tests (proptest) on the core data structures and
//! invariants.

use condep::cind::normalize::normalize;
use condep::cind::satisfy;
use condep::model::{Database, Domain, PValue, PatternRow, Relation, Schema, Tuple, Value};
use condep::sat::{Cnf, SolveResult, Solver, Var};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------- values

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::bool),
        (-20i64..20).prop_map(Value::int),
        "[a-e]{1,3}".prop_map(Value::str),
    ]
}

fn arb_pvalue() -> impl Strategy<Value = PValue> {
    prop_oneof![Just(PValue::Any), arb_value().prop_map(PValue::Const),]
}

proptest! {
    /// The match order ≍: wildcards match everything; constants match
    /// exactly themselves.
    #[test]
    fn pvalue_match_order(v in arb_value(), p in arb_pvalue()) {
        match &p {
            PValue::Any => prop_assert!(p.matches(&v)),
            PValue::Const(c) => prop_assert_eq!(p.matches(&v), *c == v),
        }
    }

    /// Subsumption is reflexive and transitive through `Any`.
    #[test]
    fn pvalue_subsumption(p in arb_pvalue()) {
        prop_assert!(p.subsumed_by(&p));
        prop_assert!(p.subsumed_by(&PValue::Any));
        if p.is_const() {
            prop_assert!(!PValue::Any.subsumed_by(&p));
        }
    }

    /// Value ordering is a strict total order consistent with equality.
    #[test]
    fn value_total_order(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Equal => prop_assert_eq!(&a, &b),
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
        }
    }
}

// ------------------------------------------------------------- relations

proptest! {
    /// Relations implement set semantics: insertion order preserved,
    /// duplicates dropped, equality order-insensitive.
    #[test]
    fn relation_set_semantics(rows in proptest::collection::vec(
        proptest::collection::vec(arb_value(), 2..=2), 0..12)
    ) {
        let tuples: Vec<Tuple> = rows.iter().map(|r| Tuple::new(r.clone())).collect();
        let rel: Relation = tuples.iter().cloned().collect();
        // Every inserted tuple is present.
        for t in &tuples {
            prop_assert!(rel.contains(t));
        }
        // No duplicates survive.
        let mut seen = std::collections::HashSet::new();
        for t in rel.iter() {
            prop_assert!(seen.insert(t.clone()));
        }
        // Reversed insertion yields an equal relation.
        let rev: Relation = tuples.into_iter().rev().collect();
        prop_assert_eq!(rel, rev);
    }

    /// Pattern rows match a tuple iff every constant cell agrees.
    #[test]
    fn pattern_row_matching(
        cells in proptest::collection::vec((arb_value(), any::<bool>()), 1..5)
    ) {
        let tuple = Tuple::new(cells.iter().map(|(v, _)| v.clone()));
        let attrs: Vec<condep::model::AttrId> =
            (0..cells.len() as u32).map(condep::model::AttrId).collect();
        // A row that copies the tuple where const, wildcards elsewhere,
        // always matches.
        let row = PatternRow::new(cells.iter().map(|(v, wild)| {
            if *wild { PValue::Any } else { PValue::Const(v.clone()) }
        }));
        prop_assert!(row.matches_tuple(&tuple, &attrs));
    }
}

// ------------------------------------------------------------------- SAT

fn arb_cnf() -> impl Strategy<Value = (u32, Vec<Vec<(u32, bool)>>)> {
    (2u32..7).prop_flat_map(|nvars| {
        let clause = proptest::collection::vec((0..nvars, any::<bool>()), 1..4);
        (Just(nvars), proptest::collection::vec(clause, 0..14))
    })
}

proptest! {
    /// The DPLL solver agrees with brute force on small formulas, and
    /// returned models really satisfy.
    #[test]
    fn sat_solver_correct((nvars, clauses) in arb_cnf()) {
        let mut cnf = Cnf::new();
        let vars = cnf.fresh_vars(nvars as usize);
        for clause in &clauses {
            cnf.add_clause(clause.iter().map(|(v, pos)| {
                if *pos { vars[*v as usize].pos() } else { vars[*v as usize].neg() }
            }));
        }
        let brute = (0u64..(1 << nvars)).any(|bits| {
            let assignment: Vec<bool> =
                (0..nvars as usize).map(|i| bits >> i & 1 == 1).collect();
            cnf.eval(&assignment)
        });
        match Solver::new(&cnf).solve() {
            SolveResult::Sat(model) => {
                prop_assert!(brute, "solver SAT but brute force UNSAT");
                prop_assert!(cnf.eval(&model), "model does not satisfy");
            }
            SolveResult::Unsat => prop_assert!(!brute, "solver UNSAT but brute force SAT"),
            SolveResult::Unknown => prop_assert!(false, "no budget configured"),
        }
    }

    /// Exactly-one encodings admit exactly the one-hot models.
    #[test]
    fn exactly_one_models(n in 1usize..6) {
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = cnf.fresh_vars(n);
        let lits: Vec<_> = vars.iter().map(|v| v.pos()).collect();
        cnf.add_exactly_one(&lits);
        for bits in 0u64..(1 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let ones = assignment.iter().filter(|b| **b).count();
            prop_assert_eq!(cnf.eval(&assignment), ones == 1);
        }
    }
}

// ---------------------------------------------- CIND semantics invariants

/// A tiny two-relation schema for semantic properties.
fn two_rel_schema() -> Arc<Schema> {
    Arc::new(
        Schema::builder()
            .relation(
                "src",
                &[
                    ("a", Domain::string()),
                    ("b", Domain::finite_strs(&["p", "q"])),
                ],
            )
            .relation(
                "dst",
                &[
                    ("c", Domain::string()),
                    ("d", Domain::finite_strs(&["p", "q"])),
                ],
            )
            .finish(),
    )
}

fn arb_small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::str("v0")),
        Just(Value::str("v1")),
        Just(Value::str("v2")),
    ]
}

fn arb_fin() -> impl Strategy<Value = Value> {
    prop_oneof![Just(Value::str("p")), Just(Value::str("q"))]
}

fn arb_db() -> impl Strategy<Value = Database> {
    let src_rows = proptest::collection::vec((arb_small_value(), arb_fin()), 0..6);
    let dst_rows = proptest::collection::vec((arb_small_value(), arb_fin()), 0..6);
    (src_rows, dst_rows).prop_map(|(srcs, dsts)| {
        let schema = two_rel_schema();
        let mut db = Database::empty(schema.clone());
        let src = schema.rel_id("src").unwrap();
        let dst = schema.rel_id("dst").unwrap();
        for (a, b) in srcs {
            db.insert(src, Tuple::new([a, b])).unwrap();
        }
        for (c, d) in dsts {
            db.insert(dst, Tuple::new([c, d])).unwrap();
        }
        db
    })
}

fn arb_cind() -> impl Strategy<Value = condep::cind::Cind> {
    // Tableau rows over X=[a→c], Xp=[b], Yp=[d]: cells (x, xp ‖ y, yp)
    // with tp[X] = tp[Y] enforced by construction.
    let cell_x = prop_oneof![
        Just(None),
        Just(Some(Value::str("v0"))),
        Just(Some(Value::str("v1"))),
    ];
    let cell_f = prop_oneof![
        Just(None),
        Just(Some(Value::str("p"))),
        Just(Some(Value::str("q"))),
    ];
    proptest::collection::vec((cell_x, cell_f.clone(), cell_f), 1..4).prop_map(|rows| {
        let schema = two_rel_schema();
        let tableau = rows
            .into_iter()
            .map(|(x, xp, yp)| {
                let to_cell = |v: Option<Value>| match v {
                    None => PValue::Any,
                    Some(v) => PValue::Const(v),
                };
                PatternRow::new(vec![
                    to_cell(x.clone()),
                    to_cell(xp),
                    to_cell(x),
                    to_cell(yp),
                ])
            })
            .collect();
        condep::cind::Cind::parse(
            &schema,
            "src",
            &["a"],
            &["b"],
            "dst",
            &["c"],
            &["d"],
            tableau,
        )
        .unwrap()
    })
}

proptest! {
    /// Proposition 3.1: the normalized set is equivalent to the original
    /// CIND on arbitrary databases.
    #[test]
    fn normalization_preserves_satisfaction(db in arb_db(), cind in arb_cind()) {
        let direct = satisfy::satisfies_general_direct(&db, &cind);
        let via_normal = normalize(&cind)
            .iter()
            .all(|n| satisfy::satisfies_normal(&db, n));
        prop_assert_eq!(direct, via_normal);
    }

    /// The indexed checker agrees with the naive semantics.
    #[test]
    fn indexed_checker_agrees_with_oracle(db in arb_db(), cind in arb_cind()) {
        prop_assert_eq!(
            satisfy::satisfies(&db, &cind),
            satisfy::satisfies_general_direct(&db, &cind)
        );
    }

    /// Violations are exactly the triggered-but-unmatched tuples: the
    /// database satisfies a normal CIND iff no violations are reported.
    #[test]
    fn violations_iff_not_satisfied(db in arb_db(), cind in arb_cind()) {
        for n in normalize(&cind) {
            let violations = condep::cind::find_violations(&db, &n);
            prop_assert_eq!(
                violations.is_empty(),
                satisfy::satisfies_normal(&db, &n)
            );
            // The plan-based detector agrees.
            let via_plan = condep::cind::violations::find_violations_via_plan(&db, &n);
            prop_assert_eq!(violations.is_empty(), via_plan.is_empty());
        }
    }

    /// Monotonicity: adding tuples to the *target* relation never breaks
    /// a satisfied CIND.
    #[test]
    fn target_growth_is_monotone(
        db in arb_db(),
        cind in arb_cind(),
        extra_c in arb_small_value(),
        extra_d in arb_fin(),
    ) {
        let normal = normalize(&cind);
        let satisfied_before: Vec<bool> = normal
            .iter()
            .map(|n| satisfy::satisfies_normal(&db, n))
            .collect();
        let mut bigger = db.clone();
        let dst = bigger.schema().rel_id("dst").unwrap();
        bigger.insert(dst, Tuple::new([extra_c, extra_d])).unwrap();
        for (n, before) in normal.iter().zip(satisfied_before) {
            if before {
                prop_assert!(satisfy::satisfies_normal(&bigger, n));
            }
        }
    }
}

// ----------------------------------------- batched validator equivalence

/// The per-constraint reference detectors as a sorted report.
fn reference_report(
    v: &condep::validate::Validator,
    db: &Database,
) -> condep::validate::SigmaReport {
    let mut expected = condep::validate::SigmaReport::default();
    for (i, cfd) in v.cfds().iter().enumerate() {
        for viol in condep::cfd::find_violations(db, cfd) {
            expected.cfd.push((i, viol));
        }
    }
    for (i, cind) in v.cinds().iter().enumerate() {
        for viol in condep::cind::find_violations(db, cind) {
            expected.cind.push((i, viol));
        }
    }
    expected.sort();
    expected
}

/// Checks one (schema, Σ, database) case: the batched `Validator` must
/// agree with the per-CFD/per-CIND detectors — as sets of violations,
/// and (after sorting) witness for witness — and `satisfies` must agree
/// with `satisfies_normal` across the set.
fn assert_validator_matches_reference(
    cfds: &[condep::cfd::NormalCfd],
    cinds: &[condep::cind::NormalCind],
    db: &Database,
    context: &str,
) {
    let v = condep::validate::Validator::new(cfds.to_vec(), cinds.to_vec());
    let batched = v.validate_sorted(db);
    let expected = reference_report(&v, db);
    assert_eq!(batched, expected, "batched ≠ per-constraint on {context}");
    let per_constraint_clean = cfds
        .iter()
        .all(|n| condep::cfd::satisfy::satisfies_normal(db, n))
        && cinds.iter().all(|n| satisfy::satisfies_normal(db, n));
    assert_eq!(
        v.satisfies(db),
        per_constraint_clean,
        "satisfies disagrees on {context}"
    );
    assert_eq!(batched.is_empty(), per_constraint_clean, "{context}");
}

/// ≥ 100 random (schema, Σ, instance) cases from the Section 6
/// generators: the batched validator is indistinguishable from the
/// per-constraint detectors on every one of them.
#[test]
fn validator_agrees_with_per_constraint_detectors_on_random_workloads() {
    use condep::gen::{
        dirty_database, generate_sigma, random_schema, DirtyDataConfig, SchemaGenConfig,
        SigmaGenConfig,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut cases = 0;
    for seed in 0u64..120 {
        let schema = random_schema(
            &SchemaGenConfig {
                relations: 3,
                attrs_min: 2,
                attrs_max: 5,
                finite_ratio: 0.3,
                finite_dom_min: 2,
                finite_dom_max: 4,
            },
            &mut StdRng::seed_from_u64(seed),
        );
        let (cfds, cinds, witness) = generate_sigma(
            &schema,
            &SigmaGenConfig {
                cardinality: 12,
                consistent: true,
                ..SigmaGenConfig::default()
            },
            &mut StdRng::seed_from_u64(seed ^ 0xdead_beef),
        );
        let Some(witness) = witness else { continue };
        // A dirty instance (clean clones of the witness + injected
        // violations) and the tiny witness database itself.
        let dirty = dirty_database(
            &schema,
            &cfds,
            &cinds,
            &witness,
            &DirtyDataConfig {
                tuples_per_relation: 40,
                violations_per_relation: 4,
            },
            &mut StdRng::seed_from_u64(seed.wrapping_mul(31)),
        );
        assert_validator_matches_reference(
            &cfds,
            &cinds,
            &dirty.db,
            &format!("seed {seed} (dirty instance)"),
        );
        assert_validator_matches_reference(
            &cfds,
            &cinds,
            &witness.database(&schema),
            &format!("seed {seed} (witness instance)"),
        );
        cases += 2;
    }
    assert!(
        cases >= 100,
        "only {cases} cases ran — below the 100-case bar"
    );
}

// Focused randomized strategy for the tricky CFD shapes: wildcard-RHS
// pair witnesses and the empty-LHS (global agreement) edge case.
proptest! {
    #[test]
    fn validator_handles_wildcard_rhs_and_empty_lhs(
        rows in proptest::collection::vec((arb_small_value(), arb_fin()), 0..10),
        lhs_wild in any::<bool>(),
    ) {
        use condep::cfd::NormalCfd;
        use condep::model::PValue as P;
        let schema = two_rel_schema();
        let mut db = Database::empty(schema.clone());
        let src = schema.rel_id("src").unwrap();
        for (a, b) in rows {
            db.insert(src, Tuple::new([a, b])).unwrap();
        }
        // Wildcard-RHS FD src: a → b, empty-LHS variants on both
        // columns, and a constant-LHS row — all over the same relation.
        let cfds = vec![
            NormalCfd::parse(&schema, "src", &["a"], PatternRow::all_any(1), "b", P::Any)
                .unwrap(),
            NormalCfd::parse(&schema, "src", &[], PatternRow::all_any(0), "b", P::Any)
                .unwrap(),
            NormalCfd::parse(&schema, "src", &[], PatternRow::all_any(0), "a", P::Any)
                .unwrap(),
            NormalCfd::parse(
                &schema,
                "src",
                &["a"],
                if lhs_wild {
                    PatternRow::all_any(1)
                } else {
                    PatternRow::new([P::constant("v0")])
                },
                "b",
                P::constant("p"),
            )
            .unwrap(),
        ];
        let v = condep::validate::Validator::new(cfds.clone(), vec![]);
        let batched = v.validate_sorted(&db);
        let expected = reference_report(&v, &db);
        prop_assert_eq!(&batched, &expected);
        // Wildcard-RHS pair witnesses must match exactly, not just as
        // counts: same (left, right) positions.
        for ((bi, bv), (ei, ev)) in batched.cfd.iter().zip(expected.cfd.iter()) {
            prop_assert_eq!(bi, ei);
            prop_assert_eq!(bv, ev);
        }
    }
}

// ------------------------------------------------------- chase invariants

proptest! {
    /// The bounded chase always terminates and, when defined, its
    /// fresh instantiation satisfies the constraint set it was chased
    /// with (Theorem 5.1's certificate).
    #[test]
    fn chase_terminates_and_certifies(seed in 0u64..200) {
        use condep::chase::{chase, ChaseConfig, ChaseOutcome, TemplateDb};
        use condep::chase::ops::seed_tuple;
        use condep::gen::{generate_sigma, random_schema, SchemaGenConfig, SigmaGenConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let schema = random_schema(
            &SchemaGenConfig {
                relations: 3,
                attrs_min: 2,
                attrs_max: 4,
                finite_ratio: 0.3,
                finite_dom_min: 2,
                finite_dom_max: 3,
            },
            &mut StdRng::seed_from_u64(seed),
        );
        let (cfds, cinds, _) = generate_sigma(
            &schema,
            &SigmaGenConfig {
                cardinality: 10,
                consistent: false,
                ..SigmaGenConfig::default()
            },
            &mut StdRng::seed_from_u64(seed + 1),
        );
        let mut db = TemplateDb::empty(schema.clone());
        seed_tuple(&mut db, condep::model::RelId(0));
        let cfg = ChaseConfig {
            tuple_cap: 200,
            ..ChaseConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed + 2);
        // Termination: the call returns (no hang); definedness varies.
        match chase(db, &cfds, &cinds, &cfg, &mut rng) {
            ChaseOutcome::Defined(template) => {
                let consts: Vec<Value> = {
                    let sigma = condep::consistency::ConstraintSet::new(
                        schema.clone(), cfds.clone(), cinds.clone());
                    sigma.all_constants()
                };
                if let Some(instance) = template.instantiate_fresh(&consts) {
                    prop_assert!(condep::cfd::satisfy::satisfies_all(&instance, &cfds));
                    prop_assert!(satisfy::satisfies_all(&instance, &cinds));
                }
            }
            ChaseOutcome::Undefined(_) => {}
        }
    }
}
