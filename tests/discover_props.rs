//! Property tests for the discovery subsystem's contract:
//!
//! * **soundness at confidence 1.0** — every member of the Σ′ mined
//!   from a database at the strict default threshold is *satisfied* by
//!   that database (constant rows, variable rows and CINDs alike);
//! * **recovery** — on data generated from a planted Σ, the mined Σ′
//!   implies every planted dependency (exact implication checkers);
//! * **determinism** — the same database and config produce the same
//!   ranked output, run to run.

use condep::discover::{discover, DiscoveryConfig};
use condep::gen::{clean_database_with_hidden_sigma, PlantedSigmaConfig};
use condep::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

fn planted_config(seed: u64) -> PlantedSigmaConfig {
    // Derive small-but-varied shapes from the seed.
    PlantedSigmaConfig {
        fd_pairs: 1 + (seed % 3) as usize,
        pair_cardinality: 3 + (seed % 5) as usize,
        constant_rows_per_pair: 1 + (seed % 3) as usize,
        cind_count: (seed % 2) as usize,
        tuples: 120 + (seed % 7) as usize * 40,
        ..PlantedSigmaConfig::default()
    }
}

proptest! {
    #[test]
    fn strict_discovery_is_sound(seed in 0u64..10_000) {
        let cfg = planted_config(seed);
        let planted = clean_database_with_hidden_sigma(
            &cfg,
            &mut rand::rngs::StdRng::seed_from_u64(seed),
        );
        let found = discover(
            &planted.db,
            &DiscoveryConfig {
                min_support: 2,
                ..DiscoveryConfig::default()
            },
        );
        // Confidence 1.0 throughout, and everything holds on the data.
        for d in &found.cfds {
            prop_assert!((d.confidence - 1.0).abs() < 1e-12);
            prop_assert!(
                condep::cfd::satisfy::satisfies_normal(&planted.db, &d.cfd),
                "unsound CFD (seed {}): {}",
                seed,
                d.cfd.display(planted.db.schema())
            );
        }
        for d in &found.cinds {
            prop_assert!((d.confidence - 1.0).abs() < 1e-12);
            prop_assert!(
                condep::cind::satisfy::satisfies_normal(&planted.db, &d.cind),
                "unsound CIND (seed {}): {}",
                seed,
                d.cind.display(planted.db.schema())
            );
        }
        // The mined suite re-validates clean through the batched engine.
        let validator = Validator::new(found.cfds_normal(), found.cinds_normal());
        prop_assert!(validator.validate(&planted.db).is_empty());
    }

    #[test]
    fn recovered_sigma_implies_planted_sigma(seed in 0u64..2_000) {
        let cfg = planted_config(seed);
        let planted = clean_database_with_hidden_sigma(
            &cfg,
            &mut rand::rngs::StdRng::seed_from_u64(seed ^ 0x9e37_79b9),
        );
        let found = discover(
            &planted.db,
            &DiscoveryConfig {
                min_support: 2,
                ..DiscoveryConfig::default()
            },
        );
        let schema = planted.db.schema();
        let sigma_cfds = found.cfds_normal();
        for cfd in &planted.cfds {
            prop_assert_eq!(
                condep::cfd::implication::implies(schema, &sigma_cfds, cfd, condep::cfd::implication::ImplicationConfig::unbounded()),
                condep::cfd::implication::Implication::Implied,
                "planted CFD not implied (seed {}): {}",
                seed,
                cfd.display(schema)
            );
        }
        let sigma_cinds = found.cinds_normal();
        for cind in &planted.cinds {
            prop_assert_eq!(
                condep::cind::implication::implies(
                    schema,
                    &sigma_cinds,
                    cind,
                    condep::cind::implication::ImplicationConfig::default(),
                ),
                condep::cind::implication::Implication::Implied,
                "planted CIND not implied (seed {}): {}",
                seed,
                cind.display(schema)
            );
        }
    }

    #[test]
    fn discovery_is_deterministic(seed in 0u64..5_000) {
        let cfg = planted_config(seed);
        let planted = clean_database_with_hidden_sigma(
            &cfg,
            &mut rand::rngs::StdRng::seed_from_u64(seed ^ 0x1357_2468),
        );
        let config = DiscoveryConfig {
            min_support: 2,
            ..DiscoveryConfig::default()
        };
        let a = discover(&planted.db, &config);
        let b = discover(&planted.db, &config);
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.cfds.len(), b.cfds.len());
        prop_assert_eq!(a.cinds.len(), b.cinds.len());
        for (x, y) in a.cfds.iter().zip(&b.cfds) {
            prop_assert_eq!(&x.cfd, &y.cfd);
            prop_assert_eq!(x.support, y.support);
            prop_assert_eq!(x.confidence, y.confidence);
        }
        for (x, y) in a.cinds.iter().zip(&b.cinds) {
            prop_assert_eq!(&x.cind, &y.cind);
            prop_assert_eq!(x.support, y.support);
            prop_assert_eq!(x.confidence, y.confidence);
        }
    }
}
