//! An unsatisfiable Σ through every public entry point. The paper's
//! Example 3.2 cycle (no nonempty instance exists) must never make the
//! stack panic, loop, or — worst of all — report a database "clean":
//!
//! * `Validator::new` stays permissive (it validates; any nonempty db
//!   shows violations) while surfacing the cheap lint tier;
//! * `Validator::strict` refuses the Σ up front with a minimal core;
//! * `QualitySuite` exposes the Unsat verdict and refuses `repair`;
//! * the `repair()` engine pre-flights the same gate, so it can never
//!   chase an unreachable fixpoint.

use condep::cfd::fixtures::example_3_2;
use condep::prelude::*;
use condep::repair::repair;
use condep::report::QualitySuite;
use condep::validate::SigmaVerdict;

/// One nonempty instance over Example 3.2's schema: r(a=true, b="b2").
fn nonempty_db(schema: &std::sync::Arc<Schema>) -> Database {
    let mut db = Database::empty(schema.clone());
    let rel = schema.rel_id("r").expect("fixture relation");
    db.insert(rel, Tuple::new([Value::bool(true), Value::from("b2")]))
        .expect("arity matches");
    db
}

#[test]
fn plain_validator_accepts_unsat_sigma_but_never_reports_clean() {
    let (schema, cfds) = example_3_2();
    // Permissive construction must not panic or loop…
    let validator = Validator::new(cfds, Vec::new());
    // …and because Σ is unsatisfiable, EVERY nonempty database has at
    // least one violation. "Clean" here would be a soundness bug.
    let violations = validator.validate(&nonempty_db(&schema));
    assert!(
        !violations.is_empty(),
        "an unsatisfiable sigma reported a nonempty database clean"
    );
}

#[test]
fn strict_validator_refuses_with_a_minimal_core() {
    let (schema, cfds) = example_3_2();
    let err = Validator::strict(&schema, cfds, Vec::new())
        .expect_err("Example 3.2 is provably unsatisfiable");
    // All four CFDs participate: dropping any one breaks the cycle.
    assert_eq!(err.core, vec![0, 1, 2, 3]);
    let msg = err.to_string();
    assert!(msg.contains("unsatisfiable"), "unhelpful error: {msg}");
}

#[test]
fn validator_analysis_reports_unsat_with_the_exact_core() {
    let (schema, cfds) = example_3_2();
    let validator = Validator::new(cfds, Vec::new());
    let analysis = validator.analysis(&schema);
    match analysis.verdict {
        SigmaVerdict::Unsat(core) => assert_eq!(core.cfds, vec![0, 1, 2, 3]),
        other => panic!("expected Unsat, got {other:?}"),
    }
}

#[test]
fn quality_suite_surfaces_the_verdict_and_refuses_repair() {
    let (schema, cfds) = example_3_2();
    let suite = QualitySuite::from_normal(schema.clone(), cfds, Vec::new());
    assert!(suite.analysis().verdict.is_unsat());

    // The report side still works (and is not clean)…
    let report = suite.check(&nonempty_db(&schema));
    assert!(!report.summary.is_clean());

    // …but repair refuses up front instead of hunting a fixpoint that
    // cannot exist.
    let err = suite
        .repair(
            nonempty_db(&schema),
            &RepairCost::uniform(),
            &RepairBudget::default(),
        )
        .expect_err("repairing toward an unsatisfiable sigma must fail");
    assert_eq!(err.core, vec![0, 1, 2, 3]);
}

#[test]
fn repair_engine_preflights_the_unsat_gate() {
    let (schema, cfds) = example_3_2();
    let db = nonempty_db(&schema);
    let validator = Validator::new(cfds, Vec::new());
    let initial = validator.validate_sorted(&db);
    assert!(!initial.is_empty());
    let err = repair(
        validator,
        db,
        initial,
        &RepairCost::uniform(),
        &RepairBudget::default(),
    )
    .expect_err("the engine must refuse an unsatisfiable sigma");
    assert_eq!(err.core, vec![0, 1, 2, 3]);
}
