//! Randomized validation of the paper's theorems over generated inputs
//! (seeded, deterministic).

use condep::cind::implication::{
    implies, implies_exhaustive_finite, Implication, ImplicationConfig,
};
use condep::cind::normalize::normalize;
use condep::cind::witness::{build_witness_bounded, domains_compatible};
use condep::cind::{inference, satisfy, NormalCind};
use condep::consistency::ConstraintSet;
use condep::gen::{generate_sigma, random_schema, SchemaGenConfig, SigmaGenConfig};
use condep::model::{Domain, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn small_schema(seed: u64) -> Arc<Schema> {
    random_schema(
        &SchemaGenConfig {
            relations: 4,
            attrs_min: 2,
            attrs_max: 4,
            finite_ratio: 0.3,
            finite_dom_min: 2,
            finite_dom_max: 4,
        },
        &mut StdRng::seed_from_u64(seed),
    )
}

/// Theorem 3.2 on random CIND sets: the active-domain cross-product
/// witness always exists and satisfies Σ.
#[test]
fn theorem_3_2_on_random_cind_sets() {
    for seed in 0..25u64 {
        let schema = small_schema(seed);
        let (_, cinds, _) = generate_sigma(
            &schema,
            &SigmaGenConfig {
                cardinality: 24,
                cfd_fraction: 0.0, // CINDs only
                consistent: false, // arbitrary CINDs — still consistent!
                ..SigmaGenConfig::default()
            },
            &mut StdRng::seed_from_u64(seed + 1000),
        );
        // The generator guarantees the w.l.o.g. domain assumption.
        for c in &cinds {
            assert!(domains_compatible(&schema, c));
        }
        let db = build_witness_bounded(&schema, &cinds, 1 << 18)
            .expect("Theorem 3.2: CINDs are always consistent");
        assert!(!db.is_empty());
        assert!(
            satisfy::satisfies_all(&db, &cinds),
            "witness must satisfy Σ (seed {seed})"
        );
    }
}

/// Theorem 3.3 (soundness direction) on random inputs: rules applied to
/// satisfied premises yield satisfied conclusions.
#[test]
fn inference_rules_sound_on_random_witnesses() {
    for seed in 0..20u64 {
        let schema = small_schema(seed);
        let (_, cinds, _) = generate_sigma(
            &schema,
            &SigmaGenConfig {
                cardinality: 10,
                cfd_fraction: 0.0,
                consistent: false,
                ..SigmaGenConfig::default()
            },
            &mut StdRng::seed_from_u64(seed + 2000),
        );
        let Ok(db) = build_witness_bounded(&schema, &cinds, 1 << 18) else {
            continue;
        };
        let mut rng = StdRng::seed_from_u64(seed + 3000);
        for psi in &cinds {
            assert!(satisfy::satisfies_normal(&db, psi));
            // CIND2: random projection of the matched pairs.
            if !psi.x().is_empty() {
                let keep: Vec<usize> = (0..psi.x().len()).filter(|_| rng.gen_bool(0.5)).collect();
                let derived = inference::cind2(psi, &keep).expect("valid projection");
                assert!(
                    satisfy::satisfies_normal(&db, &derived),
                    "CIND2 unsound (seed {seed})"
                );
            }
            // CIND6: drop a random suffix of Yp.
            if !psi.yp().is_empty() {
                let keep: Vec<usize> = (0..psi.yp().len() - 1).collect();
                let derived = inference::cind6(psi, &keep).expect("valid relaxation");
                assert!(
                    satisfy::satisfies_normal(&db, &derived),
                    "CIND6 unsound (seed {seed})"
                );
            }
            // CIND4: instantiate the first matched pair with the value of
            // some source tuple (guaranteeing the premise stays live).
            if !psi.x().is_empty() {
                let source = db.relation(psi.lhs_rel());
                if let Some(t) = source.get(0) {
                    let v = t[psi.x()[0]].clone();
                    if let Ok(derived) = inference::cind4(&schema, psi, 0, v) {
                        assert!(
                            satisfy::satisfies_normal(&db, &derived),
                            "CIND4 unsound (seed {seed})"
                        );
                    }
                }
            }
        }
    }
}

/// CIND1 (reflexivity) holds on arbitrary generated witnesses.
#[test]
fn cind1_reflexivity_on_random_databases() {
    for seed in 0..10u64 {
        let schema = small_schema(seed);
        let db = build_witness_bounded(&schema, &[], 1 << 16).expect("empty Σ");
        for (rel, rs) in schema.iter() {
            let x: Vec<_> = (0..rs.arity() as u32).map(condep::model::AttrId).collect();
            let refl = inference::cind1(&schema, rel, x).expect("distinct attrs");
            assert!(satisfy::satisfies_normal(&db, &refl));
        }
    }
}

/// The implication game agrees with the exhaustive-database oracle on
/// random tiny all-finite instances (Theorems 3.4/3.5 cross-check).
#[test]
fn implication_game_matches_oracle_on_finite_instances() {
    let schema = Arc::new(
        Schema::builder()
            .relation("r", &[("a", Domain::finite_ints(2))])
            .relation("s", &[("b", Domain::finite_ints(2))])
            .finish(),
    );
    let mut rng = StdRng::seed_from_u64(99);
    let all_cinds: Vec<NormalCind> = {
        let mut out = Vec::new();
        // All pattern-only CINDs between r and s plus the plain INDs.
        for (l, r_) in [("r", "s"), ("s", "r"), ("r", "r"), ("s", "s")] {
            let la = if l == "r" { "a" } else { "b" };
            let ra = if r_ == "r" { "a" } else { "b" };
            if l != r_ {
                out.push(NormalCind::parse(&schema, l, &[la], &[], r_, &[ra], &[]).unwrap());
            }
            for lv in 0..2i64 {
                for rv in 0..2i64 {
                    out.push(
                        NormalCind::parse(
                            &schema,
                            l,
                            &[],
                            &[(la, Value::int(lv))],
                            r_,
                            &[],
                            &[(ra, Value::int(rv))],
                        )
                        .unwrap(),
                    );
                }
            }
        }
        out
    };
    let mut checked = 0;
    for _ in 0..60 {
        let n = rng.gen_range(0..3usize);
        let sigma: Vec<NormalCind> = (0..n)
            .map(|_| all_cinds[rng.gen_range(0..all_cinds.len())].clone())
            .collect();
        let psi = all_cinds[rng.gen_range(0..all_cinds.len())].clone();
        let game = implies(&schema, &sigma, &psi, ImplicationConfig::default());
        let oracle = implies_exhaustive_finite(&schema, &sigma, &psi, 4).expect("4-tuple universe");
        assert_eq!(
            game == Implication::Implied,
            oracle,
            "game vs oracle disagree on Σ = {sigma:?}, ψ = {psi:?}"
        );
        checked += 1;
    }
    assert_eq!(checked, 60);
}

/// Generated-consistent Σ really is consistent: the hidden witness
/// satisfies it, and the reported witness from `Checking` does too.
#[test]
fn consistent_generation_certified_by_checking() {
    use condep::consistency::{checking, CheckingConfig, RandomCheckingConfig};
    for seed in 0..8u64 {
        let schema = random_schema(
            &SchemaGenConfig {
                relations: 6,
                attrs_min: 3,
                attrs_max: 6,
                finite_ratio: 0.2,
                finite_dom_min: 2,
                finite_dom_max: 6,
            },
            &mut StdRng::seed_from_u64(seed),
        );
        let (cfds, cinds, witness) = generate_sigma(
            &schema,
            &SigmaGenConfig {
                cardinality: 60,
                consistent: true,
                ..SigmaGenConfig::default()
            },
            &mut StdRng::seed_from_u64(seed + 500),
        );
        let sigma = ConstraintSet::new(schema.clone(), cfds, cinds);
        assert!(sigma.satisfied_by(&witness.unwrap().database(&schema)));
        let cfg = CheckingConfig {
            random: RandomCheckingConfig {
                k: 40,
                seed,
                ..RandomCheckingConfig::default()
            },
            ..CheckingConfig::default()
        };
        if let Some(db) = checking(&sigma, &cfg) {
            assert!(
                sigma.satisfied_by(&db),
                "Theorem 5.1 certificate (seed {seed})"
            );
        }
        // (A None here would be an accuracy miss, not a soundness bug —
        // tracked by the Figure 11(a) bench rather than asserted.)
    }
}

/// Normalization (Prop 3.1) round-trips through `to_general`.
#[test]
fn normal_form_round_trip() {
    for seed in 0..15u64 {
        let schema = small_schema(seed);
        let (_, cinds, _) = generate_sigma(
            &schema,
            &SigmaGenConfig {
                cardinality: 12,
                cfd_fraction: 0.0,
                consistent: false,
                ..SigmaGenConfig::default()
            },
            &mut StdRng::seed_from_u64(seed + 4000),
        );
        for c in &cinds {
            let general = c.to_general();
            let back = normalize(&general);
            assert_eq!(back.len(), 1);
            assert_eq!(&back[0], c, "normalize ∘ to_general = id (seed {seed})");
        }
    }
}
