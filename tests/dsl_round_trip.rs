//! The DSL front end against the rest of the workspace: parsed
//! dependencies must behave exactly like programmatically built ones,
//! and printing must round-trip.

use condep::dsl::{parse_document, print_document};
use condep::model::fixtures::{bank_database, clean_bank_database};

/// The full Figure 2 + Figure 4 constraint file over the bank schema.
const BANK_FILE: &str = r#"
relation account_nyc(an: string, cn: string, ca: string, cp: string,
                     at: {checking, saving});
relation account_edi(an: string, cn: string, ca: string, cp: string,
                     at: {checking, saving});
relation saving(an: string, cn: string, ca: string, cp: string, ab: string);
relation checking(an: string, cn: string, ca: string, cp: string, ab: string);
relation interest(ab: string, ct: string, at: {checking, saving}, rt: string);

cfd phi1: saving(an, ab -> cn, ca, cp) { (_, _ || _, _, _); }
cfd phi2: checking(an, ab -> cn, ca, cp) { (_, _ || _, _, _); }
cfd phi3: interest(ct, at -> rt) {
    (_, _ || _);
    (UK, saving || "4.5%");
    (UK, checking || "1.5%");
    (US, saving || "4%");
    (US, checking || "1%");
}

cind psi1_edi: account_edi[an, cn, ca, cp; at]
        subset saving[an, cn, ca, cp; ab] {
    (_, _, _, _, saving || _, _, _, _, EDI);
}
cind psi2_edi: account_edi[an, cn, ca, cp; at]
        subset checking[an, cn, ca, cp; ab] {
    (_, _, _, _, checking || _, _, _, _, EDI);
}
cind psi3: saving[ab;] subset interest[ab;] { (_ || _); }
cind psi4: checking[ab;] subset interest[ab;] { (_ || _); }
cind psi5: saving[; ab] subset interest[; ab, at, ct, rt] {
    (EDI || EDI, saving, UK, "4.5%");
    (NYC || NYC, saving, US, "4%");
}
cind psi6: checking[; ab] subset interest[; ab, at, ct, rt] {
    (EDI || EDI, checking, UK, "1.5%");
    (NYC || NYC, checking, US, "1%");
}
"#;

#[test]
fn parsed_figure_2_and_4_match_the_fixtures() {
    let doc = parse_document(BANK_FILE).expect("bank file parses");
    assert_eq!(doc.schema.len(), 5);
    assert_eq!(doc.cfds.len(), 3);
    assert_eq!(doc.cinds.len(), 6);
    // The parsed schema is attribute-for-attribute the fixture schema,
    // so fixture databases type-check against it.
    let fixture = condep::model::fixtures::bank_schema();
    for ((_, a), (_, b)) in doc.schema.iter().zip(fixture.iter()) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.arity(), b.arity());
        for (x, y) in a.attributes().iter().zip(b.attributes()) {
            assert_eq!(x.name(), y.name());
            assert_eq!(x.domain(), y.domain());
        }
    }
}

#[test]
fn parsed_dependencies_reproduce_the_paper_claims() {
    let doc = parse_document(BANK_FILE).unwrap();
    // Rebuild the fixture databases against the parsed schema (same
    // layout, verified above).
    let rebuild = |src: condep::model::Database| {
        let mut db = condep::model::Database::empty(doc.schema.clone());
        for (rel, inst) in src.iter() {
            for t in inst {
                db.insert(rel, t.clone()).expect("layouts agree");
            }
        }
        db
    };
    let dirty = rebuild(bank_database());
    let clean = rebuild(clean_bank_database());

    for (name, cind) in &doc.cinds {
        let sat_dirty = condep::cind::satisfy::satisfies(&dirty, cind);
        let sat_clean = condep::cind::satisfy::satisfies(&clean, cind);
        assert!(sat_clean, "{name} must hold on the clean instance");
        if name == "psi6" {
            assert!(!sat_dirty, "ψ6 is violated by t10 (Example 2.2)");
        } else {
            assert!(sat_dirty, "{name} must hold on the dirty instance");
        }
    }
    for (name, cfd) in &doc.cfds {
        let sat_dirty = condep::cfd::satisfy::satisfies(&dirty, cfd);
        assert!(condep::cfd::satisfy::satisfies(&clean, cfd));
        if name == "phi3" {
            assert!(!sat_dirty, "ϕ3 is violated by t12 (Example 4.1)");
        } else {
            assert!(sat_dirty);
        }
    }
}

#[test]
fn print_parse_round_trip_preserves_everything() {
    let doc1 = parse_document(BANK_FILE).unwrap();
    let text = print_document(&doc1);
    let doc2 = parse_document(&text).expect("canonical form re-parses");
    assert_eq!(print_document(&doc2), text, "printing is idempotent");
    for (name, cind) in &doc1.cinds {
        assert_eq!(doc2.cind(name), Some(cind));
    }
    for (name, cfd) in &doc1.cfds {
        assert_eq!(doc2.cfd(name), Some(cfd));
    }
}

#[test]
fn parsed_sigma_feeds_the_consistency_checker() {
    use condep::consistency::{checking, CheckingConfig, ConstraintSet};
    let doc = parse_document(BANK_FILE).unwrap();
    let sigma = ConstraintSet::new(
        doc.schema.clone(),
        doc.cfds
            .iter()
            .flat_map(|(_, c)| condep::cfd::normalize::normalize(c))
            .collect(),
        doc.cinds
            .iter()
            .flat_map(|(_, c)| condep::cind::normalize::normalize(c))
            .collect(),
    );
    let witness =
        checking(&sigma, &CheckingConfig::default()).expect("Figures 2 + 4 are consistent");
    assert!(sigma.satisfied_by(&witness));
}

#[test]
fn generated_constraint_sets_round_trip_through_the_dsl() {
    // Arbitrary generated Σ → Document → text → Document: the parsed
    // dependencies must equal the originals (seeded sweep).
    use condep::gen::{generate_sigma, random_schema, SchemaGenConfig, SigmaGenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    for seed in 0..10u64 {
        let schema = random_schema(
            &SchemaGenConfig {
                relations: 5,
                attrs_min: 2,
                attrs_max: 5,
                finite_ratio: 0.3,
                finite_dom_min: 2,
                finite_dom_max: 6,
            },
            &mut StdRng::seed_from_u64(seed),
        );
        let (cfds, cinds, _) = generate_sigma(
            &schema,
            &SigmaGenConfig {
                cardinality: 20,
                consistent: false,
                ..SigmaGenConfig::default()
            },
            &mut StdRng::seed_from_u64(seed + 100),
        );
        let doc = condep::dsl::Document {
            schema: schema.clone(),
            cfds: cfds
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    // Normal CFDs print through their general single-row form.
                    let general = condep::cfd::Cfd::new(
                        c.rel(),
                        c.lhs().to_vec(),
                        vec![c.rhs()],
                        vec![c
                            .lhs_pat()
                            .concat(&condep::model::PatternRow::new([c.rhs_pat().clone()]))],
                    );
                    (format!("f{i}"), general)
                })
                .collect(),
            cinds: cinds
                .iter()
                .enumerate()
                .map(|(i, c)| (format!("i{i}"), c.to_general()))
                .collect(),
        };
        let text = print_document(&doc);
        let reparsed = parse_document(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{text}"));
        for (name, cfd) in &doc.cfds {
            assert_eq!(reparsed.cfd(name), Some(cfd), "seed {seed}, {name}");
        }
        for (name, cind) in &doc.cinds {
            assert_eq!(reparsed.cind(name), Some(cind), "seed {seed}, {name}");
        }
    }
}
