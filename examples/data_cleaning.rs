//! Constraint-based data cleaning at scale.
//!
//! Generates a consistent set of CFDs and CINDs over a random schema
//! (the Section 6 setting), materializes a database that satisfies it,
//! injects violations, measures how the violation detectors recover the
//! injected dirt, and then **repairs** the instance through the
//! cost-based repair engine — the full detect → explain → fix loop the
//! paper's introduction motivates.
//!
//! Run with `cargo run --release --example data_cleaning`.

use condep::consistency::ConstraintSet;
use condep::gen::{
    dirty_database, generate_sigma, random_schema, DirtyDataConfig, SchemaGenConfig, SigmaGenConfig,
};
use condep::repair::{RepairBudget, RepairCost};
use condep::report::QualitySuite;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let seed = 2007;
    let schema_cfg = SchemaGenConfig {
        relations: 10,
        attrs_min: 6,
        attrs_max: 12,
        finite_ratio: 0.2,
        finite_dom_min: 2,
        finite_dom_max: 20,
    };
    let schema = random_schema(&schema_cfg, &mut StdRng::seed_from_u64(seed));
    println!(
        "=== Generated schema: {} relations, max arity {} ===",
        schema.len(),
        schema.max_arity()
    );

    // Keep Σ small relative to the schema width so relations retain
    // unconstrained attributes — those give the clean base its variety.
    let sigma_cfg = SigmaGenConfig {
        cardinality: 60,
        cfd_fraction: 0.75,
        consistent: true,
        ..SigmaGenConfig::default()
    };
    let (cfds, cinds, witness) =
        generate_sigma(&schema, &sigma_cfg, &mut StdRng::seed_from_u64(seed + 1));
    let witness = witness.expect("consistent mode");
    println!(
        "=== Generated Σ: {} CFDs + {} CINDs (75/25 split) ===\n",
        cfds.len(),
        cinds.len()
    );

    // Sanity: Σ is consistent — the hidden witness satisfies it.
    let sigma = ConstraintSet::new(schema.clone(), cfds.clone(), cinds.clone());
    assert!(sigma.satisfied_by(&witness.database(&schema)));

    // A clean-but-dirty database.
    let data_cfg = DirtyDataConfig {
        tuples_per_relation: 2_000,
        violations_per_relation: 10,
    };
    let dirty = dirty_database(
        &schema,
        &cfds,
        &cinds,
        &witness,
        &data_cfg,
        &mut StdRng::seed_from_u64(seed + 2),
    );
    println!(
        "=== Database: {} tuples, {} injected violations ===",
        dirty.db.total_tuples(),
        dirty.injected.len()
    );

    // Detect.
    let suite = QualitySuite::from_normal(schema.clone(), cfds, cinds);
    let start = Instant::now();
    let report = suite.check(&dirty.db);
    let elapsed = start.elapsed();
    println!(
        "=== Detection: {} violations flagged in {:.1?} ===",
        report.summary.total(),
        elapsed
    );
    println!(
        "    {} CFD violations, {} CIND violations",
        report.summary.cfd_violations, report.summary.cind_violations
    );

    // Score against the ground truth: every injected tuple must be
    // flagged by at least one constraint (recall = 1 by construction of
    // the injector; precision can be < 1 when one dirty tuple violates
    // several CINDs).
    let offenders = suite.offending_tuples(&dirty.db, &report);
    let mut recovered = 0;
    for (rel, t) in &dirty.injected {
        if offenders.iter().any(|(_, r, u)| r == rel && *u == t) {
            recovered += 1;
        }
    }
    println!(
        "=== Ground truth: {}/{} injected violations recovered ===",
        recovered,
        dirty.injected.len()
    );
    assert_eq!(recovered, dirty.injected.len(), "recall must be 1.0");

    // Fix: run the cost-based repair engine. Every candidate fix is
    // verified through the delta engine (kept only when net-negative),
    // so the repaired instance is never worse — here it comes back
    // clean.
    let start = Instant::now();
    let (repaired, fix_report) = suite
        .repair(
            dirty.db.clone(),
            &RepairCost::uniform(),
            &RepairBudget::default(),
        )
        .expect("the example sigma is satisfiable");
    println!("=== Repair ({:.1?}): {fix_report} ===", start.elapsed());
    let after = suite.check(&repaired);
    assert!(
        after.summary.is_clean(),
        "repair must clean the instance: {after}"
    );
    println!(
        "\nAll injected dirt recovered and repaired — conditional dependencies do the cleaning."
    );
}
