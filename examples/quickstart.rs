//! Quickstart: the paper's running example end to end.
//!
//! Builds the bank database of Figure 1, the CINDs ψ1–ψ6 of Figure 2 and
//! the CFDs ϕ1–ϕ3 of Figure 4, and shows that conditional dependencies
//! catch the seeded error (`t12`, the 10.5% UK checking rate) that
//! traditional FDs/INDs miss.
//!
//! Run with `cargo run --example quickstart`.

use condep::cfd::fixtures as cfd_fixtures;
use condep::cind::fixtures as cind_fixtures;
use condep::cind::{normalize, satisfy};
use condep::model::fixtures::{bank_database, bank_schema, clean_bank_database};
use condep::report::QualitySuite;

fn main() {
    let schema = bank_schema();
    let db = bank_database();
    println!("=== Schema (Figure 1) ===\n{schema}");
    println!(
        "=== The dirty instance has {} tuples ===\n",
        db.total_tuples()
    );

    // Traditional dependencies are blind to the error.
    println!("--- Traditional FDs/INDs (fd1-fd3, ind3-ind4) ---");
    for (name, cfd) in [
        ("fd1", cfd_fixtures::fd1()),
        ("fd2", cfd_fixtures::fd2()),
        ("fd3", cfd_fixtures::fd3()),
    ] {
        println!(
            "  {name}: satisfied = {}",
            condep::cfd::satisfy::satisfies(&db, &cfd)
        );
    }
    for (name, cind) in [
        ("ind3 (ψ3)", cind_fixtures::psi3()),
        ("ind4 (ψ4)", cind_fixtures::psi4()),
    ] {
        println!("  {name}: satisfied = {}", satisfy::satisfies(&db, &cind));
    }
    println!("  → every traditional dependency holds; the data still has an error!\n");

    // Conditional dependencies catch it.
    println!("--- Conditional dependencies (Figures 2 and 4) ---");
    for (name, cind) in [("ψ5", cind_fixtures::psi5()), ("ψ6", cind_fixtures::psi6())] {
        println!("  {name}: satisfied = {}", satisfy::satisfies(&db, &cind));
    }
    let phi3 = cfd_fixtures::phi3();
    println!(
        "  ϕ3: satisfied = {}\n",
        condep::cfd::satisfy::satisfies(&db, &phi3)
    );

    // Pinpoint the dirty tuples.
    let psi6 = normalize::normalize(&cind_fixtures::psi6());
    let violations = condep::cind::find_violations(&db, &psi6[0]);
    let checking = schema.rel_id("checking").expect("relation exists");
    println!("--- ψ6 violations (the EDI row of T6) ---");
    for v in &violations {
        let t = db.relation(checking).get(v.tuple).expect("valid position");
        println!("  violating tuple (t10): {t}");
    }

    // The aggregated report.
    let suite = QualitySuite::new(
        schema.clone(),
        &[
            cfd_fixtures::phi1(),
            cfd_fixtures::phi2(),
            cfd_fixtures::phi3(),
        ],
        &cind_fixtures::figure_2(),
    );
    println!("\n--- Quality report: dirty instance ---");
    print!("{}", suite.check(&db));
    println!("--- Quality report: corrected instance (t12 → 1.5%) ---");
    print!("{}", suite.check(&clean_bank_database()));
}
