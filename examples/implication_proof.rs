//! The inference system `I` at work — Example 3.4's seven-step proof,
//! plus minimal-cover computation (the Section 8 extension).
//!
//! Run with `cargo run --example implication_proof`.

use condep::cind::cover::minimal_cover;
use condep::cind::fixtures;
use condep::cind::implication::ImplicationConfig;
use condep::cind::inference::Proof;
use condep::cind::normalize::{normalize, normalize_all};
use condep::cind::NormalCind;
use condep::model::fixtures::bank_schema;

fn main() {
    let schema = bank_schema();

    println!("=== Example 3.4: Σ ⊢I ψ via the inference system I ===\n");
    println!("Σ = {{ψ1, ψ2, ψ5, ψ6}} (EDI instantiation), dom(at) = {{checking, saving}}");
    println!("ψ = (account_edi[at; nil] ⊆ interest[at; nil])\n");

    let mut proof = Proof::new();
    let psi1 = proof.axiom(normalize(&fixtures::psi1_edi()).remove(0));
    let psi2 = proof.axiom(normalize(&fixtures::psi2_edi()).remove(0));
    let psi5 = proof.axiom(normalize(&fixtures::psi5()).remove(0));
    let psi6 = proof.axiom(normalize(&fixtures::psi6()).remove(0));

    let s1 = proof.cind2(psi1, &[]).expect("CIND2");
    let s2 = proof.cind2(psi2, &[]).expect("CIND2");
    let s3 = proof.cind6(psi5, &[1]).expect("CIND6");
    let s4 = proof.cind6(psi6, &[1]).expect("CIND6");
    let s5 = proof.cind3(s1, s3).expect("CIND3");
    let s6 = proof.cind3(s2, s4).expect("CIND3");

    let account = schema.rel_id("account_edi").expect("relation");
    let interest = schema.rel_id("interest").expect("relation");
    let at_l = schema
        .relation(account)
        .unwrap()
        .attr_id("at")
        .expect("attr");
    let at_r = schema
        .relation(interest)
        .unwrap()
        .attr_id("at")
        .expect("attr");
    proof
        .cind8(&schema, &[s5, s6], at_l, at_r)
        .expect("CIND8: dom(at) covered by {saving, checking}");

    print!("{}", proof.display(&schema));
    let goal = normalize(&fixtures::example_3_3_goal()).remove(0);
    assert_eq!(proof.conclusion(), Some(&goal));
    println!("\n∴ Σ ⊢I ψ — and by Theorem 3.3 (soundness), Σ |= ψ.\n");

    // Soundness spot check on the corrected bank instance.
    let db = condep::model::fixtures::clean_bank_database();
    assert_eq!(proof.check_soundness(&db), None);
    println!("Soundness check on the clean Figure 1 instance: every step holds.\n");

    // --- Minimal cover (Section 8 "future work", implemented). ---
    println!("=== Minimal cover of a redundant CIND set ===\n");
    let redundant: Vec<NormalCind> = {
        let mut set = normalize_all(&[
            fixtures::psi1_edi(),
            fixtures::psi2_edi(),
            fixtures::psi5(),
            fixtures::psi6(),
        ]);
        // ψ (derivable from the rest) makes the set redundant.
        set.push(goal.clone());
        set
    };
    let cover = minimal_cover(&schema, &redundant, ImplicationConfig::default());
    println!(
        "input: {} CINDs → cover: {} CINDs (removed {:?}, undecided {:?})",
        redundant.len(),
        cover.kept.len(),
        cover.removed,
        cover.undecided
    );
    assert!(
        cover.removed.contains(&(redundant.len() - 1)),
        "the derived ψ must be recognized as redundant"
    );
    println!("\nψ was removed: the implication engine recognizes Example 3.4's derivation.");
}
