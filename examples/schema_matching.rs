//! Contextual schema matching — Example 1.1 of the paper.
//!
//! A bank integrates per-branch `account` relations into a target
//! database. Plain INDs cannot express the matching (an account goes to
//! `saving` *or* `checking` depending on its type); CINDs with patterns
//! can — and implication analysis (Example 3.3/3.4) derives new mappings
//! from them.
//!
//! Run with `cargo run --example schema_matching`.

use condep::cind::implication::{implies, Implication, ImplicationConfig};
use condep::cind::{fixtures, normalize, satisfy, Cind};
use condep::model::fixtures::{bank_database, bank_schema};
use condep::model::PatternRow;

fn main() {
    let schema = bank_schema();
    let db = bank_database();

    println!("=== Contextual schema matching (Example 1.1) ===\n");

    // The naive IND-based match is wrong: it would demand every account
    // appear in `saving` regardless of its type.
    let naive = Cind::parse(
        &schema,
        "account_edi",
        &["an", "cn", "ca", "cp"],
        &[],
        "saving",
        &["an", "cn", "ca", "cp"],
        &[],
        vec![PatternRow::all_any(8)],
    )
    .expect("well-formed");
    println!(
        "naive IND  account_edi[an,cn,ca,cp] ⊆ saving[...]      : satisfied = {}",
        satisfy::satisfies(&db, &naive)
    );

    // The contextual matches of ind1/ind2 (ψ1/ψ2) hold.
    for (name, cind) in [
        ("ψ1 (EDI)", fixtures::psi1_edi()),
        ("ψ2 (EDI)", fixtures::psi2_edi()),
        ("ψ1 (NYC)", fixtures::psi1_nyc()),
        ("ψ2 (NYC)", fixtures::psi2_nyc()),
    ] {
        println!(
            "{name}  (conditional on at, binding ab)        : satisfied = {}",
            satisfy::satisfies(&db, &cind)
        );
    }

    // Implication derives a new mapping: every account type appears in
    // the interest table (Example 3.3).
    println!("\n=== Deriving a mapping by implication (Example 3.3) ===\n");
    let sigma = normalize::normalize_all(&[
        fixtures::psi1_edi(),
        fixtures::psi2_edi(),
        fixtures::psi5(),
        fixtures::psi6(),
    ]);
    let goal = normalize::normalize(&fixtures::example_3_3_goal()).remove(0);
    let verdict = implies(&schema, &sigma, &goal, ImplicationConfig::default());
    println!("Σ = {{ψ1, ψ2, ψ5, ψ6}} (EDI instantiation), dom(at) = {{checking, saving}}");
    println!("ψ = (account_edi[at; nil] ⊆ interest[at; nil])");
    println!("Σ |= ψ ?  →  {verdict:?}");
    assert_eq!(verdict, Implication::Implied);

    // Dropping the checking-side constraints breaks the derivation.
    let partial = normalize::normalize_all(&[fixtures::psi1_edi(), fixtures::psi5()]);
    let verdict = implies(&schema, &partial, &goal, ImplicationConfig::default());
    println!("without ψ2/ψ6:  Σ' |= ψ ?  →  {verdict:?}");
    assert_eq!(verdict, Implication::NotImplied);

    println!("\nThe derived CIND can seed a schema-mapping tool (Clio-style),");
    println!("while the failed derivation pinpoints the missing context.");
}
