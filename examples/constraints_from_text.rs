//! Dependencies from a configuration file: the `condep-dsl` front end.
//!
//! Defines the bank's target schema and conditional dependencies in the
//! textual format, parses them, and runs the violation detectors against
//! the Figure 1 instance — the workflow of a deployed data-quality tool.
//!
//! Run with `cargo run --example constraints_from_text`.

use condep::cind::normalize::normalize;
use condep::dsl::{parse_document, print_document};
use condep::model::{tuple, Database};

const CONSTRAINTS: &str = r#"
// Target schema of Example 1.1.
relation checking(an: string, cn: string, ca: string,
                  cp: string, ab: string);
relation interest(ab: string, ct: string,
                  at: {checking, saving}, rt: string);

// ϕ3 (interest rows): country + type determine the rate.
cfd phi3: interest(ct, at -> rt) {
    (_, _ || _);
    (UK, checking || "1.5%");
    (US, checking || "1%");
}

// ψ6: every checking account's branch must appear in interest with the
// right country and rate.
cind psi6: checking[; ab] subset interest[; ab, at, ct, rt] {
    (EDI || EDI, checking, UK, "1.5%");
    (NYC || NYC, checking, US, "1%");
}
"#;

fn main() {
    let doc = parse_document(CONSTRAINTS).expect("constraint file parses");
    println!(
        "parsed {} relations, {} CFDs, {} CINDs\n",
        doc.schema.len(),
        doc.cfds.len(),
        doc.cinds.len()
    );
    println!("--- canonical form ---\n{}", print_document(&doc));

    // Populate the checking/interest fragment of Figure 1 (t8–t14).
    let mut db = Database::empty(doc.schema.clone());
    for t in [
        tuple!["02", "G. King", "NYC, 19022", "212-3963455", "NYC"],
        tuple!["03", "J. Lee", "NYC, 02284", "212-5679844", "NYC"],
        tuple!["02", "I. Stark", "EDI, EH1 4FE", "131-6693423", "EDI"],
    ] {
        db.insert_into("checking", t).expect("well-typed");
    }
    for t in [
        tuple!["EDI", "UK", "saving", "4.5%"],
        tuple!["EDI", "UK", "checking", "10.5%"], // the seeded error t12
        tuple!["NYC", "US", "saving", "4%"],
        tuple!["NYC", "US", "checking", "1%"],
    ] {
        db.insert_into("interest", t).expect("well-typed");
    }

    // Detect with the parsed constraints.
    let psi6 = doc.cind("psi6").expect("named dependency");
    let mut total = 0;
    for n in normalize(psi6) {
        for v in condep::cind::find_violations(&db, &n) {
            let t = db
                .relation(n.lhs_rel())
                .get(v.tuple)
                .expect("valid position");
            println!("ψ6 violation: {t}");
            total += 1;
        }
    }
    let phi3 = doc.cfd("phi3").expect("named dependency");
    for n in condep::cfd::normalize::normalize(phi3) {
        for v in condep::cfd::find_violations(&db, &n) {
            if let condep::cfd::CfdViolation::SingleTuple {
                tuple,
                found,
                expected,
            } = v
            {
                let t = db.relation(n.rel()).get(tuple).expect("valid position");
                println!("ϕ3 violation: {t} (found {found}, expected {expected})");
                total += 1;
            }
        }
    }
    assert_eq!(total, 2, "t10 via ψ6 and t12 via ϕ3");
    println!("\n2 violations found — exactly the paper's t10 and t12.");
}
