//! The full discover → validate → monitor → repair loop, with **no**
//! hand-written constraints anywhere.
//!
//! A clean database is generated around a hidden planted Σ
//! (`condep_gen::clean_database_with_hidden_sigma`), corrupted with a
//! controlled error fraction, and then *profiled*: the discovery miners
//! recover a ranked Σ′ from the dirty instance itself (mining at a
//! tolerance below 1.0, so genuine dependencies survive the noise).
//! The recovered suite is checked against the planted ground truth via
//! the exact implication machinery, used to validate the dirty data,
//! and finally handed to the cost-based repair engine.
//!
//! Run with `cargo run --release --example profile_and_clean`.

use condep::cfd::implication::Implication as CfdImplication;
use condep::cind::implication::{Implication as CindImplication, ImplicationConfig};
use condep::discover::DiscoveryConfig;
use condep::gen::{clean_database_with_hidden_sigma, dirtied_database, PlantedSigmaConfig};
use condep::prelude::*;
use condep::report::QualitySuite;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let seed = 2007;
    // A hidden Σ: 4 value-locked column pairs (4 variable FDs + 16
    // constant tableau rows) and 2 reference inclusions.
    let cfg = PlantedSigmaConfig {
        fd_pairs: 4,
        pair_cardinality: 8,
        constant_rows_per_pair: 4,
        cind_count: 2,
        tuples: 20_000,
        ..PlantedSigmaConfig::default()
    };
    let planted = clean_database_with_hidden_sigma(&cfg, &mut StdRng::seed_from_u64(seed));
    println!(
        "=== Planted: {} CFDs + {} CINDs, {} clean tuples ===",
        planted.cfds.len(),
        planted.cinds.len(),
        planted.db.total_tuples()
    );

    // Corrupt 1% of the instance: typos on constant patterns, orphaned
    // inclusion sources, duplicate-key conflicts.
    let dirty = dirtied_database(
        &planted.db,
        &planted.cfds,
        &planted.cinds,
        0.01,
        &mut StdRng::seed_from_u64(seed + 1),
    );
    println!(
        "=== Dirtied: {} injected errors ===\n",
        dirty.injected.len()
    );

    // Profile the DIRTY data. A 98% confidence floor tolerates the
    // noise; every planted dependency still clears it.
    let start = Instant::now();
    let (suite, found) = QualitySuite::discover(
        &dirty.db,
        &DiscoveryConfig {
            min_confidence: 0.98,
            ..DiscoveryConfig::default()
        },
    );
    println!(
        "=== Discovery ({:.1?}): {} CFDs + {} CINDs recovered ===",
        start.elapsed(),
        found.cfds.len(),
        found.cinds.len()
    );
    println!(
        "    {} lattice nodes, {} CFD candidates, {} pruned as implied, {} capped",
        found.stats.lattice_nodes,
        found.stats.cfd_candidates,
        found.stats.pruned_implied,
        found.stats.pruned_capped
    );
    for d in found.cfds.iter().take(3) {
        println!(
            "    e.g. {}  (support {}, confidence {:.3})",
            d.cfd.display(dirty.db.schema()),
            d.support,
            d.confidence
        );
    }

    // Ground truth: the recovered Σ′ implies every planted dependency.
    let schema = dirty.db.schema();
    let sigma_cfds = found.cfds_normal();
    let implied_cfds = planted
        .cfds
        .iter()
        .filter(|c| {
            condep::cfd::implication::implies(
                schema,
                &sigma_cfds,
                c,
                condep::cfd::implication::ImplicationConfig::unbounded(),
            ) == CfdImplication::Implied
        })
        .count();
    let sigma_cinds = found.cinds_normal();
    let implied_cinds = planted
        .cinds
        .iter()
        .filter(|c| {
            condep::cind::implication::implies(
                schema,
                &sigma_cinds,
                c,
                ImplicationConfig::default(),
            ) == CindImplication::Implied
        })
        .count();
    println!(
        "=== Ground truth: Σ' implies {implied_cfds}/{} planted CFDs, {implied_cinds}/{} planted CINDs ===",
        planted.cfds.len(),
        planted.cinds.len()
    );
    assert_eq!(implied_cfds, planted.cfds.len(), "every planted CFD");
    assert_eq!(implied_cinds, planted.cinds.len(), "every planted CIND");

    // Validate the dirty instance against the *recovered* suite.
    let start = Instant::now();
    let report = suite.check(&dirty.db);
    println!(
        "=== Validation ({:.1?}): {} violations of the recovered Σ' ===",
        start.elapsed(),
        report.summary.total()
    );
    assert!(
        !report.summary.is_clean(),
        "the injected dirt must violate the recovered dependencies"
    );

    // Repair through the cost-based engine — every fix delta-verified.
    let start = Instant::now();
    let (repaired, fix_report) = suite
        .repair(
            dirty.db.clone(),
            &RepairCost::uniform(),
            &RepairBudget::default(),
        )
        .expect("the example sigma is satisfiable");
    println!("=== Repair ({:.1?}): {fix_report} ===", start.elapsed());
    let after = suite.check(&repaired);
    println!(
        "=== After repair: {} violations remain (was {}) ===",
        after.summary.total(),
        report.summary.total()
    );
    assert!(
        after.summary.total() < report.summary.total() / 10,
        "repair must eliminate at least 90% of the violations"
    );

    // Keep monitoring the cleaned instance: churn a few windows of
    // mutations through the delta engine, then poll the operator-facing
    // health snapshot — live violation counters, window/mutation
    // latency percentiles, the activity journal tail and the full
    // metric set, all in one JSON document.
    let (mut monitor, _) = suite.monitor(repaired.clone());
    let fact = repaired.schema().rel_id("fact").unwrap();
    let sample: Vec<Tuple> = repaired
        .relation(fact)
        .tuples()
        .iter()
        .take(40)
        .cloned()
        .collect();
    for window in sample.chunks(10) {
        let mut muts: Vec<Mutation> = window
            .iter()
            .map(|t| Mutation::Delete {
                rel: fact,
                tuple: t.clone(),
            })
            .collect();
        muts.extend(window.iter().map(|t| Mutation::Insert {
            rel: fact,
            tuple: t.clone(),
        }));
        monitor.ingest_batch(&muts).unwrap();
    }
    let health = monitor.health();
    println!(
        "\n=== Health: {} live violations, {} windows journaled, window p50 {} µs / p99 {} µs ===",
        health.summary.total(),
        health.journal_total,
        health.window_latency.p50_us,
        health.window_latency.p99_us
    );
    println!("{}", health.to_json());

    // Close with one scoreboard scenario: the same pipeline this
    // example walked by hand, driven by the scenario-matrix harness
    // (`cargo run -p condep-bench --bin scoreboard -- run`) and scored
    // into a diffable entry.
    let scenario = condep_bench::scenario::by_name("adversarial_dirt").unwrap();
    let result = condep_bench::scenario::run_scenario(&scenario);
    let repair = result.repair.expect("the scenario runs a repair pass");
    println!(
        "\n=== Scoreboard scenario '{}': {} rows, violations {} -> {}, repair {}+/{}- , \
         majority flips {}/{} ===",
        result.name,
        result.rows,
        result.violations.initial,
        result.violations.residual,
        repair.accepted,
        repair.rejected,
        repair.majority_flips,
        repair.poisoned_classes,
    );
    println!("{}", condep_bench::scoreboard::emit(&[result]));

    println!(
        "\nProfile → discover → validate → repair → monitor, closed without a hand-written rule."
    );
}
