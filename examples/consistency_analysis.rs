//! Consistency analysis of CFDs + CINDs — Examples 4.2 and 5.1–5.6.
//!
//! Walks the paper's Section 5 machinery: the always-consistent CIND
//! witness (Theorem 3.2), the CFD+CIND conflict of Example 4.2, the
//! chase of Examples 5.1/5.3, and the dependency-graph reduction of
//! Examples 5.4–5.6.
//!
//! Run with `cargo run --example consistency_analysis`.

use condep::cfd::NormalCfd;
use condep::cind::fixtures::{
    example_4_2_cind, example_5_4_cinds, example_5_4_schema, example_5_5_psi4_prime,
};
use condep::cind::witness::build_witness;
use condep::consistency::graph::DepGraph;
use condep::consistency::{
    checking, pre_processing, ChaseCfdChecker, CheckingConfig, ConstraintSet,
};
use condep::model::{prow, PValue};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn example_5_4_cfds(schema: &condep::model::Schema) -> Vec<NormalCfd> {
    vec![
        NormalCfd::parse(schema, "r1", &["e"], prow![_], "f", PValue::Any).unwrap(),
        NormalCfd::parse(schema, "r2", &["h"], prow![_], "g", PValue::constant("c")).unwrap(),
        NormalCfd::parse(schema, "r3", &["a"], prow!["c"], "b", PValue::Any).unwrap(),
        NormalCfd::parse(schema, "r4", &["c"], prow![_], "d", PValue::constant("a")).unwrap(),
        NormalCfd::parse(schema, "r4", &["c"], prow![_], "d", PValue::constant("b")).unwrap(),
        NormalCfd::parse(schema, "r5", &["i"], prow![_], "j", PValue::constant("c")).unwrap(),
    ]
}

fn main() {
    // --- Theorem 3.2: CINDs alone are always consistent. ---
    println!("=== Theorem 3.2: CINDs alone never conflict ===");
    let schema = example_5_4_schema();
    let cinds = example_5_4_cinds(&schema);
    let witness = build_witness(&schema, &cinds).expect("Theorem 3.2");
    println!(
        "witness for the Example 5.4 CINDs: {} tuples across {} relations\n",
        witness.total_tuples(),
        schema.len()
    );

    // --- Example 4.2: one CFD + one CIND conflict. ---
    println!("=== Example 4.2: CFDs + CINDs can conflict ===");
    let (s42, cind42) = example_4_2_cind();
    let phi = NormalCfd::parse(&s42, "r", &["a"], prow![_], "b", PValue::constant("a"))
        .expect("well-formed");
    let sigma42 = ConstraintSet::new(s42, vec![phi], vec![cind42]);
    let verdict = checking(&sigma42, &CheckingConfig::default());
    println!(
        "φ = (R: A → B, (_ ‖ a)), ψ = (R[nil] ⊆ R[nil; B = b]): witness found = {}\n",
        verdict.is_some()
    );
    assert!(verdict.is_none(), "Example 4.2 is inconsistent");

    // --- Examples 5.4/5.5: the dependency graph and preProcessing. ---
    println!("=== Examples 5.4/5.5: dependency-graph reduction ===");
    let sigma = ConstraintSet::new(schema.clone(), example_5_4_cfds(&schema), cinds.clone());
    let mut graph = DepGraph::build(&sigma);
    println!("G[Σ] nodes: {}", graph.live_count());
    let mut checker = ChaseCfdChecker::new(1_000, StdRng::seed_from_u64(1));
    let verdict = pre_processing(&mut graph, &sigma, &mut checker);
    println!(
        "preProcessing (with ψ4 = R3[A; B=b] ⊆ R4[C]): returns {}",
        verdict.code()
    );
    assert_eq!(verdict.code(), 1, "Example 5.5 first variant returns 1");

    // The ψ4' variant: reduction to Figure 8, then RandomChecking.
    let mut cinds_prime = cinds;
    cinds_prime[3] = example_5_5_psi4_prime(&schema);
    let sigma_prime = ConstraintSet::new(schema.clone(), example_5_4_cfds(&schema), cinds_prime);
    let mut graph = DepGraph::build(&sigma_prime);
    let mut checker = ChaseCfdChecker::new(1_000, StdRng::seed_from_u64(2));
    let verdict = pre_processing(&mut graph, &sigma_prime, &mut checker);
    let live: Vec<String> = graph
        .live_rels()
        .iter()
        .map(|r| {
            schema
                .relation(*r)
                .map(|rs| rs.name().to_string())
                .unwrap_or_default()
        })
        .collect();
    println!(
        "preProcessing (with ψ4' = R3[A; nil] ⊆ R4[C]): returns {}, reduced graph = {{{}}} (Figure 8)",
        verdict.code(),
        live.join(", ")
    );
    assert_eq!(verdict.code(), -1);

    // --- Example 5.6: Checking = preProcessing + RandomChecking. ---
    println!("\n=== Example 5.6: algorithm Checking on the reduced component ===");
    let witness = checking(&sigma_prime, &CheckingConfig::default());
    match witness {
        Some(db) => {
            println!(
                "RandomChecking found a witness with {} tuples — Σ is consistent.",
                db.total_tuples()
            );
            assert!(sigma_prime.satisfied_by(&db));
        }
        None => println!("no witness found (heuristic gave up)"),
    }
}
