//! High-level data-quality façade.
//!
//! Ties the workspace together the way the paper's introduction motivates
//! it: take a database and a set of conditional dependencies, check the
//! dependencies are consistent, and report every violation with enough
//! context to drive cleaning.

use condep_cfd::{normalize as cfd_normalize, Cfd, CfdViolation, NormalCfd};
use condep_consistency::{checking, CheckingConfig, ConstraintSet};
use condep_core::{normalize as cind_normalize, Cind, CindViolation, NormalCind};
use condep_discover::online::{OnlineConfig, OnlineMiner};
use condep_discover::{DiscoveredSigma, DiscoveryConfig};
use condep_model::{Database, ModelError, RelId, Schema, Tuple};
use condep_repair::{RepairBudget, RepairCost, RepairReport};
use condep_telemetry::json::JsonWriter;
use condep_telemetry::{Export, HistogramSnapshot, JournalEvent, MetricsSnapshot};
use condep_validate::{
    CompactionStats, CoverRole, Mutation, RetireLog, SigmaCover, SigmaDelta, SigmaReport,
    Validator, ValidatorStream,
};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// One detected violation, tagged with its source constraint.
#[derive(Clone, Debug)]
pub enum Violation {
    /// A CFD violation (single-tuple or pair).
    Cfd {
        /// Index of the (normalized) CFD in the suite.
        constraint: usize,
        /// The violation details.
        violation: CfdViolation,
        /// The relation involved.
        rel: RelId,
    },
    /// A CIND violation: a triggered tuple with no partner.
    Cind {
        /// Index of the (normalized) CIND in the suite.
        constraint: usize,
        /// The violation details.
        violation: CindViolation,
        /// The source relation.
        rel: RelId,
    },
}

/// Counts per constraint kind.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ViolationSummary {
    /// CFD violations found.
    pub cfd_violations: usize,
    /// CIND violations found.
    pub cind_violations: usize,
    /// Tuples inspected.
    pub tuples_checked: usize,
}

impl ViolationSummary {
    /// Total violations.
    pub fn total(&self) -> usize {
        self.cfd_violations + self.cind_violations
    }

    /// Is the database clean with respect to the suite?
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }
}

impl Export for ViolationSummary {
    fn export(&self, prefix: &str, out: &mut MetricsSnapshot) {
        let k = |name| condep_telemetry::key(prefix, name);
        out.counter(k("cfd"), self.cfd_violations as u64);
        out.counter(k("cind"), self.cind_violations as u64);
        out.counter(k("tuples_checked"), self.tuples_checked as u64);
    }
}

/// The full quality report.
#[derive(Clone, Debug)]
pub struct QualityReport {
    /// Aggregate counts.
    pub summary: ViolationSummary,
    /// Every violation found, in deterministic order.
    pub violations: Vec<Violation>,
}

impl fmt::Display for QualityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} violation(s): {} CFD, {} CIND over {} tuple(s)",
            self.summary.total(),
            self.summary.cfd_violations,
            self.summary.cind_violations,
            self.summary.tuples_checked,
        )
    }
}

/// A compiled suite of conditional dependencies over one schema.
///
/// Construction normalizes every dependency (Prop 3.1 for CINDs, the
/// Section 4 normal form for CFDs) and compiles the whole Σ into a
/// batched [`Validator`]; checking then builds one shared group-by index
/// per `(relation, LHS)` group and sweeps groups in parallel, instead of
/// re-indexing the database once per constraint.
#[derive(Clone, Debug)]
pub struct QualitySuite {
    schema: Arc<Schema>,
    validator: Validator,
}

impl QualitySuite {
    /// Builds a suite from general-form dependencies.
    pub fn new(schema: Arc<Schema>, cfds: &[Cfd], cinds: &[Cind]) -> Self {
        QualitySuite::from_normal(
            schema,
            cfd_normalize::normalize_all(cfds),
            cind_normalize::normalize_all(cinds),
        )
    }

    /// Builds a suite directly from normal forms.
    pub fn from_normal(schema: Arc<Schema>, cfds: Vec<NormalCfd>, cinds: Vec<NormalCind>) -> Self {
        QualitySuite {
            schema,
            validator: Validator::new(cfds, cinds),
        }
    }

    /// **Profiles** `db` with the `condep-discover` miners and compiles
    /// the recovered Σ′ straight into a suite — the entry point of the
    /// discover → validate → monitor → repair loop when no constraint
    /// set is given. Returns the suite together with the ranked
    /// [`DiscoveredSigma`] (supports, confidences, run counters).
    ///
    /// At the default `min_confidence = 1.0` the suite is clean on `db`
    /// by construction; mine with a lower floor to tolerate dirt in the
    /// profiled snapshot and let [`QualitySuite::check`] /
    /// [`QualitySuite::repair`] surface and fix it.
    pub fn discover(db: &Database, config: &DiscoveryConfig) -> (Self, DiscoveredSigma) {
        let found = condep_discover::discover(db, config);
        let suite = QualitySuite::from_normal(
            db.schema().clone(),
            found.cfds_normal(),
            found.cinds_normal(),
        );
        (suite, found)
    }

    /// The schema the suite is defined over.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The normalized CFDs.
    pub fn cfds(&self) -> &[NormalCfd] {
        self.validator.cfds()
    }

    /// The normalized CINDs.
    pub fn cinds(&self) -> &[NormalCind] {
        self.validator.cinds()
    }

    /// The compiled batched validator (e.g. to open a
    /// [`condep_validate::ValidatorStream`] for incremental checking).
    pub fn validator(&self) -> &Validator {
        &self.validator
    }

    /// Promotes additional (normal-form) dependencies into the compiled
    /// suite, recompiling **only** the `(relation, LHS)` / target groups
    /// they join — existing indices and any report computed so far keep
    /// their meaning. Returns the Σ index ranges the newcomers occupy.
    pub fn add_dependencies(
        &mut self,
        cfds: Vec<NormalCfd>,
        cinds: Vec<NormalCind>,
    ) -> (Range<usize>, Range<usize>) {
        self.validator.add_dependencies(cfds, cinds)
    }

    /// Retires dependencies from the suite in place: their indices stay
    /// allocated (historical reports keep meaning) but they are no
    /// longer checked. Only the groups that carried them recompile.
    pub fn retire_dependencies(&mut self, cfd_idxs: &[usize], cind_idxs: &[usize]) -> RetireLog {
        self.validator.retire_dependencies(cfd_idxs, cind_idxs)
    }

    /// Checks whether the suite itself is consistent, using algorithm
    /// `Checking` (Figure 9). `Some(witness)` certifies consistency;
    /// `None` means no witness was found (sound, not complete —
    /// Theorem 4.2 makes completeness unattainable).
    pub fn check_consistency(&self, config: &CheckingConfig) -> Option<Database> {
        let sigma = ConstraintSet::new(
            self.schema.clone(),
            self.validator.cfds().to_vec(),
            self.validator.cinds().to_vec(),
        );
        checking(&sigma, config)
    }

    /// Runs the batched validator against `db`: one parallel sweep over
    /// all of Σ, reported in the same deterministic order the per-CFD
    /// detectors would produce.
    pub fn check(&self, db: &Database) -> QualityReport {
        let report = self.validator.validate_sorted(db);
        resolve_report(&self.validator, db.total_tuples(), report)
    }

    /// Opens a streaming monitor over `db`: the suite's delta engine
    /// keeps the violation state live, so every insert / delete / update
    /// is charged only for what it touches. Also returns the seed
    /// database's initial quality report.
    pub fn monitor(&self, db: Database) -> (QualityMonitor, QualityReport) {
        let tuples = db.total_tuples();
        let (stream, initial) = ValidatorStream::new_validated(self.validator.clone(), db);
        let report = resolve_report(&self.validator, tuples, initial.clone());
        let monitor = QualityMonitor {
            sigma: initial,
            tuples_checked: tuples,
            stream,
            online: None,
        };
        (monitor, report)
    }

    /// Repairs `db` against the suite: the `condep-repair` cost-based
    /// engine detects every violation, settles CFD conflicts per
    /// equivalence class (constant patterns force their constant,
    /// variable ones take the class majority), gives CIND orphans their
    /// chased target tuple or deletes them, and verifies **every**
    /// candidate fix through the delta engine — kept only when its
    /// [`SigmaDelta`]s prove it strictly net-negative, rolled back
    /// otherwise. Returns the repaired database and the auditable
    /// [`RepairReport`] (fixes, costs, residual violations).
    ///
    /// A Σ the static analyzer **proves** unsatisfiable is refused up
    /// front with [`condep_validate::UnsatSigma`] carrying a minimal
    /// conflicting core — see [`QualitySuite::analysis`].
    pub fn repair(
        &self,
        db: Database,
        cost: &RepairCost,
        budget: &RepairBudget,
    ) -> Result<(Database, RepairReport), condep_validate::UnsatSigma> {
        let initial = self.validator.validate_sorted(&db);
        condep_repair::repair(self.validator.clone(), db, initial, cost, budget)
    }

    /// Full static analysis of the suite's Σ: SAT-backed consistency
    /// with a witness database or a minimal unsat core, a budgeted
    /// chase for CFD+CIND interaction, and the advisory
    /// [`condep_validate::SigmaLint`] catalogue. The cheap lint tier is
    /// also always available as `validator().lints()`.
    pub fn analysis(&self) -> condep_validate::SigmaAnalysis {
        self.validator.analysis(&self.schema)
    }

    /// The offending tuples, resolved against `db` — what a repair tool
    /// consumes.
    pub fn offending_tuples<'a>(
        &self,
        db: &'a Database,
        report: &QualityReport,
    ) -> Vec<(&'static str, RelId, &'a Tuple)> {
        let mut out = Vec::new();
        for v in &report.violations {
            match v {
                Violation::Cfd { violation, rel, .. } => match violation {
                    CfdViolation::SingleTuple { tuple, .. } => {
                        if let Some(t) = db.relation(*rel).get(*tuple) {
                            out.push(("cfd", *rel, t));
                        }
                    }
                    CfdViolation::Pair { left, right } => {
                        for pos in [left, right] {
                            if let Some(t) = db.relation(*rel).get(*pos) {
                                out.push(("cfd", *rel, t));
                            }
                        }
                    }
                },
                Violation::Cind { violation, rel, .. } => {
                    if let Some(t) = db.relation(*rel).get(violation.tuple) {
                        out.push(("cind", *rel, t));
                    }
                }
            }
        }
        out
    }
}

/// Resolves a raw [`SigmaReport`] against the compiled suite into the
/// user-facing [`QualityReport`].
fn resolve_report(
    validator: &Validator,
    tuples_checked: usize,
    report: SigmaReport,
) -> QualityReport {
    let mut violations = Vec::with_capacity(report.len());
    let summary = ViolationSummary {
        tuples_checked,
        cfd_violations: report.cfd.len(),
        cind_violations: report.cind.len(),
    };
    for (i, v) in report.cfd {
        violations.push(Violation::Cfd {
            constraint: i,
            violation: v,
            rel: validator.cfds()[i].rel(),
        });
    }
    for (i, v) in report.cind {
        violations.push(Violation::Cind {
            constraint: i,
            violation: v,
            rel: validator.cinds()[i].lhs_rel(),
        });
    }
    QualityReport {
        summary,
        violations,
    }
}

/// A live data-quality monitor: a [`QualitySuite`] bound to one evolving
/// database through the `condep-validate` delta engine.
///
/// The full violation report is maintained **incrementally from the
/// streamed deltas** via [`SigmaReport::apply_delta`] (the documented
/// consumer rule: remove resolved, renumber the swap move, add
/// introduced), so a monitor ingesting an insert/delete stream never
/// re-validates the database, yet [`QualityMonitor::summary`] and
/// [`QualityMonitor::report`] always match what [`QualitySuite::check`]
/// would report from scratch.
#[derive(Clone, Debug)]
pub struct QualityMonitor {
    stream: ValidatorStream,
    /// The delta-maintained raw report (== the stream's live state).
    sigma: SigmaReport,
    tuples_checked: usize,
    /// Online-discovery loop, when enabled.
    online: Option<OnlineState>,
}

/// Counters of what a monitor's online-discovery loop has done.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OnlineActivity {
    /// Proposal polls run (one per elapsed window).
    pub polls: usize,
    /// Dependencies proposed across all polls (pre-deduplication).
    pub proposed: usize,
    /// Dependencies promoted into the live suite.
    pub promoted: usize,
    /// Promoted dependencies later retired on confidence decay.
    pub retired: usize,
}

impl Export for OnlineActivity {
    fn export(&self, prefix: &str, out: &mut MetricsSnapshot) {
        let k = |name| condep_telemetry::key(prefix, name);
        out.counter(k("polls"), self.polls as u64);
        out.counter(k("proposed"), self.proposed as u64);
        out.counter(k("promoted"), self.promoted as u64);
        out.counter(k("retired"), self.retired as u64);
    }
}

/// The online-discovery state bound to a monitor: the incremental miner
/// plus the bookkeeping of what it promoted.
#[derive(Clone, Debug)]
struct OnlineState {
    miner: OnlineMiner,
    /// `miner.ops()` at the last proposal poll.
    polled_at: u64,
    /// Σ indices of monitor-promoted dependencies — the only ones the
    /// decay pass may retire (user-supplied Σ is never touched).
    promoted_cfds: Vec<usize>,
    promoted_cinds: Vec<usize>,
    activity: OnlineActivity,
}

impl QualityMonitor {
    /// Enables **online discovery**: an incremental [`OnlineMiner`] is
    /// seeded from the current database and fed every effective
    /// mutation the monitor ingests. Every `config.window` effective
    /// mutations the monitor polls the miner's proposals, deduplicates
    /// them against the live suite through the exact Σ cover, promotes
    /// the genuinely new dependencies into the running validator (no
    /// re-materialization, no re-sweep of Σ), and retires previously
    /// promoted dependencies whose streamed confidence decayed below
    /// `config.retire_confidence`.
    pub fn with_online_discovery(mut self, config: OnlineConfig) -> Self {
        let mut miner = OnlineMiner::new(self.stream.db().schema().clone(), config);
        miner.seed(self.stream.db());
        self.online = Some(OnlineState {
            miner,
            polled_at: 0,
            promoted_cfds: Vec::new(),
            promoted_cinds: Vec::new(),
            activity: OnlineActivity::default(),
        });
        self
    }

    /// Ingests one arriving tuple, returning the delta (violations
    /// introduced, and — for CIND target arrivals — resolved).
    pub fn insert(&mut self, rel: RelId, t: Tuple) -> Result<SigmaDelta, ModelError> {
        let observed = self.online.is_some().then(|| t.clone());
        let delta = self.stream.insert_tuple(rel, t)?;
        self.consume(&delta);
        // Only an *effective* insert (set semantics: a tuple id was
        // born) reaches the miner's sketches.
        if delta.ids.born.is_some() {
            if let (Some(state), Some(t)) = (self.online.as_mut(), observed.as_ref()) {
                state.miner.observe_insert(rel, t);
            }
            self.poll_online();
        }
        Ok(delta)
    }

    /// Ingests one deletion, consuming its retractions (and any
    /// violations the absence introduces). `None` when the tuple was not
    /// present.
    pub fn delete(&mut self, rel: RelId, t: &Tuple) -> Option<SigmaDelta> {
        let delta = self.stream.delete_tuple(rel, t)?;
        self.consume(&delta);
        if let Some(state) = self.online.as_mut() {
            state.miner.observe_delete(rel, t);
        }
        self.poll_online();
        Some(delta)
    }

    /// Ingests a replacement (`old` → `new`) as its delete and insert
    /// deltas in application order.
    pub fn update(
        &mut self,
        rel: RelId,
        old: &Tuple,
        new: Tuple,
    ) -> Result<Option<(SigmaDelta, SigmaDelta)>, ModelError> {
        let observed = self.online.is_some().then(|| new.clone());
        let Some((del, ins)) = self.stream.update_tuple(rel, old, new)? else {
            return Ok(None);
        };
        self.consume(&del);
        self.consume(&ins);
        if let Some(state) = self.online.as_mut() {
            state.miner.observe_delete(rel, old);
            // A merge-degenerate update (`new` already resident) births
            // no id — the miner must then see only the deletion.
            if ins.ids.born.is_some() {
                if let Some(t) = observed.as_ref() {
                    state.miner.observe_insert(rel, t);
                }
            }
        }
        self.poll_online();
        Ok(Some((del, ins)))
    }

    /// Ingests a whole batch of value-level [`Mutation`]s through the
    /// stream's batched path ([`ValidatorStream::apply_deltas`]): the
    /// batch is symbolized in one interner pass and each touched key
    /// group probed once, so a monitor fed buffered mutation windows
    /// pays far less per mutation than the one-at-a-time calls. Returns
    /// the streamed deltas in application order; an ill-typed mutation
    /// applies nothing.
    pub fn ingest_batch(&mut self, muts: &[Mutation]) -> Result<Vec<SigmaDelta>, ModelError> {
        let effective = if self.online.is_some() {
            self.effective_mutations(muts)
        } else {
            Vec::new()
        };
        let deltas = self.stream.apply_deltas(muts)?;
        for delta in &deltas {
            self.consume(delta);
        }
        if let Some(state) = self.online.as_mut() {
            for m in &effective {
                state.miner.observe(m);
            }
        }
        self.poll_online();
        Ok(deltas)
    }

    /// Replays a batch against the pre-batch database under set
    /// semantics, returning only the insertions and deletions that
    /// actually change the tuple set — what the online miner's sketches
    /// must see. (Updates decompose; a merge-degenerate update
    /// contributes only its deletion.)
    fn effective_mutations(&self, muts: &[Mutation]) -> Vec<Mutation> {
        let mut overlay: HashMap<(RelId, &Tuple), bool> = HashMap::new();
        let db = self.stream.db();
        let present = |overlay: &HashMap<(RelId, &Tuple), bool>, rel: RelId, t: &Tuple| {
            overlay
                .get(&(rel, t))
                .copied()
                .unwrap_or_else(|| db.relation(rel).contains(t))
        };
        let mut fed = Vec::new();
        for m in muts {
            match m {
                Mutation::Insert { rel, tuple } => {
                    if !present(&overlay, *rel, tuple) {
                        overlay.insert((*rel, tuple), true);
                        fed.push(m.clone());
                    }
                }
                Mutation::Delete { rel, tuple } => {
                    if present(&overlay, *rel, tuple) {
                        overlay.insert((*rel, tuple), false);
                        fed.push(m.clone());
                    }
                }
                Mutation::Update { rel, old, new } => {
                    if old != new && present(&overlay, *rel, old) {
                        overlay.insert((*rel, old), false);
                        fed.push(Mutation::Delete {
                            rel: *rel,
                            tuple: old.clone(),
                        });
                        if !present(&overlay, *rel, new) {
                            overlay.insert((*rel, new), true);
                            fed.push(Mutation::Insert {
                                rel: *rel,
                                tuple: new.clone(),
                            });
                        }
                    }
                }
            }
        }
        fed
    }

    /// Runs one online-discovery poll when the configured window of
    /// effective mutations has elapsed: decay-retire first (so a fading
    /// dependency cannot suppress its own replacement in the cover),
    /// then dedup-and-promote the current proposals.
    fn poll_online(&mut self) {
        let Some(mut state) = self.online.take() else {
            return;
        };
        let window = (state.miner.config().window as u64).max(1);
        if state.miner.ops() < state.polled_at + window {
            self.online = Some(state);
            return;
        }
        state.polled_at = state.miner.ops();
        state.activity.polls += 1;

        // Decay pass: only monitor-promoted dependencies are eligible.
        let retire_confidence = state.miner.config().retire_confidence;
        let decayed = |idx: &&usize, kind: u8| -> bool {
            let v = self.stream.validator();
            let i = **idx;
            match kind {
                0 if !v.is_cfd_retired(i) => state
                    .miner
                    .confidence_of_cfd(&v.cfds()[i])
                    .is_some_and(|(_, c)| c < retire_confidence),
                1 if !v.is_cind_retired(i) => state
                    .miner
                    .confidence_of_cind(&v.cinds()[i])
                    .is_some_and(|(_, c)| c < retire_confidence),
                _ => false,
            }
        };
        let retire_cfds: Vec<usize> = state
            .promoted_cfds
            .iter()
            .filter(|i| decayed(i, 0))
            .copied()
            .collect();
        let retire_cinds: Vec<usize> = state
            .promoted_cinds
            .iter()
            .filter(|i| decayed(i, 1))
            .copied()
            .collect();
        if !retire_cfds.is_empty() || !retire_cinds.is_empty() {
            state.activity.retired += retire_cfds.len() + retire_cinds.len();
            self.retire_dependencies(&retire_cfds, &retire_cinds);
        }

        // Promotion pass: dedup proposals against the active suite via
        // the exact Σ cover — a proposal that is (or is subsumed by) an
        // active dependency merges away; only genuinely new rows
        // splice in.
        let proposals = state.miner.proposals();
        state.activity.proposed += proposals.len();
        if !proposals.is_empty() {
            let validator = self.stream.validator();
            let mut cover_cfds: Vec<NormalCfd> = (0..validator.cfds().len())
                .filter(|&i| !validator.is_cfd_retired(i))
                .map(|i| validator.cfds()[i].clone())
                .collect();
            let n_active_cfds = cover_cfds.len();
            cover_cfds.extend(proposals.cfds.iter().map(|d| d.cfd.clone()));
            let mut cover_cinds: Vec<NormalCind> = (0..validator.cinds().len())
                .filter(|&i| !validator.is_cind_retired(i))
                .map(|i| validator.cinds()[i].clone())
                .collect();
            let n_active_cinds = cover_cinds.len();
            cover_cinds.extend(proposals.cinds.iter().map(|d| d.cind.clone()));
            let cover = SigmaCover::exact(&cover_cfds, &cover_cinds);
            let new_cfds: Vec<NormalCfd> = proposals
                .cfds
                .iter()
                .enumerate()
                .filter(|(i, _)| matches!(cover.cfd[n_active_cfds + i], CoverRole::Keep { .. }))
                .map(|(_, d)| d.cfd.clone())
                .collect();
            let new_cinds: Vec<NormalCind> = proposals
                .cinds
                .iter()
                .enumerate()
                .filter(|(i, _)| matches!(cover.cind[n_active_cinds + i], CoverRole::Keep { .. }))
                .map(|(_, d)| d.cind.clone())
                .collect();
            if !new_cfds.is_empty() || !new_cinds.is_empty() {
                let cfd_start = validator.cfds().len();
                let cind_start = validator.cinds().len();
                state
                    .promoted_cfds
                    .extend(cfd_start..cfd_start + new_cfds.len());
                state
                    .promoted_cinds
                    .extend(cind_start..cind_start + new_cinds.len());
                state.activity.promoted += new_cfds.len() + new_cinds.len();
                self.add_dependencies(new_cfds, new_cinds);
            }
        }
        self.online = Some(state);
    }

    /// Promotes dependencies into the **live** monitored suite (see
    /// [`ValidatorStream::add_dependencies`]): only the affected groups
    /// recompile and the delta-maintained report mirror absorbs the
    /// newcomers' violations. Returns those violations.
    pub fn add_dependencies(
        &mut self,
        cfds: Vec<NormalCfd>,
        cinds: Vec<NormalCind>,
    ) -> SigmaReport {
        let introduced = self.stream.add_dependencies(cfds, cinds);
        self.sigma.cfd.extend(introduced.cfd.iter().cloned());
        self.sigma.cind.extend(introduced.cind.iter().cloned());
        self.sigma.sort();
        introduced
    }

    /// Retires dependencies from the live monitored suite (see
    /// [`ValidatorStream::retire_dependencies`]); their violations
    /// leave the mirror and are returned.
    pub fn retire_dependencies(&mut self, cfd_idxs: &[usize], cind_idxs: &[usize]) -> SigmaReport {
        let resolved = self.stream.retire_dependencies(cfd_idxs, cind_idxs);
        let gone: HashSet<usize> = cfd_idxs.iter().copied().collect();
        self.sigma.cfd.retain(|(i, _)| !gone.contains(i));
        let gone: HashSet<usize> = cind_idxs.iter().copied().collect();
        self.sigma.cind.retain(|(i, _)| !gone.contains(i));
        resolved
    }

    /// The online miner, when online discovery is enabled.
    pub fn online_miner(&self) -> Option<&OnlineMiner> {
        self.online.as_ref().map(|s| &s.miner)
    }

    /// What the online-discovery loop has done so far.
    pub fn online_activity(&self) -> Option<OnlineActivity> {
        self.online.as_ref().map(|s| s.activity)
    }

    /// Σ indices of the dependencies the online loop promoted (live and
    /// since-retired alike), as `(cfds, cinds)`.
    pub fn online_promoted(&self) -> Option<(&[usize], &[usize])> {
        self.online
            .as_ref()
            .map(|s| (s.promoted_cfds.as_slice(), s.promoted_cinds.as_slice()))
    }

    /// Compacts the monitor's long-lived stream state (emptied key
    /// groups, dead interned strings, retired tuple-id slots) without
    /// disturbing the live report — see
    /// [`ValidatorStream::compact`].
    pub fn compact(&mut self) -> CompactionStats {
        self.stream.compact()
    }

    /// Rebounds the stream's activity journal to keep the newest
    /// `capacity` events (min 1; default 256), so a monitor driving a
    /// long scenario can retain its full event tail. Shrinking evicts
    /// the oldest retained events; [`HealthSnapshot::journal_total`]
    /// and sequence numbers are unaffected.
    pub fn set_journal_capacity(&mut self, capacity: usize) {
        self.stream.set_journal_capacity(capacity);
    }

    /// Folds one streamed delta into the mirrored report through the
    /// consumer rule ([`SigmaReport::apply_delta`]).
    fn consume(&mut self, delta: &SigmaDelta) {
        self.sigma.apply_delta(self.stream.validator(), delta);
        self.tuples_checked = self.stream.db().total_tuples();
    }

    /// The delta-maintained counters (no validation run).
    pub fn summary(&self) -> ViolationSummary {
        ViolationSummary {
            cfd_violations: self.sigma.cfd.len(),
            cind_violations: self.sigma.cind.len(),
            tuples_checked: self.tuples_checked,
        }
    }

    /// The current database.
    pub fn db(&self) -> &Database {
        self.stream.db()
    }

    /// The live compiled suite under monitoring (reflects every
    /// [`QualityMonitor::add_dependencies`] /
    /// [`QualityMonitor::retire_dependencies`] and the online loop's
    /// promotions).
    pub fn validator(&self) -> &Validator {
        self.stream.validator()
    }

    /// A point-in-time health snapshot: live violation counts, the
    /// stream's window/mutation latency percentiles, the tail of its
    /// activity journal, the online loop's counters and the full metric
    /// set — everything an operator dashboard polls, in one call and
    /// one JSON document ([`HealthSnapshot::to_json`]).
    pub fn health(&self) -> HealthSnapshot {
        let telemetry = self.stream.telemetry();
        let summary = self.summary();
        let online = self.online_activity();
        let mut metrics = telemetry.snapshot();
        summary.export("monitor.violations", &mut metrics);
        if let Some(a) = &online {
            a.export("monitor.online", &mut metrics);
        }
        HealthSnapshot {
            summary,
            window_latency: telemetry.window_latency(),
            mutation_latency: telemetry.mutation_latency(),
            journal: telemetry.journal_tail(HEALTH_JOURNAL_TAIL),
            journal_total: telemetry.journal().total(),
            online,
            metrics,
        }
    }

    /// The full current report, resolved from the delta-maintained
    /// mirror — equal to re-checking the database from scratch, without
    /// the sweep (and equal to the stream's own materialized state,
    /// asserted in debug builds).
    pub fn report(&self) -> QualityReport {
        debug_assert_eq!(
            self.sigma,
            self.stream.current_report(),
            "consumer-rule mirror diverged from the stream's live state"
        );
        resolve_report(
            self.stream.validator(),
            self.tuples_checked,
            self.sigma.clone(),
        )
    }
}

/// How many of the newest journal events a [`HealthSnapshot`] carries.
const HEALTH_JOURNAL_TAIL: usize = 32;

/// What [`QualityMonitor::health`] returns: the monitor's live state as
/// plain data, serializable to one JSON document.
///
/// With the `telemetry` cargo feature off (or a stream built disabled)
/// the latency histograms read zero and the journal is empty; the
/// violation counts and online counters are always live.
#[derive(Clone, Debug)]
pub struct HealthSnapshot {
    /// Live violation counts (delta-maintained, no validation run).
    pub summary: ViolationSummary,
    /// Latency distribution of batched windows
    /// ([`QualityMonitor::ingest_batch`]), with p50/p90/p99.
    pub window_latency: HistogramSnapshot,
    /// Latency distribution of single-mutation ingests.
    pub mutation_latency: HistogramSnapshot,
    /// The newest journal events (up to 32), oldest first: per-window
    /// mutation/violation churn, compactions, online promote/retire.
    pub journal: Vec<JournalEvent>,
    /// Journal events recorded over the monitor's lifetime (≥
    /// `journal.len()`; the ring forgets, this count does not).
    pub journal_total: u64,
    /// Online-discovery counters, when the loop is enabled.
    pub online: Option<OnlineActivity>,
    /// Every stream metric, plus the summary under
    /// `monitor.violations.*` and the online counters under
    /// `monitor.online.*`.
    pub metrics: MetricsSnapshot,
}

impl HealthSnapshot {
    /// Renders the snapshot as one pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("violations");
        w.begin_object();
        w.key("cfd");
        w.value_u64(self.summary.cfd_violations as u64);
        w.key("cind");
        w.value_u64(self.summary.cind_violations as u64);
        w.key("total");
        w.value_u64(self.summary.total() as u64);
        w.key("tuples_checked");
        w.value_u64(self.summary.tuples_checked as u64);
        w.end_object();
        w.key("window_latency_us");
        self.window_latency.write_json(&mut w);
        w.key("mutation_latency_us");
        self.mutation_latency.write_json(&mut w);
        w.key("journal_total");
        w.value_u64(self.journal_total);
        w.key("journal");
        w.begin_array();
        for e in &self.journal {
            e.write_json(&mut w);
        }
        w.end_array();
        w.key("online");
        match &self.online {
            Some(a) => {
                w.begin_object();
                w.key("polls");
                w.value_u64(a.polls as u64);
                w.key("proposed");
                w.value_u64(a.proposed as u64);
                w.key("promoted");
                w.value_u64(a.promoted as u64);
                w.key("retired");
                w.value_u64(a.retired as u64);
                w.end_object();
            }
            None => w.value_null(),
        }
        w.key("metrics");
        self.metrics.write_json(&mut w);
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_cfd::fixtures as cfd_fixtures;
    use condep_core::fixtures as cind_fixtures;
    use condep_model::fixtures::{bank_database, bank_schema, clean_bank_database};
    use condep_model::tuple;

    fn bank_suite() -> QualitySuite {
        QualitySuite::new(
            bank_schema(),
            &[
                cfd_fixtures::phi1(),
                cfd_fixtures::phi2(),
                cfd_fixtures::phi3(),
            ],
            &cind_fixtures::figure_2(),
        )
    }

    #[test]
    fn dirty_bank_report_finds_exactly_the_two_paper_errors() {
        // t12 violates ϕ3 (CFD) and t10 violates ψ6 (CIND).
        let suite = bank_suite();
        let db = bank_database();
        let report = suite.check(&db);
        assert_eq!(report.summary.cfd_violations, 1);
        assert_eq!(report.summary.cind_violations, 1);
        assert!(!report.summary.is_clean());
        let offenders = suite.offending_tuples(&db, &report);
        assert_eq!(offenders.len(), 2);
    }

    #[test]
    fn clean_bank_report_is_clean() {
        let suite = bank_suite();
        let report = suite.check(&clean_bank_database());
        assert!(report.summary.is_clean());
        assert_eq!(report.summary.tuples_checked, 14);
    }

    #[test]
    fn suite_consistency_check_finds_a_witness() {
        let suite = bank_suite();
        let witness = suite
            .check_consistency(&CheckingConfig::default())
            .expect("Figure 2 + Figure 4 are consistent");
        assert!(!witness.is_empty());
    }

    #[test]
    fn monitor_consumes_introductions_and_retractions() {
        let suite = bank_suite();
        let (mut monitor, initial) = suite.monitor(bank_database());
        // Seeded with the dirty instance: the paper's two errors.
        assert_eq!(initial.summary.total(), 2);
        assert_eq!(monitor.summary().total(), 2);
        let interest = suite.schema().rel_id("interest").unwrap();
        // A fresh violation raises the counters...
        let bad = tuple!["GLA", "UK", "checking", "9.9%"];
        let delta = monitor.insert(interest, bad.clone()).unwrap();
        assert!(!delta.is_quiet());
        let raised = monitor.summary().total();
        assert!(raised > 2, "summary must rise: {raised}");
        // ... and deleting it streams the retraction back down.
        let gone = monitor.delete(interest, &bad).unwrap();
        assert!(!gone.resolved().is_empty());
        assert_eq!(monitor.summary().total(), 2);
        // The delta-maintained summary matches a from-scratch check.
        let fresh = suite.check(monitor.db());
        assert_eq!(monitor.summary(), fresh.summary);
        assert_eq!(monitor.report().summary, fresh.summary);
    }

    #[test]
    fn monitor_ingests_batches_and_compacts_without_drifting() {
        let suite = bank_suite();
        let (mut monitor, initial) = suite.monitor(bank_database());
        assert_eq!(initial.summary.total(), 2);
        let interest = suite.schema().rel_id("interest").unwrap();
        let deltas = monitor
            .ingest_batch(&[
                Mutation::Insert {
                    rel: interest,
                    tuple: condep_model::tuple!["GLA", "UK", "checking", "9.9%"],
                },
                Mutation::Update {
                    rel: interest,
                    old: condep_model::tuple!["GLA", "UK", "checking", "9.9%"],
                    new: condep_model::tuple!["GLA", "UK", "checking", "1.5%"],
                },
                Mutation::Delete {
                    rel: interest,
                    tuple: condep_model::tuple!["GLA", "UK", "checking", "1.5%"],
                },
            ])
            .unwrap();
        assert!(!deltas.is_empty());
        let stats = monitor.compact();
        assert!(stats.interned_strings_after <= stats.interned_strings_before);
        // The delta-maintained mirror survives batches + compaction and
        // still equals a from-scratch check.
        let fresh = suite.check(monitor.db());
        assert_eq!(monitor.summary(), fresh.summary);
        assert_eq!(monitor.report().summary, fresh.summary);
        assert_eq!(monitor.summary().total(), 2);
    }

    #[test]
    fn monitor_update_repairs_the_paper_error() {
        let suite = bank_suite();
        let (mut monitor, initial) = suite.monitor(bank_database());
        assert_eq!(initial.summary.cfd_violations, 1);
        let interest = suite.schema().rel_id("interest").unwrap();
        // t12 is the ϕ3 offender: EDI UK checking at 10.5%. Repairing
        // the rate resolves the CFD violation.
        let (del, ins) = monitor
            .update(
                interest,
                &tuple!["EDI", "UK", "checking", "10.5%"],
                tuple!["EDI", "UK", "checking", "1.5%"],
            )
            .unwrap()
            .unwrap();
        assert_eq!(del.cfd.resolved.len(), 1);
        assert!(ins.cfd.introduced.is_empty());
        assert_eq!(monitor.summary().cfd_violations, 0);
        let fresh = suite.check(monitor.db());
        assert_eq!(monitor.summary(), fresh.summary);
    }

    #[test]
    fn discover_profiles_and_compiles_a_working_suite() {
        // Profile the clean bank instance: the mined suite is satisfied
        // by it (soundness at confidence 1.0), and still *checks* — a
        // dirty tuple surfaces as violations of the discovered Σ′.
        let db = clean_bank_database();
        let (suite, found) = QualitySuite::discover(
            &db,
            &condep_discover::DiscoveryConfig {
                min_support: 2,
                ..condep_discover::DiscoveryConfig::default()
            },
        );
        assert!(!found.is_empty(), "the bank data carries dependencies");
        assert_eq!(suite.cfds().len(), found.cfds.len());
        assert_eq!(suite.cinds().len(), found.cinds.len());
        assert!(
            suite.check(&db).summary.is_clean(),
            "strict discovery output must hold on the profiled instance"
        );
        // Rankings are evidence-sorted.
        for pair in found.cfds.windows(2) {
            assert!(
                pair[0].support > pair[1].support
                    || (pair[0].support == pair[1].support
                        && pair[0].confidence >= pair[1].confidence),
                "ranking must be (support, confidence) descending"
            );
        }
    }

    #[test]
    fn monitor_add_and_retire_dependencies_keep_the_mirror_live() {
        let suite = bank_suite();
        let (mut monitor, initial) = suite.monitor(bank_database());
        assert_eq!(initial.summary.total(), 2);
        // Retire the whole suite out from under the live stream: every
        // standing violation streams back as resolved.
        let all_cfds: Vec<usize> = (0..suite.cfds().len()).collect();
        let all_cinds: Vec<usize> = (0..suite.cinds().len()).collect();
        let resolved = monitor.retire_dependencies(&[], &all_cinds);
        assert_eq!(resolved.cind.len(), 1, "t10's ψ6 violation resolves");
        assert_eq!(monitor.summary().cind_violations, 0);
        let resolved = monitor.retire_dependencies(&all_cfds, &[]);
        assert_eq!(resolved.cfd.len(), 1, "t12's ϕ3 violation resolves");
        assert_eq!(monitor.summary().total(), 0);
        // Splice the same dependencies back in: they take fresh Σ
        // indices past the retired block and re-find both paper errors
        // without re-validating from scratch.
        let introduced = monitor.add_dependencies(suite.cfds().to_vec(), suite.cinds().to_vec());
        assert_eq!(introduced.len(), 2);
        assert!(introduced.cfd.iter().all(|(i, _)| *i >= suite.cfds().len()));
        assert_eq!(monitor.summary().cfd_violations, 1);
        assert_eq!(monitor.summary().cind_violations, 1);
        // The delta engine stays live across the reshaped suite.
        let interest = suite.schema().rel_id("interest").unwrap();
        let bad = tuple!["GLA", "UK", "checking", "9.9%"];
        assert!(!monitor.insert(interest, bad.clone()).unwrap().is_quiet());
        assert!(monitor.summary().total() > 2);
        monitor.delete(interest, &bad).unwrap();
        assert_eq!(monitor.summary().total(), 2);
        // And the mirror still equals a from-scratch batch check.
        let fresh = suite.check(monitor.db());
        assert_eq!(
            monitor.summary().cfd_violations,
            fresh.summary.cfd_violations
        );
        assert_eq!(
            monitor.summary().cind_violations,
            fresh.summary.cind_violations
        );
        monitor.report(); // debug-asserts mirror == stream state
    }

    fn city_schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder()
                .relation(
                    "fact",
                    &[
                        ("city", condep_model::Domain::string()),
                        ("country", condep_model::Domain::string()),
                        ("zip", condep_model::Domain::string()),
                    ],
                )
                .relation("cities", &[("name", condep_model::Domain::string())])
                .finish(),
        )
    }

    fn city_db() -> Database {
        let mut db = Database::empty(city_schema());
        let rows = [
            ("EDI", "UK"),
            ("EDI", "UK"),
            ("EDI", "UK"),
            ("NYC", "US"),
            ("NYC", "US"),
            ("NYC", "US"),
            ("GLA", "UK"),
            ("GLA", "UK"),
        ];
        for (i, (city, country)) in rows.iter().enumerate() {
            db.insert_into("fact", tuple![*city, *country, format!("z{i}").as_str()])
                .unwrap();
        }
        for city in ["EDI", "NYC", "GLA"] {
            db.insert_into("cities", tuple![city]).unwrap();
        }
        db
    }

    #[test]
    fn online_discovery_promotes_then_decay_retires_on_the_stream() {
        let schema = city_schema();
        let suite = QualitySuite::from_normal(schema.clone(), vec![], vec![]);
        let (monitor, initial) = suite.monitor(city_db());
        assert!(initial.summary.is_clean(), "no Σ, nothing to violate");
        let mut monitor = monitor.with_online_discovery(OnlineConfig {
            min_support: 2,
            window: 4,
            ..OnlineConfig::default()
        });
        let fact = schema.rel_id("fact").unwrap();
        // Four clean arrivals: the fourth closes the first window and
        // the poll promotes the planted dependencies into the live
        // suite (city → country, the constant rows, fact[city] ⊆
        // cities[name]) — all satisfied, so the mirror stays clean.
        for (city, country, zip) in [
            ("EDI", "UK", "z8"),
            ("NYC", "US", "z9"),
            ("GLA", "UK", "z10"),
            ("EDI", "UK", "z11"),
        ] {
            monitor.insert(fact, tuple![city, country, zip]).unwrap();
        }
        let activity = monitor.online_activity().unwrap();
        assert_eq!(activity.polls, 1);
        assert!(activity.promoted > 0, "the planted Σ must promote");
        assert_eq!(activity.retired, 0);
        assert_eq!(monitor.summary().total(), 0, "clean data, clean suite");
        let fd_idx = monitor
            .validator()
            .cfds()
            .iter()
            .position(|c| c.lhs_pat().is_all_any() && !c.is_constant_rhs())
            .expect("the variable FD city → country is promoted");
        let (promoted_cfds, promoted_cinds) = monitor.online_promoted().unwrap();
        assert!(promoted_cfds.contains(&fd_idx));
        assert!(!promoted_cinds.is_empty(), "fact[city] ⊆ cities[name]");
        // A dirty arrival now violates the *promoted* dependencies.
        monitor.insert(fact, tuple!["EDI", "US", "z99"]).unwrap();
        assert!(monitor.summary().cfd_violations > 0);
        let fresh = QualitySuite::from_normal(
            schema.clone(),
            monitor.validator().cfds().to_vec(),
            monitor.validator().cinds().to_vec(),
        )
        .check(monitor.db());
        assert_eq!(
            monitor.summary().cfd_violations,
            fresh.summary.cfd_violations
        );
        // Keep the dirt coming: at the next poll the EDI evidence has
        // decayed below `retire_confidence` and the affected promotions
        // retire, resolving their violations — the still-confident rest
        // (NYC ⇒ US, GLA ⇒ UK, the CINDs) stays live.
        monitor.insert(fact, tuple!["EDI", "US", "z12"]).unwrap();
        monitor.insert(fact, tuple!["EDI", "US", "z13"]).unwrap();
        monitor.insert(fact, tuple!["GLA", "UK", "z14"]).unwrap();
        let activity = monitor.online_activity().unwrap();
        assert_eq!(activity.polls, 2);
        assert!(activity.retired > 0, "decayed promotions must retire");
        assert!(monitor.validator().is_cfd_retired(fd_idx));
        assert_eq!(
            monitor.summary().total(),
            0,
            "retiring the decayed dependencies resolves their violations"
        );
        assert!(
            monitor.validator().cfds().len() > activity.retired,
            "the confident remainder stays live"
        );
        monitor.report(); // debug-asserts mirror == stream state
    }

    #[test]
    fn batch_ingest_feeds_only_effective_mutations_to_the_miner() {
        let suite = QualitySuite::from_normal(city_schema(), vec![], vec![]);
        let (monitor, _) = suite.monitor(city_db());
        let mut monitor = monitor.with_online_discovery(OnlineConfig::default());
        assert_eq!(monitor.online_miner().unwrap().ops(), 0, "seed resets ops");
        let fact = city_schema().rel_id("fact").unwrap();
        monitor
            .ingest_batch(&[
                // Present already: a set-semantics no-op.
                Mutation::Insert {
                    rel: fact,
                    tuple: tuple!["EDI", "UK", "z0"],
                },
                // Effective insert (1 op)...
                Mutation::Insert {
                    rel: fact,
                    tuple: tuple!["EDI", "UK", "z8"],
                },
                // ... its duplicate within the same batch: no-op.
                Mutation::Insert {
                    rel: fact,
                    tuple: tuple!["EDI", "UK", "z8"],
                },
                // Absent tuple: no-op.
                Mutation::Delete {
                    rel: fact,
                    tuple: tuple!["ABD", "UK", "z9"],
                },
                // Merge-degenerate update: only the deletion is
                // effective (1 op).
                Mutation::Update {
                    rel: fact,
                    old: tuple!["EDI", "UK", "z8"],
                    new: tuple!["NYC", "US", "z3"],
                },
                // Identity update: no-op.
                Mutation::Update {
                    rel: fact,
                    old: tuple!["GLA", "UK", "z6"],
                    new: tuple!["GLA", "UK", "z6"],
                },
            ])
            .unwrap();
        assert_eq!(
            monitor.online_miner().unwrap().ops(),
            2,
            "only the effective mutations reach the sketches"
        );
    }

    #[test]
    fn health_snapshot_after_a_240_mutation_oracle_run() {
        let suite = bank_suite();
        let (mut monitor, _) = suite.monitor(bank_database());
        let interest = suite.schema().rel_id("interest").unwrap();
        // 240 mutations in 24 windows of 10: each window inserts and
        // then deletes five fresh tuples, so every mutation is
        // effective yet the database (and its two paper errors) ends
        // each window unchanged.
        for w in 0..24 {
            let mut muts = Vec::new();
            for j in 0..5 {
                let t = tuple![format!("C{w}_{j}").as_str(), "UK", "checking", "9.9%"];
                muts.push(Mutation::Insert {
                    rel: interest,
                    tuple: t.clone(),
                });
                muts.push(Mutation::Delete {
                    rel: interest,
                    tuple: t,
                });
            }
            let deltas = monitor.ingest_batch(&muts).unwrap();
            assert_eq!(deltas.len(), 10, "all ten mutations are effective");
        }

        let health = monitor.health();
        assert_eq!(health.summary.total(), 2, "the paper's two errors remain");
        let lat = &health.window_latency;
        assert_eq!(lat.count, 24, "one latency sample per window");
        assert!(lat.sum_us >= lat.max_us);
        assert!(lat.p50_us <= lat.p90_us && lat.p90_us <= lat.p99_us);
        assert_eq!(health.journal_total, 24);
        assert_eq!(health.journal.len(), 24, "tail capacity is 32");
        for (i, e) in health.journal.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "oldest first, monotone seqs");
            match e.event {
                condep_telemetry::StreamEvent::Window {
                    mutations,
                    introduced,
                    resolved,
                    ..
                } => {
                    assert_eq!(mutations, 10);
                    assert_eq!(introduced, resolved, "each window nets to zero");
                }
                ref other => panic!("unexpected journal event: {other:?}"),
            }
        }
        // The metric roll-up carries the stream's counters and the
        // monitor-level summary.
        let m = &health.metrics;
        assert_eq!(
            m.get("stream.mutations.inserts"),
            Some(&condep_telemetry::MetricValue::Counter(120))
        );
        assert_eq!(
            m.get("stream.mutations.deletes"),
            Some(&condep_telemetry::MetricValue::Counter(120))
        );
        assert_eq!(
            m.get("monitor.violations.cfd"),
            Some(&condep_telemetry::MetricValue::Counter(1))
        );

        // The snapshot round-trips through the JSON writer: valid
        // syntax, all top-level sections present.
        let json = health.to_json();
        assert!(
            condep_telemetry::json::is_valid(&json),
            "health JSON must parse: {json}"
        );
        for key in [
            "\"violations\"",
            "\"window_latency_us\"",
            "\"mutation_latency_us\"",
            "\"journal\"",
            "\"journal_total\"",
            "\"online\"",
            "\"metrics\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn report_displays_counts() {
        let suite = bank_suite();
        let report = suite.check(&bank_database());
        let s = report.to_string();
        assert!(s.contains("2 violation(s)"));
        assert!(s.contains("1 CFD"));
        assert!(s.contains("1 CIND"));
    }
}
