//! High-level data-quality façade.
//!
//! Ties the workspace together the way the paper's introduction motivates
//! it: take a database and a set of conditional dependencies, check the
//! dependencies are consistent, and report every violation with enough
//! context to drive cleaning.

use condep_cfd::{normalize as cfd_normalize, Cfd, CfdViolation, NormalCfd};
use condep_consistency::{checking, CheckingConfig, ConstraintSet};
use condep_core::{normalize as cind_normalize, Cind, CindViolation, NormalCind};
use condep_discover::{DiscoveredSigma, DiscoveryConfig};
use condep_model::{Database, ModelError, RelId, Schema, Tuple};
use condep_repair::{RepairBudget, RepairCost, RepairReport};
use condep_validate::{
    CompactionStats, Mutation, SigmaDelta, SigmaReport, Validator, ValidatorStream,
};
use std::fmt;
use std::sync::Arc;

/// One detected violation, tagged with its source constraint.
#[derive(Clone, Debug)]
pub enum Violation {
    /// A CFD violation (single-tuple or pair).
    Cfd {
        /// Index of the (normalized) CFD in the suite.
        constraint: usize,
        /// The violation details.
        violation: CfdViolation,
        /// The relation involved.
        rel: RelId,
    },
    /// A CIND violation: a triggered tuple with no partner.
    Cind {
        /// Index of the (normalized) CIND in the suite.
        constraint: usize,
        /// The violation details.
        violation: CindViolation,
        /// The source relation.
        rel: RelId,
    },
}

/// Counts per constraint kind.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ViolationSummary {
    /// CFD violations found.
    pub cfd_violations: usize,
    /// CIND violations found.
    pub cind_violations: usize,
    /// Tuples inspected.
    pub tuples_checked: usize,
}

impl ViolationSummary {
    /// Total violations.
    pub fn total(&self) -> usize {
        self.cfd_violations + self.cind_violations
    }

    /// Is the database clean with respect to the suite?
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }
}

/// The full quality report.
#[derive(Clone, Debug)]
pub struct QualityReport {
    /// Aggregate counts.
    pub summary: ViolationSummary,
    /// Every violation found, in deterministic order.
    pub violations: Vec<Violation>,
}

impl fmt::Display for QualityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} violation(s): {} CFD, {} CIND over {} tuple(s)",
            self.summary.total(),
            self.summary.cfd_violations,
            self.summary.cind_violations,
            self.summary.tuples_checked,
        )
    }
}

/// A compiled suite of conditional dependencies over one schema.
///
/// Construction normalizes every dependency (Prop 3.1 for CINDs, the
/// Section 4 normal form for CFDs) and compiles the whole Σ into a
/// batched [`Validator`]; checking then builds one shared group-by index
/// per `(relation, LHS)` group and sweeps groups in parallel, instead of
/// re-indexing the database once per constraint.
#[derive(Clone, Debug)]
pub struct QualitySuite {
    schema: Arc<Schema>,
    validator: Validator,
}

impl QualitySuite {
    /// Builds a suite from general-form dependencies.
    pub fn new(schema: Arc<Schema>, cfds: &[Cfd], cinds: &[Cind]) -> Self {
        QualitySuite::from_normal(
            schema,
            cfd_normalize::normalize_all(cfds),
            cind_normalize::normalize_all(cinds),
        )
    }

    /// Builds a suite directly from normal forms.
    pub fn from_normal(schema: Arc<Schema>, cfds: Vec<NormalCfd>, cinds: Vec<NormalCind>) -> Self {
        QualitySuite {
            schema,
            validator: Validator::new(cfds, cinds),
        }
    }

    /// **Profiles** `db` with the `condep-discover` miners and compiles
    /// the recovered Σ′ straight into a suite — the entry point of the
    /// discover → validate → monitor → repair loop when no constraint
    /// set is given. Returns the suite together with the ranked
    /// [`DiscoveredSigma`] (supports, confidences, run counters).
    ///
    /// At the default `min_confidence = 1.0` the suite is clean on `db`
    /// by construction; mine with a lower floor to tolerate dirt in the
    /// profiled snapshot and let [`QualitySuite::check`] /
    /// [`QualitySuite::repair`] surface and fix it.
    pub fn discover(db: &Database, config: &DiscoveryConfig) -> (Self, DiscoveredSigma) {
        let found = condep_discover::discover(db, config);
        let suite = QualitySuite::from_normal(
            db.schema().clone(),
            found.cfds_normal(),
            found.cinds_normal(),
        );
        (suite, found)
    }

    /// The schema the suite is defined over.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The normalized CFDs.
    pub fn cfds(&self) -> &[NormalCfd] {
        self.validator.cfds()
    }

    /// The normalized CINDs.
    pub fn cinds(&self) -> &[NormalCind] {
        self.validator.cinds()
    }

    /// The compiled batched validator (e.g. to open a
    /// [`condep_validate::ValidatorStream`] for incremental checking).
    pub fn validator(&self) -> &Validator {
        &self.validator
    }

    /// Checks whether the suite itself is consistent, using algorithm
    /// `Checking` (Figure 9). `Some(witness)` certifies consistency;
    /// `None` means no witness was found (sound, not complete —
    /// Theorem 4.2 makes completeness unattainable).
    pub fn check_consistency(&self, config: &CheckingConfig) -> Option<Database> {
        let sigma = ConstraintSet::new(
            self.schema.clone(),
            self.validator.cfds().to_vec(),
            self.validator.cinds().to_vec(),
        );
        checking(&sigma, config)
    }

    /// Runs the batched validator against `db`: one parallel sweep over
    /// all of Σ, reported in the same deterministic order the per-CFD
    /// detectors would produce.
    pub fn check(&self, db: &Database) -> QualityReport {
        let report = self.validator.validate_sorted(db);
        resolve_report(&self.validator, db.total_tuples(), report)
    }

    /// Opens a streaming monitor over `db`: the suite's delta engine
    /// keeps the violation state live, so every insert / delete / update
    /// is charged only for what it touches. Also returns the seed
    /// database's initial quality report.
    pub fn monitor(&self, db: Database) -> (QualityMonitor, QualityReport) {
        let tuples = db.total_tuples();
        let (stream, initial) = ValidatorStream::new_validated(self.validator.clone(), db);
        let report = resolve_report(&self.validator, tuples, initial.clone());
        let monitor = QualityMonitor {
            sigma: initial,
            tuples_checked: tuples,
            stream,
        };
        (monitor, report)
    }

    /// Repairs `db` against the suite: the `condep-repair` cost-based
    /// engine detects every violation, settles CFD conflicts per
    /// equivalence class (constant patterns force their constant,
    /// variable ones take the class majority), gives CIND orphans their
    /// chased target tuple or deletes them, and verifies **every**
    /// candidate fix through the delta engine — kept only when its
    /// [`SigmaDelta`]s prove it strictly net-negative, rolled back
    /// otherwise. Returns the repaired database and the auditable
    /// [`RepairReport`] (fixes, costs, residual violations).
    pub fn repair(
        &self,
        db: Database,
        cost: &RepairCost,
        budget: &RepairBudget,
    ) -> (Database, RepairReport) {
        let initial = self.validator.validate_sorted(&db);
        condep_repair::repair(self.validator.clone(), db, initial, cost, budget)
    }

    /// The offending tuples, resolved against `db` — what a repair tool
    /// consumes.
    pub fn offending_tuples<'a>(
        &self,
        db: &'a Database,
        report: &QualityReport,
    ) -> Vec<(&'static str, RelId, &'a Tuple)> {
        let mut out = Vec::new();
        for v in &report.violations {
            match v {
                Violation::Cfd { violation, rel, .. } => match violation {
                    CfdViolation::SingleTuple { tuple, .. } => {
                        if let Some(t) = db.relation(*rel).get(*tuple) {
                            out.push(("cfd", *rel, t));
                        }
                    }
                    CfdViolation::Pair { left, right } => {
                        for pos in [left, right] {
                            if let Some(t) = db.relation(*rel).get(*pos) {
                                out.push(("cfd", *rel, t));
                            }
                        }
                    }
                },
                Violation::Cind { violation, rel, .. } => {
                    if let Some(t) = db.relation(*rel).get(violation.tuple) {
                        out.push(("cind", *rel, t));
                    }
                }
            }
        }
        out
    }
}

/// Resolves a raw [`SigmaReport`] against the compiled suite into the
/// user-facing [`QualityReport`].
fn resolve_report(
    validator: &Validator,
    tuples_checked: usize,
    report: SigmaReport,
) -> QualityReport {
    let mut violations = Vec::with_capacity(report.len());
    let summary = ViolationSummary {
        tuples_checked,
        cfd_violations: report.cfd.len(),
        cind_violations: report.cind.len(),
    };
    for (i, v) in report.cfd {
        violations.push(Violation::Cfd {
            constraint: i,
            violation: v,
            rel: validator.cfds()[i].rel(),
        });
    }
    for (i, v) in report.cind {
        violations.push(Violation::Cind {
            constraint: i,
            violation: v,
            rel: validator.cinds()[i].lhs_rel(),
        });
    }
    QualityReport {
        summary,
        violations,
    }
}

/// A live data-quality monitor: a [`QualitySuite`] bound to one evolving
/// database through the `condep-validate` delta engine.
///
/// The full violation report is maintained **incrementally from the
/// streamed deltas** via [`SigmaReport::apply_delta`] (the documented
/// consumer rule: remove resolved, renumber the swap move, add
/// introduced), so a monitor ingesting an insert/delete stream never
/// re-validates the database, yet [`QualityMonitor::summary`] and
/// [`QualityMonitor::report`] always match what [`QualitySuite::check`]
/// would report from scratch.
#[derive(Clone, Debug)]
pub struct QualityMonitor {
    stream: ValidatorStream,
    /// The delta-maintained raw report (== the stream's live state).
    sigma: SigmaReport,
    tuples_checked: usize,
}

impl QualityMonitor {
    /// Ingests one arriving tuple, returning the delta (violations
    /// introduced, and — for CIND target arrivals — resolved).
    pub fn insert(&mut self, rel: RelId, t: Tuple) -> Result<SigmaDelta, ModelError> {
        let delta = self.stream.insert_tuple(rel, t)?;
        self.consume(&delta);
        Ok(delta)
    }

    /// Ingests one deletion, consuming its retractions (and any
    /// violations the absence introduces). `None` when the tuple was not
    /// present.
    pub fn delete(&mut self, rel: RelId, t: &Tuple) -> Option<SigmaDelta> {
        let delta = self.stream.delete_tuple(rel, t)?;
        self.consume(&delta);
        Some(delta)
    }

    /// Ingests a replacement (`old` → `new`) as its delete and insert
    /// deltas in application order.
    pub fn update(
        &mut self,
        rel: RelId,
        old: &Tuple,
        new: Tuple,
    ) -> Result<Option<(SigmaDelta, SigmaDelta)>, ModelError> {
        let Some((del, ins)) = self.stream.update_tuple(rel, old, new)? else {
            return Ok(None);
        };
        self.consume(&del);
        self.consume(&ins);
        Ok(Some((del, ins)))
    }

    /// Ingests a whole batch of value-level [`Mutation`]s through the
    /// stream's batched path ([`ValidatorStream::apply_deltas`]): the
    /// batch is symbolized in one interner pass and each touched key
    /// group probed once, so a monitor fed buffered mutation windows
    /// pays far less per mutation than the one-at-a-time calls. Returns
    /// the streamed deltas in application order; an ill-typed mutation
    /// applies nothing.
    pub fn ingest_batch(&mut self, muts: &[Mutation]) -> Result<Vec<SigmaDelta>, ModelError> {
        let deltas = self.stream.apply_deltas(muts)?;
        for delta in &deltas {
            self.consume(delta);
        }
        Ok(deltas)
    }

    /// Compacts the monitor's long-lived stream state (emptied key
    /// groups, dead interned strings, retired tuple-id slots) without
    /// disturbing the live report — see
    /// [`ValidatorStream::compact`].
    pub fn compact(&mut self) -> CompactionStats {
        self.stream.compact()
    }

    /// Folds one streamed delta into the mirrored report through the
    /// consumer rule ([`SigmaReport::apply_delta`]).
    fn consume(&mut self, delta: &SigmaDelta) {
        self.sigma.apply_delta(self.stream.validator(), delta);
        self.tuples_checked = self.stream.db().total_tuples();
    }

    /// The delta-maintained counters (no validation run).
    pub fn summary(&self) -> ViolationSummary {
        ViolationSummary {
            cfd_violations: self.sigma.cfd.len(),
            cind_violations: self.sigma.cind.len(),
            tuples_checked: self.tuples_checked,
        }
    }

    /// The current database.
    pub fn db(&self) -> &Database {
        self.stream.db()
    }

    /// The full current report, resolved from the delta-maintained
    /// mirror — equal to re-checking the database from scratch, without
    /// the sweep (and equal to the stream's own materialized state,
    /// asserted in debug builds).
    pub fn report(&self) -> QualityReport {
        debug_assert_eq!(
            self.sigma,
            self.stream.current_report(),
            "consumer-rule mirror diverged from the stream's live state"
        );
        resolve_report(
            self.stream.validator(),
            self.tuples_checked,
            self.sigma.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use condep_cfd::fixtures as cfd_fixtures;
    use condep_core::fixtures as cind_fixtures;
    use condep_model::fixtures::{bank_database, bank_schema, clean_bank_database};
    use condep_model::tuple;

    fn bank_suite() -> QualitySuite {
        QualitySuite::new(
            bank_schema(),
            &[
                cfd_fixtures::phi1(),
                cfd_fixtures::phi2(),
                cfd_fixtures::phi3(),
            ],
            &cind_fixtures::figure_2(),
        )
    }

    #[test]
    fn dirty_bank_report_finds_exactly_the_two_paper_errors() {
        // t12 violates ϕ3 (CFD) and t10 violates ψ6 (CIND).
        let suite = bank_suite();
        let db = bank_database();
        let report = suite.check(&db);
        assert_eq!(report.summary.cfd_violations, 1);
        assert_eq!(report.summary.cind_violations, 1);
        assert!(!report.summary.is_clean());
        let offenders = suite.offending_tuples(&db, &report);
        assert_eq!(offenders.len(), 2);
    }

    #[test]
    fn clean_bank_report_is_clean() {
        let suite = bank_suite();
        let report = suite.check(&clean_bank_database());
        assert!(report.summary.is_clean());
        assert_eq!(report.summary.tuples_checked, 14);
    }

    #[test]
    fn suite_consistency_check_finds_a_witness() {
        let suite = bank_suite();
        let witness = suite
            .check_consistency(&CheckingConfig::default())
            .expect("Figure 2 + Figure 4 are consistent");
        assert!(!witness.is_empty());
    }

    #[test]
    fn monitor_consumes_introductions_and_retractions() {
        let suite = bank_suite();
        let (mut monitor, initial) = suite.monitor(bank_database());
        // Seeded with the dirty instance: the paper's two errors.
        assert_eq!(initial.summary.total(), 2);
        assert_eq!(monitor.summary().total(), 2);
        let interest = suite.schema().rel_id("interest").unwrap();
        // A fresh violation raises the counters...
        let bad = tuple!["GLA", "UK", "checking", "9.9%"];
        let delta = monitor.insert(interest, bad.clone()).unwrap();
        assert!(!delta.is_quiet());
        let raised = monitor.summary().total();
        assert!(raised > 2, "summary must rise: {raised}");
        // ... and deleting it streams the retraction back down.
        let gone = monitor.delete(interest, &bad).unwrap();
        assert!(!gone.resolved().is_empty());
        assert_eq!(monitor.summary().total(), 2);
        // The delta-maintained summary matches a from-scratch check.
        let fresh = suite.check(monitor.db());
        assert_eq!(monitor.summary(), fresh.summary);
        assert_eq!(monitor.report().summary, fresh.summary);
    }

    #[test]
    fn monitor_ingests_batches_and_compacts_without_drifting() {
        let suite = bank_suite();
        let (mut monitor, initial) = suite.monitor(bank_database());
        assert_eq!(initial.summary.total(), 2);
        let interest = suite.schema().rel_id("interest").unwrap();
        let deltas = monitor
            .ingest_batch(&[
                Mutation::Insert {
                    rel: interest,
                    tuple: condep_model::tuple!["GLA", "UK", "checking", "9.9%"],
                },
                Mutation::Update {
                    rel: interest,
                    old: condep_model::tuple!["GLA", "UK", "checking", "9.9%"],
                    new: condep_model::tuple!["GLA", "UK", "checking", "1.5%"],
                },
                Mutation::Delete {
                    rel: interest,
                    tuple: condep_model::tuple!["GLA", "UK", "checking", "1.5%"],
                },
            ])
            .unwrap();
        assert!(!deltas.is_empty());
        let stats = monitor.compact();
        assert!(stats.interned_strings_after <= stats.interned_strings_before);
        // The delta-maintained mirror survives batches + compaction and
        // still equals a from-scratch check.
        let fresh = suite.check(monitor.db());
        assert_eq!(monitor.summary(), fresh.summary);
        assert_eq!(monitor.report().summary, fresh.summary);
        assert_eq!(monitor.summary().total(), 2);
    }

    #[test]
    fn monitor_update_repairs_the_paper_error() {
        let suite = bank_suite();
        let (mut monitor, initial) = suite.monitor(bank_database());
        assert_eq!(initial.summary.cfd_violations, 1);
        let interest = suite.schema().rel_id("interest").unwrap();
        // t12 is the ϕ3 offender: EDI UK checking at 10.5%. Repairing
        // the rate resolves the CFD violation.
        let (del, ins) = monitor
            .update(
                interest,
                &tuple!["EDI", "UK", "checking", "10.5%"],
                tuple!["EDI", "UK", "checking", "1.5%"],
            )
            .unwrap()
            .unwrap();
        assert_eq!(del.cfd.resolved.len(), 1);
        assert!(ins.cfd.introduced.is_empty());
        assert_eq!(monitor.summary().cfd_violations, 0);
        let fresh = suite.check(monitor.db());
        assert_eq!(monitor.summary(), fresh.summary);
    }

    #[test]
    fn discover_profiles_and_compiles_a_working_suite() {
        // Profile the clean bank instance: the mined suite is satisfied
        // by it (soundness at confidence 1.0), and still *checks* — a
        // dirty tuple surfaces as violations of the discovered Σ′.
        let db = clean_bank_database();
        let (suite, found) = QualitySuite::discover(
            &db,
            &condep_discover::DiscoveryConfig {
                min_support: 2,
                ..condep_discover::DiscoveryConfig::default()
            },
        );
        assert!(!found.is_empty(), "the bank data carries dependencies");
        assert_eq!(suite.cfds().len(), found.cfds.len());
        assert_eq!(suite.cinds().len(), found.cinds.len());
        assert!(
            suite.check(&db).summary.is_clean(),
            "strict discovery output must hold on the profiled instance"
        );
        // Rankings are evidence-sorted.
        for pair in found.cfds.windows(2) {
            assert!(
                pair[0].support > pair[1].support
                    || (pair[0].support == pair[1].support
                        && pair[0].confidence >= pair[1].confidence),
                "ranking must be (support, confidence) descending"
            );
        }
    }

    #[test]
    fn report_displays_counts() {
        let suite = bank_suite();
        let report = suite.check(&bank_database());
        let s = report.to_string();
        assert!(s.contains("2 violation(s)"));
        assert!(s.contains("1 CFD"));
        assert!(s.contains("1 CIND"));
    }
}
