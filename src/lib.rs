#![warn(missing_docs)]

//! # condep — conditional dependencies for data quality
//!
//! A from-scratch Rust implementation of **conditional inclusion
//! dependencies (CINDs)** and their interaction with **conditional
//! functional dependencies (CFDs)**, reproducing
//!
//! > Loreto Bravo, Wenfei Fan, Shuai Ma.
//! > *Extending Dependencies with Conditions.* VLDB 2007.
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`model`] | relational substrate: values, finite/infinite domains, schemas, tuples, databases, pattern rows and the match order `≍` |
//! | [`query`] | in-memory execution engine: predicates, hash indexes, select/project/join/anti-join, logical plans |
//! | [`sat`] | DPLL SAT solver (stands in for SAT4j) |
//! | [`analyze`] | **static analysis of Σ**: SAT-backed consistency verdicts (`Sat` + witness database, `Unsat` + minimal core in Σ indices, `Unknown` on budget), a budgeted CFD+CIND chase, and the advisory `SigmaLint` catalogue — the pre-flight gate behind `Validator::strict`, discovery's keep stage and `repair()` |
//! | [`cfd`] | CFDs: syntax, normal form, satisfaction, violations, exact consistency & implication |
//! | [`cind`] | **the paper's contribution** — CINDs: syntax, semantics, normal form (Prop 3.1), consistency witness (Thm 3.2), inference system `I` (Fig 3), implication (Thms 3.4/3.5), minimal cover |
//! | [`chase`] | the bounded-pool chase of Section 5.1 (`IND(ψ)`/`FD(φ)`, `chaseI`, valuations) |
//! | [`consistency`] | the Section 5 heuristics: `CFD_Checking` (chase & SAT), dependency graph, `preProcessing`, `RandomChecking`, `Checking` |
//! | [`gen`] | seeded workload generators matching the Section 6 experimental setting, incl. the planted-Σ discovery ground truth (`clean_database_with_hidden_sigma`) |
//! | [`discover`] | **dependency discovery**: level-wise CFD mining over stripped partitions (interned columns, `SymIndex` counting-sort CSR), constant-pattern specialization per equivalence class, unary CIND inclusion mining with exact-making constant conditions, `(support, confidence)` ranking with trivial/implied pruning |
//! | [`validate`] | **batched Σ-validation engine**: Σ grouped by `(relation, LHS set)`, one shared group-by index per group over interned keys, parallel sweep; `ValidatorStream` delta engine (insert/delete/update with violation retraction, value-level `Mutation`/`apply`/`revert`, `SigmaReport::apply_delta` consumer rule) hardened for whole-life monitoring: position-stable `TupleId` handles, batched `apply_deltas` windows, and full `compact()` (emptied key groups + dead interned strings reclaimed) |
//! | [`repair`] | **cost-based repair engine**: greedy equivalence-class CFD repair (union-find over conflicting cells, majority/constant targets), CIND orphans chased into inserted targets or deleted, every fix verified net-negative through the delta engine and rolled back otherwise |
//! | [`report`] | high-level data-quality façade: compiles Σ into a batched validator, runs it against a database and aggregates violations; `QualityMonitor` keeps the full report live from streamed deltas; `QualitySuite::repair` cleans a database through the repair engine |
//! | [`telemetry`] | **unified observability core** (dependency-free): named counter/gauge registries, log2-bucket µs histograms with deterministic p50/p90/p99, RAII span timers, a bounded event journal and a hand-rolled JSON writer |
//!
//! ## Observability
//!
//! Every layer reports through [`telemetry`]: a `ValidatorStream` owns
//! a private registry + journal (probe counts, cache-hit rates,
//! mutation/window latency, compactions — see
//! `condep_validate::StreamTelemetry`), free constructors like
//! `Validator::new` and `discover::discover` record phase spans into
//! the process-global registry ([`telemetry::global`]), a repair run
//! returns its round metrics on `RepairReport::metrics`, and
//! [`report::QualityMonitor::health`] rolls the live state — violation
//! counts, latency percentiles, the journal tail, online-miner
//! activity — into one JSON-serializable [`report::HealthSnapshot`].
//! All recording sites compile to nothing with the default-on
//! `telemetry` cargo feature disabled; the export surface
//! ([`telemetry::MetricsSnapshot`], [`telemetry::Export`], the JSON
//! writer) stays available either way.
//!
//! ## Quickstart
//!
//! ```
//! use condep::model::fixtures::bank_database;
//! use condep::cind::{fixtures, normalize};
//!
//! // The dirty instance of Figure 1 violates ψ6 through tuple t10 …
//! let db = bank_database();
//! let psi6 = normalize::normalize(&fixtures::psi6());
//! let violations = condep::cind::find_violations(&db, &psi6[0]);
//! assert_eq!(violations.len(), 1);
//! ```

pub use condep_analyze as analyze;
pub use condep_cfd as cfd;
pub use condep_chase as chase;
pub use condep_consistency as consistency;
pub use condep_core as cind;
pub use condep_discover as discover;
pub use condep_dsl as dsl;
pub use condep_gen as gen;
pub use condep_model as model;
pub use condep_query as query;
pub use condep_repair as repair;
pub use condep_sat as sat;
pub use condep_telemetry as telemetry;
pub use condep_validate as validate;

pub mod report;

/// Commonly used types, one `use` away.
pub mod prelude {
    pub use crate::cfd::{Cfd, NormalCfd};
    pub use crate::chase::{ChaseConfig, TemplateDb};
    pub use crate::cind::{Cind, NormalCind};
    pub use crate::consistency::{checking, CheckingConfig, ConstraintSet};
    pub use crate::discover::online::{OnlineConfig, OnlineMiner};
    pub use crate::discover::{DiscoveredSigma, DiscoveryConfig, SampleConfig};
    pub use crate::model::{
        AttrId, Database, Domain, PValue, PatternRow, RelId, Schema, Tuple, TupleId, Value,
    };
    pub use crate::repair::{RepairBudget, RepairCost, RepairReport};
    pub use crate::report::{HealthSnapshot, QualityMonitor, QualityReport, ViolationSummary};
    pub use crate::telemetry::{Export, MetricsSnapshot};
    pub use crate::validate::{
        CompactionStats, Mutation, SigmaDelta, SigmaReport, Validator, ValidatorStream,
    };
}
