//! Regex-subset string strategies.
//!
//! Real proptest treats a `&str` as a full regex over generated strings.
//! This shim supports the subset the workspace's tests use: literal
//! characters, character classes `[a-z05]` (ranges and singletons), and
//! quantifiers `{m}` / `{m,n}` / `?` / `*` / `+` (the unbounded ones are
//! capped at 8 repetitions). Anything else panics loudly so a future
//! test can't silently get wrong data.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

const UNBOUNDED_CAP: usize = 8;

#[derive(Clone, Debug)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in regex {pattern:?}"));
                    if lo == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated range in regex {pattern:?}"));
                        assert!(lo <= hi, "reversed range in regex {pattern:?}");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty class in regex {pattern:?}");
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}")),
            ),
            '{' | '}' | '?' | '*' | '+' | '(' | ')' | '|' | '.' | '^' | '$' => {
                panic!("unsupported regex syntax {c:?} in {pattern:?} (shim subset)")
            }
            other => Atom::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let spec: String = chars.by_ref().take_while(|c| *c != '}').collect();
                let mut parts = spec.splitn(2, ',');
                let m: usize = parts
                    .next()
                    .and_then(|s| s.trim().parse().ok())
                    .unwrap_or_else(|| panic!("bad quantifier in regex {pattern:?}"));
                match parts.next() {
                    None => (m, m),
                    Some(n) => {
                        let n: usize = n
                            .trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad quantifier in regex {pattern:?}"));
                        assert!(m <= n, "reversed quantifier in regex {pattern:?}");
                        (m, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                chars.next();
                (1, UNBOUNDED_CAP)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn generate_from(pieces: &[Piece], rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in pieces {
        let reps = rng.gen_range(piece.min..=piece.max);
        for _ in 0..reps {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                    out.push(
                        char::from_u32(rng.gen_range(lo as u32..=hi as u32))
                            .expect("class range stays in scalar values"),
                    );
                }
            }
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from(&parse(self), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_bounded_repetition() {
        let mut rng = TestRng::for_case("string_tests", 0);
        let mut lens = [false; 4];
        for _ in 0..100 {
            let s = "[a-e]{1,3}".generate(&mut rng);
            assert!((1..=3).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='e').contains(&c)));
            lens[s.len()] = true;
        }
        assert!(lens[1] && lens[2] && lens[3]);
    }

    #[test]
    fn literals_and_optional() {
        let mut rng = TestRng::for_case("string_tests", 1);
        for _ in 0..20 {
            let s = "ab?c".generate(&mut rng);
            assert!(s == "abc" || s == "ac");
        }
    }

    #[test]
    fn singleton_class_members() {
        let mut rng = TestRng::for_case("string_tests", 2);
        for _ in 0..20 {
            let s = "[xy5]".generate(&mut rng);
            assert!(["x", "y", "5"].contains(&s.as_str()));
        }
    }
}
