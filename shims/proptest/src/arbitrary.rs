//! `any::<T>()` — canonical strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;

/// Types with a canonical [`Strategy`].
pub trait Arbitrary: Sized {
    /// Draws one canonical value (the whole value space, uniformly-ish).
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, i8, i16, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::for_case("arbitrary_tests", 0);
        let s = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..50 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
