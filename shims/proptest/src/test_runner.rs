//! Deterministic per-case random source for the property harness.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The random source handed to strategies: a seeded [`StdRng`] whose
/// stream is a pure function of `(test name, case index)`, so every
/// failure replays exactly.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// The generator for case `case` of the named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h = DefaultHasher::new();
        test_name.hash(&mut h);
        case.hash(&mut h);
        TestRng(StdRng::seed_from_u64(h.finish()))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
