//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the per-case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then a value from the strategy
    /// `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice between boxed branches (built by [`crate::prop_oneof!`]).
#[derive(Clone)]
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `branches` (must be nonempty).
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.branches.len());
        self.branches[pick].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("strategy_tests", 0)
    }

    #[test]
    fn just_and_map() {
        let s = Just(21).prop_map(|x| x * 2);
        assert_eq!(s.generate(&mut rng()), 42);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let x = (3usize..7).generate(&mut r);
            assert!((3..7).contains(&x));
            let y = (-5i64..=5).generate(&mut r);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn union_picks_all_branches() {
        let s = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        let mut r = rng();
        for _ in 0..100 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn flat_map_threads_values() {
        let s = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..10, n..=n));
        let mut r = rng();
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let s = (Just(1u8), 0usize..5, Just("x"));
        let (a, b, c) = s.generate(&mut rng());
        assert_eq!(a, 1);
        assert!(b < 5);
        assert_eq!(c, "x");
    }
}
