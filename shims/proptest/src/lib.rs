//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so this workspace ships a
//! minimal property-testing harness covering the API the test suite
//! uses: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! [`strategy::Just`], [`arbitrary::any`], integer-range and
//! regex-subset string strategies, [`collection::vec`], tuple
//! strategies, [`prop_oneof!`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed sequence (no `PROPTEST_CASES` env, no persisted
//! failures) and there is **no shrinking** — a failing case reports the
//! case index so it can be replayed deterministically.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a test file needs, one `use` away.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Number of cases each `proptest!` test runs.
pub const DEFAULT_CASES: u32 = 64;

/// Runs `proptest!`-style property bodies over deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for __case in 0..$crate::DEFAULT_CASES {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __run = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    if let Err(message) = __run() {
                        panic!("property '{}' failed at case {}: {}",
                               stringify!($name), __case, message);
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {} == {} ({:?} vs {:?})",
                               stringify!($left), stringify!($right), l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    }};
}

/// `assert_ne!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// One-of strategy choice across branches of equal `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
