//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size interval for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Strategy producing `Vec`s of `elem`-generated values.
#[derive(Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.lo..=self.size.hi);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// A vector strategy with element strategy `elem` and length in `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_respects_size_bounds() {
        let mut rng = TestRng::for_case("collection_tests", 0);
        let s = vec(Just(7u8), 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| *x == 7));
        }
        let exact = vec(Just(1u8), 3..=3);
        assert_eq!(exact.generate(&mut rng).len(), 3);
    }
}
