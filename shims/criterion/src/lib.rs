//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so this workspace ships a
//! minimal bench harness with the same surface the benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing is plain
//! wall-clock with a short calibration phase — good enough for the
//! relative comparisons the benches report, with none of the statistical
//! machinery of the real crate.

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility; the
/// shim times each batch of one).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times closures handed over by a benchmark function.
pub struct Bencher {
    /// Total measured time of the last `iter*` call.
    elapsed: Duration,
    /// Iterations performed in the last `iter*` call.
    iters: u64,
}

/// Target wall-clock budget per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

impl Bencher {
    fn new() -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Runs `routine` repeatedly and records the mean time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: run once to estimate cost, then fill the budget.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = (MEASURE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = target;
    }

    /// Runs `routine` on fresh inputs from `setup`, timing only `routine`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = (MEASURE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..target {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = target;
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Registers, runs, and reports one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        println!("{name:<44} {:>14.1} ns/iter   ({} iters)", mean_ns, b.iters);
        self
    }
}

/// Declares a group of benchmark functions (shim: a plain runner fn).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut b = Bencher::new();
        let mut next = 0u64;
        b.iter_batched(
            || {
                next += 1;
                next
            },
            |x| x * 2,
            BatchSize::SmallInput,
        );
        assert_eq!(
            next,
            b.iters + 1,
            "one setup per timed iteration plus calibration"
        );
    }
}
