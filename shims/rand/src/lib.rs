//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no vendored registry, so
//! this workspace ships a minimal, deterministic implementation of the
//! slice of the `rand 0.8` API the workspace actually uses:
//!
//! * [`Rng::gen_range`] over integer `Range`/`RangeInclusive`
//! * [`Rng::gen_bool`]
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`]
//! * [`seq::SliceRandom::shuffle`]
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not
//! cryptographic, but high quality and fully deterministic, which is all
//! the seeded experiments and tests require.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random bits give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic across platforms and runs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Slice shuffling.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y: i64 = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&y));
            let z: usize = rng.gen_range(0..=2usize);
            assert!(z <= 2);
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
